//! Robustness against data shift (§V-C, Figure 15): the stream switches
//! from high-entropy CBF data to a low-entropy repeating signal halfway
//! through, and the non-stationary MAB (constant step 0.5) migrates from
//! Sprintz to the byte/dictionary compressors.
//!
//! Run with: `cargo run --release --example data_shift`

use adaedge::codecs::CodecRegistry;
use adaedge::core::{LosslessSelector, SelectorConfig};
use adaedge::datasets::{CbfConfig, SegmentSource, ShiftStream};

fn main() {
    let reg = CodecRegistry::new(4);
    let mut selector = LosslessSelector::new(
        CodecRegistry::extended_lossless_candidates(),
        SelectorConfig::nonstationary(),
    );

    // 200 segments; the distribution shifts after segment 100.
    let mut stream = ShiftStream::new(CbfConfig::default(), 2048, 100, 4);

    println!(
        "{:>8} {:>12} {:>8} {:>12}",
        "segment", "chosen", "ratio", "greedy arm"
    );
    for i in 0..200usize {
        let segment = stream.next_segment();
        let sel = selector.compress(&reg, &segment).expect("compresses");
        if i % 20 == 0 || i == 99 || i == 100 || i == 101 {
            println!(
                "{:>8} {:>12} {:>8.4} {:>12}",
                i,
                sel.codec.name(),
                sel.block.ratio(),
                selector.greedy_arm().name(),
            );
        }
    }

    println!(
        "\nfinal greedy arm: {} (expected: a byte/dictionary codec after the \
         low-entropy shift; Sprintz before it)",
        selector.greedy_arm().name()
    );
}
