//! Quickstart: compress a simulated sensor stream with AdaEdge's online
//! mode and watch the MAB pick codecs.
//!
//! Run with: `cargo run --release --example quickstart`

use adaedge::core::{AggKind, Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget};
use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};
use std::collections::HashMap;

fn main() {
    // A sensor emits 200k points/s; the uplink carries 2 Mbit/s, so the
    // target ratio is R = 2e6 / (64 * 2e5) ≈ 0.156 — out of lossless reach
    // on this dataset, forcing lossy selection.
    let constraints = Constraints::online(200_000.0, 2.0e6, 1024);
    println!(
        "target compression ratio R = {:.4}",
        constraints.target_ratio().unwrap()
    );

    let config = OnlineConfig::new(constraints, OptimizationTarget::agg(AggKind::Sum));
    let mut edge = OnlineAdaEdge::new(config).expect("valid online config");

    // The paper's dummy client: a CBF stream cut into 1024-point segments.
    let mut stream = CbfStream::new(CbfConfig::default(), 1024);

    let mut codec_counts: HashMap<&'static str, usize> = HashMap::new();
    for i in 0..200 {
        let segment = stream.next_segment();
        let outcome = edge.process_segment(&segment).expect("segment processed");
        *codec_counts
            .entry(outcome.selection.codec.name())
            .or_insert(0) += 1;
        if i < 5 || i % 50 == 0 {
            println!(
                "segment {i:>3}: {:>10} ratio={:.4} reward={:.4} path={:?}",
                outcome.selection.codec.name(),
                outcome.selection.block.ratio(),
                outcome.selection.reward,
                outcome.path,
            );
        }
    }

    println!("\ncodec usage over 200 segments:");
    let mut counts: Vec<_> = codec_counts.into_iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (codec, count) in counts {
        println!("  {codec:>10}: {count}");
    }
    let stats = edge.stats();
    println!(
        "\nbytes in: {}  bytes out: {}  overall ratio: {:.4}",
        stats.bytes_in,
        stats.bytes_out,
        stats.bytes_out as f64 / stats.bytes_in as f64
    );
}
