//! Offline mode: a disconnected deep-sea logger with a hard storage budget
//! (§IV-B2). Ingested data keeps "evolving" — old, unqueried segments are
//! recoded ever more aggressively so nothing is dropped outright.
//!
//! A frozen KMeans model supplies the accuracy oracle, as in the paper's
//! Figures 12–13.
//!
//! Run with: `cargo run --release --example offshore_logger`

use adaedge::core::{OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge::datasets::{CbfConfig, CbfGenerator, CbfStream, SegmentSource};
use adaedge::ml::{metrics, Dataset, KMeansConfig, Model};

const SEGMENT: usize = 1024;
const INSTANCE: usize = 128;

fn main() {
    // Train the clustering model centrally on raw CBF data, then freeze it.
    let mut gen = CbfGenerator::new(CbfConfig {
        seed: 99,
        ..Default::default()
    });
    let (rows, _) = gen.dataset(60);
    let model = Model::train_kmeans(
        &Dataset::unlabeled(rows),
        KMeansConfig {
            k: 3,
            ..Default::default()
        },
    );

    // 256 KiB budget, recoding at 80% occupancy, LRU sequencing.
    let budget = 256 * 1024;
    let mut config = OfflineConfig::new(budget, OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE;
    let mut edge = OfflineAdaEdge::new(config).expect("valid offline config");

    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    println!(
        "{:>8} {:>10} {:>8} {:>10} {:>12}",
        "segment", "util", "recodes", "acc", "greedy arm"
    );
    for i in 0..400usize {
        let segment = stream.next_segment();
        let report = edge.ingest(&segment).expect("within budget");
        if i % 50 == 49 {
            // Evaluate KMeans assignment agreement across the whole store.
            let mut orig_rows: Vec<Vec<f64>> = Vec::new();
            let mut lossy_rows: Vec<Vec<f64>> = Vec::new();
            for (_, rec, orig) in edge.reconstruct_all().expect("reconstructable") {
                let orig = orig.expect("originals kept");
                for (o, l) in orig.chunks_exact(INSTANCE).zip(rec.chunks_exact(INSTANCE)) {
                    orig_rows.push(o.to_vec());
                    lossy_rows.push(l.to_vec());
                }
            }
            let acc = metrics::ml_accuracy(&model, &orig_rows, &lossy_rows);
            println!(
                "{:>8} {:>9.1}% {:>8} {:>10.4} {:>12}",
                i + 1,
                report.utilization * 100.0,
                edge.total_recodes(),
                acc,
                edge.greedy_lossless_arm().name(),
            );
        }
    }

    let total_points = 400 * SEGMENT;
    println!(
        "\ningested {} points ({} KiB raw) into a {} KiB budget without dropping a segment",
        total_points,
        total_points * 8 / 1024,
        budget / 1024
    );
    println!(
        "store now holds {} segments at ratios from {:.4} to {:.4}",
        edge.store().len(),
        edge.store()
            .iter()
            .map(|s| s.ratio())
            .fold(f64::MAX, f64::min),
        edge.store()
            .iter()
            .map(|s| s.ratio())
            .fold(f64::MIN, f64::max),
    );
}
