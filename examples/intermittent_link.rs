//! Intermittent connectivity: offline ingestion punctuated by short
//! reconnection windows, using the drain planner to ship the freshest
//! segments within each window's byte budget (the reconnection planning
//! the paper sketches as future work, §IV-C2).
//!
//! Run with: `cargo run --release --example intermittent_link`

use adaedge::core::{AggKind, OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};

const SEGMENT: usize = 1024;

fn main() {
    // 512 KiB local budget; every 100 segments a link window opens that
    // can carry 128 KiB.
    let mut config = OfflineConfig::new(512 * 1024, OptimizationTarget::agg(AggKind::Sum));
    config.keep_originals = false; // production mode: no originals retained
    let mut edge = OfflineAdaEdge::new(config).expect("valid config");
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);

    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>14}",
        "segment", "stored", "util", "shipped", "shipped bytes"
    );
    let mut total_shipped = 0usize;
    let mut total_shipped_bytes = 0usize;
    for i in 1..=600usize {
        edge.ingest(&stream.next_segment()).expect("within budget");
        if i % 100 == 0 {
            let shipped = edge.drain(128 * 1024).expect("drain succeeds");
            let bytes: usize = shipped.iter().map(|(_, b)| b.compressed_bytes()).sum();
            total_shipped += shipped.len();
            total_shipped_bytes += bytes;
            println!(
                "{:>8} {:>10} {:>9.1}% {:>12} {:>14}",
                i,
                edge.store().len(),
                edge.utilization() * 100.0,
                shipped.len(),
                bytes
            );
        }
    }
    println!(
        "\nshipped {total_shipped} segments ({total_shipped_bytes} compressed bytes) across 6 \
         windows; {} segments remain on-device at {:.1}% utilization",
        edge.store().len(),
        edge.utilization() * 100.0
    );
    println!(
        "drain priority is freshest-first: reconnection windows carry the \
         least-compressed (most informative) data, while older, already \
         heavily-recoded segments wait for a longer window."
    );
}
