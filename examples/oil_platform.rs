//! The paper's motivating scenario: an offshore oil platform whose sensors
//! outrun the satellite uplink (§I).
//!
//! We sweep network profiles (3G → WiFi) for a fixed high-rate signal and
//! show how AdaEdge moves between "no compression needed", "best lossless"
//! and "accuracy-optimized lossy" as the link degrades — the regimes of
//! Figures 2–3.
//!
//! Run with: `cargo run --release --example oil_platform`

use adaedge::core::{
    AggKind, Constraints, NetworkProfile, OnlineAdaEdge, OnlineConfig, OptimizationTarget, Path,
};
use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};

fn main() {
    // 500k points/s of double sensor data = 4 MB/s raw.
    let rate = 500_000.0;
    println!(
        "signal: {} points/s ({} MB/s raw)\n",
        rate,
        rate * 8.0 / 1e6
    );
    println!(
        "{:<6} {:>10} {:>8} {:>10} {:>10} {:>12}",
        "link", "Mbps", "R", "lossless", "lossy", "egress MB/s"
    );

    for profile in NetworkProfile::ALL {
        let constraints = Constraints::online(rate, profile.bits_per_sec(), 1024);
        let target_ratio = constraints.target_ratio().unwrap();
        let config = OnlineConfig::new(constraints, OptimizationTarget::agg(AggKind::Avg));
        let mut edge = OnlineAdaEdge::new(config).expect("valid config");
        let mut stream = CbfStream::new(CbfConfig::default(), 1024);

        let mut lossless = 0usize;
        let mut lossy = 0usize;
        let mut infeasible = false;
        for _ in 0..120 {
            let segment = stream.next_segment();
            match edge.process_segment(&segment) {
                Ok(out) => match out.path {
                    Path::Lossless => lossless += 1,
                    Path::Lossy => lossy += 1,
                },
                Err(e) => {
                    println!(
                        "{:<6} link infeasible even for lossy arms: {e}",
                        profile.name()
                    );
                    infeasible = true;
                    break;
                }
            }
        }
        if infeasible {
            continue;
        }
        let stats = edge.stats();
        let egress_mb_s = (stats.bytes_out as f64 / stats.bytes_in as f64) * rate * 8.0 / 1e6;
        println!(
            "{:<6} {:>10.2} {:>8.4} {:>10} {:>10} {:>12.3}",
            profile.name(),
            profile.bits_per_sec() / 1e6,
            target_ratio,
            lossless,
            lossy,
            egress_mb_s,
        );
    }

    println!(
        "\nReading: generous links ship every segment lossless (zero loss); \
         constrained links force the lossy MAB, which tunes every arm to R \
         and optimizes the workload target instead."
    );
}
