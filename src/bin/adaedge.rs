//! The `adaedge` command-line tool: compress/decompress value files with
//! any codec, run the online/offline pipelines on simulated streams, and
//! print a quick codec comparison — the workflow a downstream user tries
//! first.
//!
//! ```text
//! adaedge codecs   [--points N] [--precision P]
//! adaedge compress --input vals.txt --output out.seg [--codec NAME]
//!                  [--precision P] [--ratio R] [--segment N]
//! adaedge decompress --input out.seg --output vals.txt
//! adaedge online   [--rate PTS/S] [--bandwidth BITS/S] [--segments N]
//!                  [--target sum|max|min|avg]
//! adaedge offline  [--budget BYTES] [--segments N] [--target sum|max|min|avg]
//! ```
//!
//! Value files are plain text: one f64 per line (blank lines and `#`
//! comments ignored). Compressed files use the adaedge-storage segment
//! format.

use adaedge::codecs::{CodecId, CodecRegistry};
use adaedge::core::{
    AggKind, Constraints, OfflineAdaEdge, OfflineConfig, OnlineAdaEdge, OnlineConfig,
    OptimizationTarget,
};
use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge::storage::{load_segments, save_segments, Segment, SegmentId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "codecs" => cmd_codecs(&opts),
        "compress" => cmd_compress(&opts),
        "decompress" => cmd_decompress(&opts),
        "online" => cmd_online(&opts),
        "offline" => cmd_offline(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
adaedge — dynamic compression selection for edge time series

USAGE:
  adaedge codecs     [--points N] [--precision P]
  adaedge compress   --input FILE --output FILE [--codec NAME]
                     [--precision P] [--ratio R] [--segment N]
  adaedge decompress --input FILE --output FILE [--precision P]
  adaedge online     [--rate PTS/S] [--bandwidth BITS/S] [--segments N]
                     [--target sum|max|min|avg]
  adaedge offline    [--budget BYTES] [--segments N] [--target sum|max|min|avg]

Codec names: gzip snappy zlib-1 zlib-6 zlib-9 dict rle gorilla chimp
sprintz elf buff buff-lossy paa pla fft rrd-sample lttb raw
(omit --codec to let the MAB choose per segment)";

#[derive(Debug, Default)]
struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.str(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.str(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    fn target(&self) -> Result<AggKind, String> {
        Ok(match self.str("target").unwrap_or("sum") {
            "sum" => AggKind::Sum,
            "max" => AggKind::Max,
            "min" => AggKind::Min,
            "avg" => AggKind::Avg,
            other => return Err(format!("--target: unknown aggregate `{other}`")),
        })
    }
}

fn read_values(path: &str) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        for field in line.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            out.push(
                field
                    .parse::<f64>()
                    .map_err(|_| format!("{path}:{}: bad value `{field}`", lineno + 1))?,
            );
        }
    }
    if out.is_empty() {
        return Err(format!("{path}: no values"));
    }
    Ok(out)
}

fn write_values(path: &str, values: &[f64]) -> Result<(), String> {
    let mut text = String::with_capacity(values.len() * 12);
    for v in values {
        text.push_str(&format!("{v}\n"));
    }
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_codecs(opts: &Options) -> Result<(), String> {
    let points: usize = opts.num("points", 4096)?;
    let precision: u8 = opts.num("precision", 4)?;
    let reg = CodecRegistry::new(precision);
    let mut stream = CbfStream::new(CbfConfig::default(), points);
    let data = stream.next_segment();
    println!("codec comparison on a {points}-point CBF sample (precision {precision}):\n");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "codec", "ratio", "compress µs", "decompress µs"
    );
    for id in CodecId::ALL {
        if id == CodecId::Raw {
            continue;
        }
        let t0 = std::time::Instant::now();
        let block = match reg.get_lossy(id) {
            Some(lossy) => lossy.compress_to_ratio(&data, 0.25),
            None => reg.get(id).compress(&data),
        };
        let Ok(block) = block else {
            println!("{:>12} {:>10}", id.name(), "n/a");
            continue;
        };
        let c_us = t0.elapsed().as_micros();
        let t0 = std::time::Instant::now();
        let _ = reg.decompress(&block).map_err(|e| e.to_string())?;
        let d_us = t0.elapsed().as_micros();
        println!(
            "{:>12} {:>10.4} {:>14} {:>14}",
            id.name(),
            block.ratio(),
            c_us,
            d_us
        );
    }
    Ok(())
}

fn cmd_compress(opts: &Options) -> Result<(), String> {
    let input = opts.required("input")?;
    let output = opts.required("output")?;
    let precision: u8 = opts.num("precision", 4)?;
    let segment: usize = opts.num("segment", 1024)?;
    let values = read_values(input)?;
    let reg = CodecRegistry::new(precision);

    let mut segments = Vec::new();
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    let mut selector = adaedge::core::LosslessSelector::new(
        CodecRegistry::extended_lossless_candidates(),
        adaedge::core::SelectorConfig::default(),
    );
    for (i, chunk) in values.chunks(segment).enumerate() {
        let block = match opts.str("codec") {
            Some(name) => {
                let id =
                    CodecId::from_name(name).ok_or_else(|| format!("unknown codec `{name}`"))?;
                match reg.get_lossy(id) {
                    Some(lossy) => {
                        let ratio: f64 = opts.num("ratio", 0.25)?;
                        lossy
                            .compress_to_ratio(chunk, ratio)
                            .map_err(|e| e.to_string())?
                    }
                    None => reg.get(id).compress(chunk).map_err(|e| e.to_string())?,
                }
            }
            None => {
                // MAB-selected lossless compression.
                selector
                    .compress(&reg, chunk)
                    .map_err(|e| e.to_string())?
                    .block
            }
        };
        total_in += chunk.len() * 8;
        total_out += block.compressed_bytes();
        *counts.entry(block.codec.name()).or_insert(0) += 1;
        segments.push(Segment::compressed(SegmentId(i as u64), i as u64, block));
    }
    save_segments(&PathBuf::from(output), segments.iter()).map_err(|e| e.to_string())?;
    println!(
        "{} values → {} segments, {} → {} bytes (ratio {:.4})",
        values.len(),
        segments.len(),
        total_in,
        total_out,
        total_out as f64 / total_in as f64
    );
    let mut counts: Vec<_> = counts.into_iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (codec, count) in counts {
        println!("  {codec}: {count} segments");
    }
    Ok(())
}

fn cmd_decompress(opts: &Options) -> Result<(), String> {
    let input = opts.required("input")?;
    let output = opts.required("output")?;
    let precision: u8 = opts.num("precision", 4)?;
    let reg = CodecRegistry::new(precision);
    let mut segments = load_segments(&PathBuf::from(input)).map_err(|e| e.to_string())?;
    segments.sort_by_key(|s| s.id);
    let mut values = Vec::new();
    for seg in &segments {
        match seg.block() {
            Some(block) => values.extend(reg.decompress(block).map_err(|e| e.to_string())?),
            None => {
                if let adaedge::storage::SegmentData::Raw(points) = &seg.data {
                    values.extend_from_slice(points);
                }
            }
        }
    }
    write_values(output, &values)?;
    println!(
        "restored {} values from {} segments",
        values.len(),
        segments.len()
    );
    Ok(())
}

fn cmd_online(opts: &Options) -> Result<(), String> {
    let rate: f64 = opts.num("rate", 200_000.0)?;
    let bandwidth: f64 = opts.num("bandwidth", 2.0e6)?;
    let n_segments: usize = opts.num("segments", 100)?;
    let kind = opts.target()?;
    let constraints = Constraints::online(rate, bandwidth, 1024);
    println!(
        "online mode: {rate:.0} pts/s over {bandwidth:.0} bit/s → target ratio {:.4}",
        constraints.target_ratio().unwrap()
    );
    let config = OnlineConfig::new(constraints, OptimizationTarget::agg(kind));
    let mut edge = OnlineAdaEdge::new(config).map_err(|e| e.to_string())?;
    let mut stream = CbfStream::new(CbfConfig::default(), 1024);
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for _ in 0..n_segments {
        let seg = stream.next_segment();
        let out = edge.process_segment(&seg).map_err(|e| e.to_string())?;
        *counts.entry(out.selection.codec.name()).or_insert(0) += 1;
    }
    let stats = edge.stats();
    println!(
        "{} segments: {} lossless / {} lossy; egress ratio {:.4}",
        stats.segments,
        stats.lossless_segments,
        stats.lossy_segments,
        stats.bytes_out as f64 / stats.bytes_in as f64
    );
    let mut counts: Vec<_> = counts.into_iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (codec, count) in counts {
        println!("  {codec}: {count}");
    }
    Ok(())
}

fn cmd_offline(opts: &Options) -> Result<(), String> {
    let budget: usize = opts.num("budget", 1_000_000)?;
    let n_segments: usize = opts.num("segments", 300)?;
    let kind = opts.target()?;
    let config = OfflineConfig::new(budget, OptimizationTarget::agg(kind));
    let mut edge = OfflineAdaEdge::new(config).map_err(|e| e.to_string())?;
    let mut stream = CbfStream::new(CbfConfig::default(), 1024);
    for _ in 0..n_segments {
        edge.ingest(&stream.next_segment())
            .map_err(|e| e.to_string())?;
    }
    println!(
        "ingested {} segments ({} KB raw) into a {} KB budget; utilization {:.1}%, {} recodes",
        edge.store().len(),
        n_segments * 1024 * 8 / 1000,
        budget / 1000,
        edge.utilization() * 100.0,
        edge.total_recodes()
    );
    let ratios: Vec<f64> = edge.store().iter().map(|s| s.ratio()).collect();
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    println!("segment ratios: min {min:.4}, max {max:.4}");
    Ok(())
}
