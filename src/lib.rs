//! # AdaEdge
//!
//! A from-scratch Rust implementation of *AdaEdge: A Dynamic Compression
//! Selection Framework for Resource Constrained Devices* (ICDE 2024):
//! multi-armed-bandit-driven lossless + lossy compression selection for
//! edge time series, under hard ingest-rate / bandwidth / storage
//! constraints.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`codecs`] — every compression scheme (gzip/zlib/snappy-class byte
//!   compression, dictionary, RLE, Gorilla, CHIMP, Sprintz, Elf, BUFF;
//!   tunable lossy PAA/PLA/FFT/BUFF-lossy/RRD/LTTB with virtual-
//!   decompression recoding and compressed-domain aggregation).
//! * [`bandit`] — ε-greedy / UCB1 / gradient policies and the
//!   ratio-banded bandit set.
//! * [`ml`] — decision tree, random forest, KNN, k-means and the paper's
//!   accuracy metrics (the frozen-model oracles).
//! * [`datasets`] — seeded CBF / UCR-like / UCI-like generators and
//!   streaming segment sources.
//! * [`storage`] — the byte-accounted segment store, LRU/FIFO/query-count
//!   recoding policies, and on-disk persistence.
//! * [`core`] — constraints, optimization targets, the online and offline
//!   pipelines, baselines and the multithreaded engine.
//!
//! ## Example: online mode under a constrained link
//!
//! ```
//! use adaedge::core::{AggKind, Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget};
//! use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};
//!
//! // 100k points/s of doubles through a 1 Mbit/s link → R ≈ 0.156.
//! let constraints = Constraints::online(100_000.0, 1.0e6, 1024);
//! let config = OnlineConfig::new(constraints, OptimizationTarget::agg(AggKind::Sum));
//! let mut edge = OnlineAdaEdge::new(config).unwrap();
//!
//! let mut stream = CbfStream::new(CbfConfig::default(), 1024);
//! for _ in 0..30 {
//!     let segment = stream.next_segment();
//!     let outcome = edge.process_segment(&segment).unwrap();
//!     // Every shipped block fits the link budget.
//!     assert!(outcome.selection.block.ratio() <= edge.target_ratio() + 1e-9);
//! }
//! ```

#![warn(missing_docs)]

pub use adaedge_bandit as bandit;
pub use adaedge_codecs as codecs;
pub use adaedge_core as core;
pub use adaedge_datasets as datasets;
pub use adaedge_ml as ml;
pub use adaedge_storage as storage;
