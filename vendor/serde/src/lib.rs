//! Offline stand-in for the `serde` crate.
//!
//! Real serde serializes through a visitor so formats can stream; this
//! workspace only ever serializes to / from JSON strings held in memory, so
//! the stand-in uses a much simpler contract: every `Serialize` type renders
//! itself to a [`Value`] tree and every `Deserialize` type rebuilds itself
//! from one. `serde_json` (the sibling vendored crate) converts between
//! `Value` trees and JSON text.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`, re-exported from
//! the vendored `serde_derive`) cover the shapes this workspace uses: named
//! structs, tuple structs, and enums with unit, tuple, and struct variants.
//! `#[serde(...)]` attributes are not supported.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-shaped value tree.
///
/// Integers and floats are kept distinct (`Int` holds an `i128` wide enough
/// for every primitive integer type) so integer round-trips are exact and
/// never pass through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every Rust primitive integer exactly).
    Int(i128),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's key/value pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Construct an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls ---

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            // JSON cannot carry NaN/Inf; they serialize as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Maps render as arrays of pairs: keys are not restricted to strings.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array of pairs for map"))?;
        let mut map = HashMap::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            match item.as_array() {
                Some([k, val]) => {
                    map.insert(K::from_value(k)?, V::from_value(val)?);
                }
                _ => return Err(DeError::new("expected [key, value] pair")),
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_max_is_exact() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.25);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
