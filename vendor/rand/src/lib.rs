//! Offline stand-in for the `rand` 0.8 crate.
//!
//! Implements the API subset this workspace uses — `RngCore`, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), `SeedableRng`,
//! `rngs::SmallRng` (xoshiro256++ seeded through SplitMix64, the same
//! generator family real `rand` 0.8 uses on 64-bit targets), and
//! `seq::SliceRandom` (Fisher–Yates shuffle, `choose`).
//!
//! Streams are deterministic per seed but not bit-identical to upstream
//! `rand`; nothing in this workspace depends on upstream's exact streams,
//! only on determinism and reasonable statistical quality.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution in upstream `rand`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection loop; bias is < 2^-64 per draw, far below anything
/// observable by this workspace's statistical tests).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u: f64 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f32 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u: f32 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (matches the
    /// upstream default expansion strategy).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Build from OS entropy; falls back to a clock-derived seed because
    /// the offline container may lack `/dev/urandom` access at test time.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(t ^ (std::process::id() as u64) << 32)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast generator: xoshiro256++ (the family upstream `rand` 0.8
    /// uses for `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xD1B54A32D192ED03,
                    0x8CB92BA72F3D8DD7,
                    1,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Pick one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let x = dyn_rng.gen_range(0usize..10);
        assert!(x < 10);
        let b: bool = dyn_rng.gen();
        let _ = b;
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
