//! Offline stand-in for `serde_json`.
//!
//! Converts between the vendored [`serde::Value`] tree and JSON text. The
//! output is plain JSON (no pretty-printing); the parser accepts anything
//! this printer produces plus ordinary whitespace, and rejects trailing
//! garbage. Non-finite floats print as `null`, matching real serde_json.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error from JSON parsing or value conversion.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// --- printer ---

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from Ints on re-parse.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this printer;
                            // map lone surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is validated UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn integral_float_stays_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn nonfinite_floats_become_null_then_nan() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>(&s).unwrap().is_nan());
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.5f64, -2.25, 0.0];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 ,\n3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u32>("1 x").is_err());
    }

    #[test]
    fn to_vec_matches_to_string() {
        let v = vec![1u8, 2, 3];
        assert_eq!(to_vec(&v).unwrap(), to_string(&v).unwrap().into_bytes());
    }
}
