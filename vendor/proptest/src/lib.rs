//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range / tuple / collection / `any`
//! strategies, `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Cases are generated from a fixed-seed
//! [`rand::rngs::SmallRng`], so failures are reproducible run-to-run.
//!
//! Differences from real proptest: no shrinking (a failure reports the case
//! index, not a minimal input) and no persistence of failing seeds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How a property test case fails.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input is invalid and the case should be discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (discarded case) with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod test_runner {
    //! The RNG driving case generation.

    pub use super::{ProptestConfig, TestCaseError};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Deterministic RNG used by the `proptest!` macro.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Fixed-seed RNG so failures reproduce across runs.
        pub fn deterministic() -> Self {
            TestRng(SmallRng::seed_from_u64(0x5eed_cafe_f00d_0001))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. Object safe: `Box<dyn Strategy>`
    /// works and is the representation behind [`BoxedStrategy`].
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// Types with a canonical "any value" strategy (cf. proptest's
    /// `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uniform {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
        )*};
    }

    arbitrary_uniform! {
        bool => |r| r.0.gen::<bool>(),
        u8 => |r| r.0.gen::<u8>(),
        u16 => |r| r.0.gen::<u32>() as u16,
        u32 => |r| r.0.gen::<u32>(),
        u64 => |r| r.0.gen::<u64>(),
        usize => |r| r.0.gen::<usize>(),
        i8 => |r| r.0.gen::<u8>() as i8,
        i16 => |r| r.0.gen::<u32>() as i16,
        i32 => |r| r.0.gen::<u32>() as i32,
        i64 => |r| r.0.gen::<i64>(),
        isize => |r| r.0.gen::<u64>() as isize,
        f64 => |r| r.0.gen::<f64>(),
        f32 => |r| r.0.gen::<f32>(),
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of type `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Uniform choice among type-erased alternatives; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one property: generate-and-check `config.cases` times.
///
/// This is the engine behind the [`proptest!`] macro; `run_one` is called
/// once per case with the per-case RNG.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut run_one: F)
where
    F: FnMut(&mut test_runner::TestRng, u32) -> Result<(), TestCaseError>,
{
    let mut rng = test_runner::TestRng::deterministic();
    // Perturb the shared deterministic seed per property so sibling tests in
    // one block do not all see identical streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    rng.0 = SmallRng::seed_from_u64(rng.0.gen::<u64>() ^ h);
    let mut rejected = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        match run_one(&mut rng, case) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(16).max(1024),
                    "proptest `{name}`: too many rejected cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {case}: {msg}");
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0usize..10, v in prop::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |rng, _case| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($pat in $strat),+) $body )*
        }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub use strategy::{any, Strategy};

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    pub mod prop {
        //! `prop::collection::...` paths.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic();
        let s = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::deterministic();
        let s = prop::collection::vec(0.0f64..1.0, 3..7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 3 && v.len() < 7);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = TestRng::deterministic();
        let s = prop_oneof![0usize..1, 10usize..11, 20usize..21];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(
            x in 0u32..100,
            v in prop::collection::vec(any::<bool>(), 0..5),
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
