//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset this workspace uses: bounded
//! and unbounded MPMC channels with cloneable senders *and* receivers,
//! blocking `send`/`recv`, `recv_timeout`, and disconnect semantics
//! (`recv` fails once every sender is dropped and the queue is drained;
//! `send` fails once every receiver is dropped).
//!
//! Implemented over a `Mutex<VecDeque>` with two condition variables.
//! Waiter counts gate every condvar notify: `Condvar::notify_one` is a
//! futex syscall on Linux even when nobody is waiting, and with two
//! channel operations per pipeline segment those wasted syscalls dominate
//! per-message overhead in steady state (queues neither empty nor full).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
        /// Threads currently blocked in `recv`/`recv_timeout`. Tracked so
        /// the hot send path can skip the condvar notify (a futex syscall
        /// on Linux even with no waiters) when nobody is asleep.
        recv_waiters: usize,
        /// Threads currently blocked in `send` on a full bounded channel.
        send_waiters: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending on a channel with no receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on a drained, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still empty.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`], carrying the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                // Bounded channels never hold more than `cap` messages, so
                // reserving up front makes every later push allocation-free.
                queue: cap.map_or_else(VecDeque::new, VecDeque::with_capacity),
                cap,
                senders: 1,
                receivers: 1,
                recv_waiters: 0,
                send_waiters: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    if inner.recv_waiters > 0 {
                        self.shared.not_empty.notify_one();
                    }
                    return Ok(());
                }
                inner.send_waiters += 1;
                inner = self.shared.not_full.wait(inner).expect("channel lock");
                inner.send_waiters -= 1;
            }
        }

        /// Send without blocking; on a full channel the message is returned.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            if inner.recv_waiters > 0 {
                self.shared.not_empty.notify_one();
            }
            Ok(())
        }

        /// Whether a bounded channel is currently at capacity.
        pub fn is_full(&self) -> bool {
            let inner = self.shared.inner.lock().expect("channel lock");
            inner.cap.is_some_and(|c| inner.queue.len() >= c)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake receivers so they can observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    if inner.send_waiters > 0 {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.recv_waiters += 1;
                inner = self.shared.not_empty.wait(inner).expect("channel lock");
                inner.recv_waiters -= 1;
            }
        }

        /// Receive with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    if inner.send_waiters > 0 {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.recv_waiters += 1;
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("channel lock");
                inner = guard;
                inner.recv_waiters -= 1;
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if let Some(v) = inner.queue.pop_front() {
                if inner.send_waiters > 0 {
                    self.shared.not_full.notify_one();
                }
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake senders so they can observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip_in_order() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert!(tx.is_full());
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = channel::bounded(8);
        let mut handles = Vec::new();
        for w in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let _ = w;
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
