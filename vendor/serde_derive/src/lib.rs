//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree based, see `vendor/serde`). Because the real `syn` /
//! `quote` crates are unavailable offline, the input is parsed directly from
//! the `proc_macro` token stream and the output is assembled as source text.
//!
//! Supported shapes — exactly what this workspace derives:
//! * structs with named fields,
//! * tuple structs,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Not supported: generics and `#[serde(...)]` attributes (compile error).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip one attribute (`#` + bracket group) if present at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip type tokens until a comma at angle-bracket depth 0; consumes the
/// comma. Returns at end of input too.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i64 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parse `name: Type, ...` named-field lists (struct bodies, struct variants).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        skip_vis(tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':' then the type.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!(
                "serde_derive: expected ':' after field `{}`",
                fields.last().unwrap()
            ),
        }
        skip_type_until_comma(tokens, &mut i);
    }
    fields
}

/// Count tuple fields: top-level commas + 1 (0 for an empty list).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth: i64 = 0;
    let mut count = 1;
    let mut saw_token_since_comma = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    // Tolerate a trailing comma.
    if !saw_token_since_comma {
        count -= 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => panic!("serde_derive: expected struct name"),
                };
                match tokens.get(i + 2) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde_derive (vendored): generics are not supported")
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        return Shape::NamedStruct {
                            name,
                            fields: parse_named_fields(&inner),
                        };
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        return Shape::TupleStruct {
                            name,
                            arity: count_tuple_fields(&inner),
                        };
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                        return Shape::UnitStruct { name };
                    }
                    other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => panic!("serde_derive: expected enum name"),
                };
                match tokens.get(i + 2) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde_derive (vendored): generics are not supported")
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        return Shape::Enum {
                            name,
                            variants: parse_variants(&inner),
                        };
                    }
                    other => panic!("serde_derive: unexpected token after enum name: {other:?}"),
                }
            }
            Some(_) => {
                i += 1;
            }
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

/// `#[derive(Serialize)]` — see the crate docs for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — see the crate docs for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::new(\
                         \"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let arr = v.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                         if arr.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\
                                 \"wrong tuple arity for {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self({items}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok(Self)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let arr = inner.as_array().ok_or_else(|| \
                                         ::serde::DeError::new(\"expected array payload\"))?;\n\
                                     if arr.len() != {n} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::DeError::new(\"wrong variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({items}))\n\
                                 }}"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.get(\"{f}\").ok_or_else(|| \
                                         ::serde::DeError::new(\
                                         \"missing field `{f}` in {name}::{vname}\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             return match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }};\n\
                         }}\n\
                         let pairs = v.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected string or object for {name}\"))?;\n\
                         if pairs.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\
                                 \"expected single-key object for {name}\"));\n\
                         }}\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             {unit_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
