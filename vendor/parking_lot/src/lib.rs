//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container for this repository has no network access, so the
//! workspace vendors the small API subset it actually uses. Semantics match
//! `parking_lot` where it matters to callers: locks do not poison (a
//! panicked holder simply releases the lock), `lock()` is infallible, and
//! `Condvar::wait*` take `&mut MutexGuard` instead of consuming the guard.
//!
//! Backed by `std::sync` primitives; performance characteristics are those
//! of the platform mutex, which is fine for the coarse-grained locks this
//! workspace takes (selector state, segment store).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // without dropping the wrapper.
    guard: Option<std::sync::MutexGuard<'a, T>>,
    owner: &'a std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            guard: Some(guard),
            owner: &self.inner,
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                guard: Some(g),
                owner: &self.inner,
            }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                guard: Some(poisoned.into_inner()),
                owner: &self.inner,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(std_guard);
        let _ = guard.owner; // keep the owner field used in all builds
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
