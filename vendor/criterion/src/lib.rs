//! Offline stand-in for `criterion`.
//!
//! Measures real wall-clock time with the same calibrate / warm-up / sample
//! structure as criterion (estimate iteration cost, pick a batch size so each
//! sample lasts `measurement_time / sample_size`, report the median sample).
//! No statistical regression analysis, no HTML reports.
//!
//! Each benchmark prints a human-readable line plus one machine-readable
//! line prefixed with `CRITERION_JSON` containing
//! `{"group", "bench", "ns_per_iter", "bytes_per_iter", "gb_per_s"}` —
//! scripts can grep for the prefix to build result snapshots.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement markers (only wall-clock here).

    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Per-iteration workload size, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Benchmark driver; hands out [`BenchmarkGroup`]s.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply CLI configuration (accepted and ignored in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total sampling time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.ns_per_iter);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (reports are printed eagerly; this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &str, ns_per_iter: f64) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        let bytes = match self.throughput {
            Some(Throughput::Bytes(b)) => Some(b),
            _ => None,
        };
        let gbps = bytes.map(|b| b as f64 / ns_per_iter);
        match gbps {
            Some(g) => println!("bench {full:<48} {ns_per_iter:>12.1} ns/iter  {g:>8.3} GB/s"),
            None => println!("bench {full:<48} {ns_per_iter:>12.1} ns/iter"),
        }
        let (group_json, bench_json) = if self.name.is_empty() {
            ("", id)
        } else {
            (self.name.as_str(), id)
        };
        println!(
            "CRITERION_JSON {{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"bytes_per_iter\":{},\"gb_per_s\":{}}}",
            group_json,
            bench_json,
            ns_per_iter,
            bytes.map_or("null".to_string(), |b| b.to_string()),
            gbps.map_or("null".to_string(), |g| format!("{g:.4}")),
        );
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`: calibrate during warm-up, then time `sample_size`
    /// batches and keep the median batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up doubles the batch until the total warm-up budget is spent;
        // this also calibrates the per-iteration cost.
        let mut batch: u64 = 1;
        let mut warm_elapsed = Duration::ZERO;
        let mut last_batch_ns = f64::NAN;
        while warm_elapsed < self.warm_up_time {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            last_batch_ns = took.as_nanos() as f64 / batch as f64;
            warm_elapsed += took;
            if batch < u64::MAX / 2 {
                batch *= 2;
            }
        }
        let est_iter_ns = if last_batch_ns.is_finite() && last_batch_ns > 0.0 {
            last_batch_ns
        } else {
            1.0
        };
        // Size each sample so all samples together fill measurement_time.
        let per_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let iters_per_sample = (per_sample_ns / est_iter_ns).ceil().max(1.0) as u64;
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples_ns[samples_ns.len() / 2];
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("compress", "gorilla").to_string(),
            "compress/gorilla"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
