//! Largest-Triangle-Three-Buckets downsampling (Steinarsson 2013), the
//! Visvalingam–Whyatt-derived line generalization used by TVStore and
//! TimescaleDB dashboards. Excels at keeping the *visual* shape of a
//! signal: each bucket contributes the point forming the largest triangle
//! with the previously selected point and the next bucket's centroid.
//!
//! Payload: `(index: u32, value: f32)` pairs, ascending; reconstruction is
//! linear interpolation, like PLA. Recoding re-runs LTTB over the stored
//! points themselves.

use crate::block::{CodecId, CompressedBlock, POINT_BYTES};
use crate::error::{CodecError, Result};
use crate::traits::{budget_bytes, check_lossy_args, Codec, CodecKind, LossyCodec};

const POINT_PAIR_BYTES: usize = 8;

/// LTTB codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lttb;

/// Run LTTB over `(x, y)` points, selecting `m >= 2` of them.
/// Returns indices into `points`.
fn lttb_select(points: &[(f64, f64)], m: usize) -> Vec<usize> {
    let n = points.len();
    if m >= n {
        return (0..n).collect();
    }
    if m <= 2 {
        return vec![0, n - 1];
    }
    let mut selected = Vec::with_capacity(m);
    selected.push(0usize);
    // m-2 interior buckets over points[1..n-1].
    let buckets = m - 2;
    let span = (n - 2) as f64 / buckets as f64;
    let mut prev = 0usize;
    for b in 0..buckets {
        let start = (1.0 + b as f64 * span).floor() as usize;
        let end = ((1.0 + (b + 1) as f64 * span).floor() as usize).min(n - 1);
        let end = end.max(start + 1);
        // Centroid of the NEXT bucket (or the last point for the final one).
        let (nx, ny) = if b + 1 < buckets {
            let ns = (1.0 + (b + 1) as f64 * span).floor() as usize;
            let ne = ((1.0 + (b + 2) as f64 * span).floor() as usize).min(n - 1);
            let ne = ne.max(ns + 1);
            let count = (ne - ns) as f64;
            let sx: f64 = points[ns..ne].iter().map(|p| p.0).sum();
            let sy: f64 = points[ns..ne].iter().map(|p| p.1).sum();
            (sx / count, sy / count)
        } else {
            points[n - 1]
        };
        let (px, py) = points[prev];
        let mut best_idx = start;
        let mut best_area = -1.0f64;
        for (i, &(x, y)) in points.iter().enumerate().take(end).skip(start) {
            let area = ((px - nx) * (y - py) - (px - x) * (ny - py)).abs();
            if area > best_area {
                best_area = area;
                best_idx = i;
            }
        }
        selected.push(best_idx);
        prev = best_idx;
    }
    selected.push(n - 1);
    selected
}

impl Lttb {
    fn points_for(n: usize, ratio: f64) -> usize {
        (budget_bytes(n, ratio) / POINT_PAIR_BYTES).min(n)
    }

    fn encode(n: usize, pairs: &[(u32, f32)]) -> CompressedBlock {
        let mut payload = Vec::with_capacity(pairs.len() * POINT_PAIR_BYTES);
        for &(idx, val) in pairs {
            payload.extend_from_slice(&idx.to_le_bytes());
            payload.extend_from_slice(&val.to_le_bytes());
        }
        CompressedBlock::new(CodecId::Lttb, n, payload)
    }

    pub(crate) fn parse(block: &CompressedBlock) -> Result<Vec<(u32, f32)>> {
        if block.payload.is_empty() || !block.payload.len().is_multiple_of(POINT_PAIR_BYTES) {
            return Err(CodecError::Corrupt("lttb payload size"));
        }
        let mut pairs = Vec::with_capacity(block.payload.len() / POINT_PAIR_BYTES);
        let mut prev: Option<u32> = None;
        for c in block.payload.chunks_exact(POINT_PAIR_BYTES) {
            let idx = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
            let val = f32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
            if idx >= block.n_points || prev.is_some_and(|p| idx <= p) {
                return Err(CodecError::Corrupt("lttb index out of order"));
            }
            prev = Some(idx);
            pairs.push((idx, val));
        }
        Ok(pairs)
    }

    fn interpolate(n: usize, pairs: &[(u32, f32)]) -> Vec<f64> {
        let mut out = vec![0.0f64; n];
        if pairs.is_empty() {
            return out;
        }
        for v in out.iter_mut().take(pairs[0].0 as usize + 1) {
            *v = pairs[0].1 as f64;
        }
        for w in pairs.windows(2) {
            let (a_idx, a_val) = (w[0].0 as usize, w[0].1 as f64);
            let (b_idx, b_val) = (w[1].0 as usize, w[1].1 as f64);
            for (i, slot) in out.iter_mut().enumerate().take(b_idx + 1).skip(a_idx) {
                let t = (i - a_idx) as f64 / (b_idx - a_idx) as f64;
                *slot = a_val + (b_val - a_val) * t;
            }
        }
        let last = pairs[pairs.len() - 1];
        for v in out.iter_mut().skip(last.0 as usize) {
            *v = last.1 as f64;
        }
        out
    }
}

impl Codec for Lttb {
    fn id(&self) -> CodecId {
        CodecId::Lttb
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossy
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        self.compress_to_ratio(data, 0.5)
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        let pairs = Self::parse(block)?;
        Ok(Self::interpolate(block.n_points as usize, &pairs))
    }
}

impl LossyCodec for Lttb {
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock> {
        check_lossy_args(data.len(), ratio)?;
        let n = data.len();
        let m = Self::points_for(n, ratio);
        let needed = if n == 1 { 1 } else { 2 };
        if m < needed {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        if n == 1 {
            return Ok(Self::encode(1, &[(0, data[0] as f32)]));
        }
        let points: Vec<(f64, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        let idxs = lttb_select(&points, m);
        let pairs: Vec<(u32, f32)> = idxs
            .into_iter()
            .map(|i| (i as u32, data[i] as f32))
            .collect();
        Ok(Self::encode(n, &pairs))
    }

    fn min_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let needed = if n == 1 { 1 } else { 2 };
        (needed * POINT_PAIR_BYTES) as f64 / (n * POINT_BYTES) as f64
    }

    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        check_lossy_args(n, ratio)?;
        if block.ratio() <= ratio {
            return Err(CodecError::RecodeUnsupported(
                "block already at or below target ratio",
            ));
        }
        let m = Self::points_for(n, ratio);
        if m < 2 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        // Re-run LTTB over the stored points (virtual decompression).
        let pairs = Self::parse(block)?;
        let points: Vec<(f64, f64)> = pairs.iter().map(|&(i, v)| (i as f64, v as f64)).collect();
        let idxs = lttb_select(&points, m);
        let thinned: Vec<(u32, f32)> = idxs.into_iter().map(|i| pairs[i]).collect();
        Ok(Self::encode(n, &thinned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.07).sin() * 5.0).collect()
    }

    #[test]
    fn keeps_endpoints() {
        let data = sample(500);
        let block = Lttb.compress_to_ratio(&data, 0.1).unwrap();
        let pairs = Lttb::parse(&block).unwrap();
        assert_eq!(pairs.first().unwrap().0, 0);
        assert_eq!(pairs.last().unwrap().0, 499);
    }

    #[test]
    fn hits_target_ratio() {
        let data = sample(1000);
        for target in [0.5, 0.2, 0.05] {
            let block = Lttb.compress_to_ratio(&data, target).unwrap();
            assert!(block.ratio() <= target + 1e-9);
        }
    }

    #[test]
    fn captures_visual_extremes() {
        let mut data = vec![0.0; 300];
        data[50] = 40.0;
        data[200] = -35.0;
        let block = Lttb.compress_to_ratio(&data, 0.1).unwrap();
        let back = Lttb.decompress(&block).unwrap();
        let max_back = back.iter().cloned().fold(f64::MIN, f64::max);
        let min_back = back.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max_back > 39.0, "spike lost: {max_back}");
        assert!(min_back < -34.0, "dip lost: {min_back}");
    }

    #[test]
    fn exact_when_budget_covers_all() {
        let data = sample(10);
        let block = Lttb.compress_to_ratio(&data, 1.0).unwrap();
        let back = Lttb.decompress(&block).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn recode_shrinks() {
        let data = sample(1000);
        let block = Lttb.compress_to_ratio(&data, 0.2).unwrap();
        let recoded = Lttb.recode(&block, 0.05).unwrap();
        assert!(recoded.ratio() <= 0.05 + 1e-9);
        assert_eq!(Lttb.decompress(&recoded).unwrap().len(), 1000);
    }

    #[test]
    fn floor_and_errors() {
        let data = sample(100);
        assert!(Lttb.compress_to_ratio(&data, 0.005).is_err());
        assert!(Lttb.compress_to_ratio(&[], 0.5).is_err());
    }

    #[test]
    fn single_point_roundtrip() {
        let block = Lttb.compress_to_ratio(&[9.0], 1.0).unwrap();
        let back = Lttb.decompress(&block).unwrap();
        assert!((back[0] - 9.0).abs() < 1e-6);
    }
}
