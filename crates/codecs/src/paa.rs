//! Piecewise Aggregate Approximation (Keogh et al., KAIS 2001).
//!
//! The segment is cut into fixed windows and each window is replaced by its
//! mean. Sums and averages over the reconstruction are nearly exact (window
//! means preserve window sums), which is why the paper's SUM-query
//! experiment (Figure 8) has PAA as a ground-truth winner. Ratio is
//! controlled by the window size; recoding merges adjacent windows using
//! count-weighted means — no access to the original data required.
//!
//! Payload: `window: u32` then one `f64` mean per window.

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef, POINT_BYTES};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{budget_bytes, check_lossy_args, Codec, CodecKind, LossyCodec};

const HDR_BYTES: usize = 4;
const MEAN_BYTES: usize = 8;

/// PAA codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Paa;

impl Paa {
    /// Number of windows a byte budget allows.
    fn windows_for(n: usize, ratio: f64) -> usize {
        let budget = budget_bytes(n, ratio);
        if budget <= HDR_BYTES {
            return 0;
        }
        ((budget - HDR_BYTES) / MEAN_BYTES).min(n)
    }

    /// Compress with an explicit window size (`window >= 1`).
    pub fn compress_with_window(&self, data: &[f64], window: usize) -> Result<CompressedBlock> {
        let mut payload = Vec::new();
        self.window_payload_into(data, window, &mut payload)?;
        Ok(CompressedBlock::new(self.id(), data.len(), payload))
    }

    fn window_payload_into(
        &self,
        data: &[f64],
        window: usize,
        payload: &mut Vec<u8>,
    ) -> Result<()> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        if window == 0 {
            return Err(CodecError::InvalidParameter("window must be >= 1"));
        }
        payload.clear();
        payload.reserve(HDR_BYTES + data.len().div_ceil(window) * MEAN_BYTES);
        payload.extend_from_slice(&(window as u32).to_le_bytes());
        for chunk in data.chunks(window) {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            payload.extend_from_slice(&mean.to_le_bytes());
        }
        Ok(())
    }

    pub(crate) fn parse(block: &CompressedBlock) -> Result<(usize, Vec<f64>)> {
        if block.payload.len() < HDR_BYTES
            || !(block.payload.len() - HDR_BYTES).is_multiple_of(MEAN_BYTES)
        {
            return Err(CodecError::Corrupt("paa payload size"));
        }
        let window =
            u32::from_le_bytes(block.payload[..HDR_BYTES].try_into().expect("4 bytes")) as usize;
        if window == 0 {
            return Err(CodecError::Corrupt("paa zero window"));
        }
        let means: Vec<f64> = block.payload[HDR_BYTES..]
            .chunks_exact(MEAN_BYTES)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let n = block.n_points as usize;
        if means.len() != n.div_ceil(window) {
            return Err(CodecError::Corrupt("paa mean count mismatch"));
        }
        Ok((window, means))
    }
}

impl Codec for Paa {
    fn id(&self) -> CodecId {
        CodecId::Paa
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossy
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        // Natural setting: window of 2 (ratio ≈ 0.5).
        self.compress_with_window(data, 2)
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        self.window_payload_into(data, 2, &mut scratch.out)?;
        Ok(CompressedBlockRef::new(self.id(), data.len(), &scratch.out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        // Same validation as `parse`, but expand means straight off the
        // payload without materializing the intermediate vector.
        if block.payload.len() < HDR_BYTES
            || !(block.payload.len() - HDR_BYTES).is_multiple_of(MEAN_BYTES)
        {
            return Err(CodecError::Corrupt("paa payload size"));
        }
        let window =
            u32::from_le_bytes(block.payload[..HDR_BYTES].try_into().expect("4 bytes")) as usize;
        if window == 0 {
            return Err(CodecError::Corrupt("paa zero window"));
        }
        let means = block.payload[HDR_BYTES..].chunks_exact(MEAN_BYTES);
        if means.len() != n.div_ceil(window) {
            return Err(CodecError::Corrupt("paa mean count mismatch"));
        }
        out.clear();
        out.reserve(n);
        for (w_idx, c) in means.enumerate() {
            let mean = f64::from_le_bytes(c.try_into().expect("8 bytes"));
            let count = window.min(n - w_idx * window);
            out.extend(std::iter::repeat_n(mean, count));
        }
        Ok(())
    }
}

impl LossyCodec for Paa {
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock> {
        check_lossy_args(data.len(), ratio)?;
        let n = data.len();
        let m = Self::windows_for(n, ratio);
        if m == 0 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        let window = n.div_ceil(m);
        self.compress_with_window(data, window)
    }

    fn min_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        (HDR_BYTES + MEAN_BYTES) as f64 / (n * POINT_BYTES) as f64
    }

    fn compress_with_error_bound(
        &self,
        data: &[f64],
        max_abs_error: f64,
    ) -> Result<CompressedBlock> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        if !max_abs_error.is_finite() || max_abs_error <= 0.0 {
            return Err(CodecError::InvalidParameter("error bound must be positive"));
        }
        // Largest window whose in-window deviation from the mean stays
        // within the bound. Deviation is not strictly monotone in the
        // window size, so exponential-search a candidate and then walk
        // down until the bound verifies.
        let fits = |w: usize| -> bool {
            data.chunks(w).all(|chunk| {
                let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
                chunk.iter().all(|v| (v - mean).abs() <= max_abs_error)
            })
        };
        let mut w = 1usize;
        while w < data.len() && fits(w * 2) {
            w *= 2;
        }
        while w > 1 && !fits(w) {
            w -= 1;
        }
        self.compress_with_window(data, w)
    }

    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        self.check_block(block)?;
        check_lossy_args(block.n_points as usize, ratio)?;
        if block.ratio() <= ratio {
            return Err(CodecError::RecodeUnsupported(
                "block already at or below target ratio",
            ));
        }
        let n = block.n_points as usize;
        let (window, means) = Self::parse(block)?;
        let m_new = Self::windows_for(n, ratio);
        if m_new == 0 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        // Merge k adjacent old windows into each new one, weighting each old
        // mean by the number of original points it covers.
        let new_window = n.div_ceil(m_new).div_ceil(window) * window;
        let k = new_window / window;
        let mut payload = Vec::with_capacity(HDR_BYTES + means.len().div_ceil(k) * MEAN_BYTES);
        payload.extend_from_slice(&(new_window as u32).to_le_bytes());
        for (g_idx, group) in means.chunks(k).enumerate() {
            let mut total = 0.0;
            let mut count = 0usize;
            for (j, &mean) in group.iter().enumerate() {
                let w_idx = g_idx * k + j;
                let c = window.min(n - w_idx * window);
                total += mean * c as f64;
                count += c;
            }
            payload.extend_from_slice(&(total / count as f64).to_le_bytes());
        }
        Ok(CompressedBlock::new(self.id(), n, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.02).sin() * 4.0 + 1.0)
            .collect()
    }

    #[test]
    fn window_one_is_exact() {
        let data = sample(100);
        let block = Paa.compress_with_window(&data, 1).unwrap();
        assert_eq!(Paa.decompress(&block).unwrap(), data);
    }

    #[test]
    fn hits_target_ratio() {
        let data = sample(1000);
        for target in [0.5, 0.25, 0.1, 0.05, 0.01] {
            let block = Paa.compress_to_ratio(&data, target).unwrap();
            assert!(
                block.ratio() <= target + 1e-9,
                "{} > {target}",
                block.ratio()
            );
        }
    }

    #[test]
    fn preserves_sum_nearly_exactly() {
        let data = sample(1000);
        let block = Paa.compress_to_ratio(&data, 0.1).unwrap();
        let back = Paa.decompress(&block).unwrap();
        let s1: f64 = data.iter().sum();
        let s2: f64 = back.iter().sum();
        assert!((s1 - s2).abs() / s1.abs() < 1e-10, "{s1} vs {s2}");
    }

    #[test]
    fn partial_last_window_roundtrips() {
        // n not a multiple of window.
        let data = sample(103);
        let block = Paa.compress_with_window(&data, 10).unwrap();
        let back = Paa.decompress(&block).unwrap();
        assert_eq!(back.len(), 103);
        // Last window covers exactly 3 points and stores their mean.
        let tail_mean = data[100..].iter().sum::<f64>() / 3.0;
        assert!((back[102] - tail_mean).abs() < 1e-12);
    }

    #[test]
    fn recode_matches_weighted_merge_and_sum() {
        let data = sample(1000);
        let block = Paa.compress_to_ratio(&data, 0.2).unwrap();
        let recoded = Paa.recode(&block, 0.05).unwrap();
        assert!(recoded.ratio() <= 0.05 + 1e-9);
        let back = Paa.decompress(&recoded).unwrap();
        let s1: f64 = data.iter().sum();
        let s2: f64 = back.iter().sum();
        // Count-weighted merging keeps the global sum intact.
        assert!((s1 - s2).abs() / s1.abs() < 1e-9, "{s1} vs {s2}");
    }

    #[test]
    fn recode_rejects_growth() {
        let data = sample(500);
        let block = Paa.compress_to_ratio(&data, 0.1).unwrap();
        assert!(matches!(
            Paa.recode(&block, 0.5),
            Err(CodecError::RecodeUnsupported(_))
        ));
    }

    #[test]
    fn floor_is_single_window() {
        let data = sample(64);
        let floor = Paa.min_ratio(64);
        let block = Paa.compress_to_ratio(&data, floor * 1.01).unwrap();
        let back = Paa.decompress(&block).unwrap();
        let mean = data.iter().sum::<f64>() / 64.0;
        assert!(back.iter().all(|&v| (v - mean).abs() < 1e-12));
        assert!(Paa.compress_to_ratio(&data, floor * 0.5).is_err());
    }

    #[test]
    fn error_shrinks_with_ratio() {
        let data = sample(1000);
        let rmse = |r: f64| {
            let b = Paa.compress_to_ratio(&data, r).unwrap();
            let back = Paa.decompress(&b).unwrap();
            (data
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / data.len() as f64)
                .sqrt()
        };
        assert!(rmse(0.5) <= rmse(0.1));
        assert!(rmse(0.1) <= rmse(0.02));
    }

    #[test]
    fn empty_and_bad_args_rejected() {
        assert!(Paa.compress_to_ratio(&[], 0.5).is_err());
        assert!(Paa.compress_to_ratio(&[1.0], 0.0).is_err());
        assert!(Paa.compress_with_window(&[1.0], 0).is_err());
    }
}
