//! LZ77 matching engine shared by the byte-oriented codecs.
//!
//! A classic hash-chain matcher over a 32 KiB window, with a tunable chain
//! search depth and optional lazy matching. Effort levels map to the
//! gzip/zlib speed-vs-ratio spectrum the paper's Figure 2/3 relies on:
//! greedy depth-1 search is the "snappy" fast path; deep chains with lazy
//! evaluation form the "gzip" slow path.

// The expand path consumes untrusted token streams; surface every raw index
// so each one carries an explicit bounds argument.
#![warn(clippy::indexing_slicing)]

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (the DEFLATE limit).
pub const MAX_MATCH: usize = 258;
/// Sliding-window size; matches may reference at most this far back.
pub const WINDOW: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length (3..=258).
        len: u16,
        /// Backward distance (1..=32768).
        dist: u16,
    },
}

/// Matcher tuning. Higher `max_chain` finds better matches but costs time.
#[derive(Debug, Clone, Copy)]
pub struct LzConfig {
    /// How many chain entries to examine per position.
    pub max_chain: usize,
    /// Defer emitting a match if the next position has a longer one.
    pub lazy: bool,
}

impl LzConfig {
    /// Fast greedy configuration (snappy-class).
    pub fn fast() -> Self {
        Self {
            max_chain: 1,
            lazy: false,
        }
    }

    /// Effort level 1..=10 mapped onto chain depth and laziness,
    /// mirroring zlib's level ladder.
    pub fn level(level: u8) -> Self {
        match level {
            0 | 1 => Self {
                max_chain: 4,
                lazy: false,
            },
            2 => Self {
                max_chain: 8,
                lazy: false,
            },
            3 => Self {
                max_chain: 16,
                lazy: false,
            },
            4 | 5 => Self {
                max_chain: 16,
                lazy: true,
            },
            6 => Self {
                max_chain: 32,
                lazy: true,
            },
            7 => Self {
                max_chain: 64,
                lazy: true,
            },
            8 => Self {
                max_chain: 128,
                lazy: true,
            },
            9 => Self {
                max_chain: 256,
                lazy: true,
            },
            _ => Self {
                max_chain: 1024,
                lazy: true,
            },
        }
    }
}

// Hot path over trusted input: callers guarantee `i + 2 < data.len()`
// (`hash_at` only yields positions with a full 3-gram).
#[allow(clippy::indexing_slicing)]
#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max` (the LZ match-extension kernel). `max` must not run either
/// cursor past `data.len()`.
///
/// Dispatches through [`crate::simd`]: AVX2/NEON hosts compare 32/16
/// bytes per step with a movemask-style mismatch locate, everything else
/// takes the portable 8-bytes-per-step [`match_len_swar`] kernel. All
/// tiers agree; equivalence is pinned by unit tests here and per-backend
/// property tests in `tests/kernel_equivalence.rs`.
#[inline]
pub fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    crate::simd::active().match_len(data, a, b, max)
}

/// Portable word-at-a-time match extension (the `Backend::Swar` tier of
/// [`crate::simd::Backend::match_len`]): compares 8 bytes per iteration
/// via unaligned little-endian `u64` loads; the first differing byte is
/// located with a trailing-zeros count on the XOR of the mismatching
/// words. Also the tail kernel for the wider SIMD tiers.
// Hot path over trusted input: `max` caps both cursors at `data.len()`.
#[allow(clippy::indexing_slicing)]
#[inline]
pub(crate) fn match_len_swar(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut len = 0;
    while len + 8 <= max {
        let wa = u64::from_le_bytes(data[a + len..a + len + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(data[b + len..b + len + 8].try_into().unwrap());
        let x = wa ^ wb;
        if x != 0 {
            return len + (x.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// Reference byte-at-a-time match extension (the `Backend::Scalar` tier).
/// Differential baseline for tests and benches; not used on any hot path.
// Reference kernel over trusted input: same bounds contract as `match_len`.
#[allow(clippy::indexing_slicing)]
#[inline]
pub(crate) fn match_len_scalar(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut len = 0;
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// Append `len` bytes starting `dist` back from the end of `out` (the LZ
/// match-copy kernel). The caller must have validated `1 <= dist <=
/// out.len()`. Non-overlapping copies (`dist >= len`) are one bulk
/// `extend_from_within` (a memcpy); overlapping copies double the
/// available source region per round, so a length-`len` run costs
/// O(log len) memcpys instead of `len` byte pushes. Byte-identical to the
/// naive loop: each round only copies bytes that already exist.
#[inline]
pub(crate) fn append_match(out: &mut Vec<u8>, dist: usize, len: usize) {
    debug_assert!(dist >= 1 && dist <= out.len());
    let start = out.len() - dist;
    if dist >= len {
        out.extend_from_within(start..start + len);
        return;
    }
    let mut remaining = len;
    while remaining > 0 {
        let avail = out.len() - start;
        let take = avail.min(remaining);
        out.extend_from_within(start..start + take);
        remaining -= take;
    }
}

/// Reusable LZ77 state: the matcher's hash chains and the token buffer.
///
/// The hash head table is 128 KiB. Entries are generation-stamped — a
/// stored value is `base + pos + 1`, valid only while it exceeds the
/// current `base` — so successive calls reuse the table with **no per-call
/// clearing** (zeroing head + chain links costs more than the matching
/// itself on segment-sized inputs). `prev` entries are always written
/// before they are read within a call, so they are never cleared either.
#[derive(Debug, Default)]
pub struct LzScratch {
    /// Tokens produced by the most recent [`lz77_tokens_into`] call.
    pub tokens: Vec<Token>,
    head: Vec<u32>,
    prev: Vec<u32>,
    /// Stamp base for the current call; advanced by `data.len() + 1` per
    /// call, reset (with a table clear) when it nears `u32::MAX`.
    base: u32,
}

impl LzScratch {
    /// Prepare the tables for a call over `len` bytes and return the stamp
    /// base for this generation.
    fn begin(&mut self, len: usize) -> u32 {
        if self.head.len() < HASH_SIZE {
            self.head.resize(HASH_SIZE, 0);
        }
        if self.prev.len() < len {
            self.prev.resize(len, 0);
        }
        if u32::MAX as usize - self.base as usize <= len + 1 {
            // Stamp space exhausted (once per ~4 GiB processed): start over.
            self.head.fill(0);
            self.base = 0;
        }
        let base = self.base;
        self.base = base + len as u32 + 1;
        base
    }
}

struct Matcher<'a> {
    data: &'a [u8],
    head: &'a mut [u32],
    prev: &'a mut [u32],
    /// Stamps at or below this value are stale entries from earlier calls.
    base: u32,
    max_chain: usize,
}

// Hot path over trusted input: chain indices are positions previously
// inserted for this `data`, and `prev` is sized to `data.len()` by `begin`.
#[allow(clippy::indexing_slicing)]
impl<'a> Matcher<'a> {
    /// Hash of position `i`, or `None` past the last full 3-gram. Computed
    /// once per examined position and shared between `best_match` and
    /// `insert_hashed`.
    #[inline]
    fn hash_at(&self, i: usize) -> Option<usize> {
        (i + MIN_MATCH <= self.data.len()).then(|| hash3(self.data, i))
    }

    /// Insert position `i` into the hash chains.
    #[inline]
    fn insert(&mut self, i: usize) {
        if let Some(h) = self.hash_at(i) {
            self.insert_hashed(i, h);
        }
    }

    /// [`Matcher::insert`] with the hash already computed.
    #[inline]
    fn insert_hashed(&mut self, i: usize, h: usize) {
        self.prev[i] = self.head[h];
        self.head[h] = self.base + i as u32 + 1;
    }

    /// Find the best match starting at `i` (whose hash is `h`), or `None`.
    fn best_match(&self, i: usize, h: usize) -> Option<(usize, usize)> {
        let max = (self.data.len() - i).min(MAX_MATCH);
        let mut stamp = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.max_chain;
        let min_pos = i.saturating_sub(WINDOW);
        while stamp > self.base && chain > 0 {
            let c = (stamp - self.base - 1) as usize;
            if c < min_pos {
                break;
            }
            // A candidate can only improve on the best so far if it agrees
            // at the first currently-unmatched byte (zlib's guard check).
            if data_at(self.data, c + best_len) == data_at(self.data, i + best_len) {
                let len = match_len(self.data, c, i, max);
                if len > best_len {
                    best_len = len;
                    best_dist = i - c;
                    if len == max {
                        break;
                    }
                }
            }
            stamp = self.prev[c];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// `data[i]` or a sentinel past the end (guard reads may probe one byte
/// beyond the longest possible match).
#[inline]
fn data_at(data: &[u8], i: usize) -> u16 {
    data.get(i).map_or(0x100, |&b| b as u16)
}

/// Tokenize `data` with the given configuration.
pub fn lz77_tokens(data: &[u8], config: LzConfig) -> Vec<Token> {
    let mut scratch = LzScratch::default();
    lz77_tokens_into(data, config, &mut scratch);
    scratch.tokens
}

/// [`lz77_tokens`] into a reusable scratch: the result lands in
/// `scratch.tokens` and the matcher state is recycled across calls.
// Hot path over trusted input: `i` never passes `data.len()` (match lengths
// are bounded by the remaining input).
#[allow(clippy::indexing_slicing)]
pub fn lz77_tokens_into(data: &[u8], config: LzConfig, scratch: &mut LzScratch) {
    let base = scratch.begin(data.len());
    let (tokens, mut m) = {
        // Split the borrow: tokens grow while the matcher holds the tables.
        let LzScratch {
            tokens, head, prev, ..
        } = scratch;
        tokens.clear();
        tokens.reserve(data.len() / 2 + 8);
        (
            tokens,
            Matcher {
                data,
                head,
                prev,
                base,
                max_chain: config.max_chain,
            },
        )
    };
    if data.is_empty() {
        return;
    }
    let mut i = 0usize;
    while i < data.len() {
        let hash = m.hash_at(i);
        let found = hash.and_then(|h| m.best_match(i, h));
        match found {
            Some((mut len, mut dist)) => {
                let h = hash.expect("a match implies a full 3-gram");
                if config.lazy && i + 1 < data.len() {
                    // Peek one position ahead; emit a literal if it starts a
                    // strictly better match (classic lazy matching).
                    m.insert_hashed(i, h);
                    let peek = m.hash_at(i + 1).and_then(|h1| m.best_match(i + 1, h1));
                    if let Some((len2, dist2)) = peek {
                        if len2 > len {
                            tokens.push(Token::Literal(data[i]));
                            i += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    // First position already inserted above.
                    for k in i + 1..i + len {
                        m.insert(k);
                    }
                    i += len;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    m.insert_hashed(i, h);
                    for k in i + 1..i + len {
                        m.insert(k);
                    }
                    i += len;
                }
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                if let Some(h) = hash {
                    m.insert_hashed(i, h);
                }
                i += 1;
            }
        }
    }
}

/// Expand tokens back into bytes. `expected_len` pre-sizes the output.
pub fn lz77_expand(tokens: &[Token], expected_len: usize) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::new();
    lz77_expand_into(tokens, expected_len, &mut out)?;
    Ok(out)
}

/// [`lz77_expand`] into a reused buffer (cleared, capacity kept).
///
/// Corruption containment: match distances are validated against the
/// decoded prefix and every literal/copy is capped at `expected_len`, so a
/// corrupt token stream can neither read out of bounds nor grow `out`
/// beyond the declared size.
pub fn lz77_expand_into(
    tokens: &[Token],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), &'static str> {
    out.clear();
    out.reserve(expected_len);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                if out.len() >= expected_len {
                    return Err("literal overruns output");
                }
                out.push(b);
            }
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err("match distance out of range");
                }
                if out.len() + len > expected_len {
                    return Err("match copy overruns output");
                }
                append_match(out, dist, len);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], config: LzConfig) {
        let tokens = lz77_tokens(data, config);
        let back = lz77_expand(&tokens, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"", LzConfig::fast());
        roundtrip(b"a", LzConfig::fast());
        roundtrip(b"ab", LzConfig::level(9));
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc".to_vec();
        let tokens = lz77_tokens(&data, LzConfig::level(6));
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        roundtrip(&data, LzConfig::level(6));
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // Run of a single byte forces dist=1, len>1 overlapping copies.
        let data = vec![7u8; 1000];
        let tokens = lz77_tokens(&data, LzConfig::level(6));
        assert!(
            tokens.len() < 20,
            "run should collapse, got {}",
            tokens.len()
        );
        roundtrip(&data, LzConfig::level(6));
    }

    #[test]
    fn all_configs_roundtrip_mixed_data() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(&(i % 97).to_le_bytes());
        }
        for cfg in [
            LzConfig::fast(),
            LzConfig::level(1),
            LzConfig::level(6),
            LzConfig::level(9),
            LzConfig::level(10),
        ] {
            roundtrip(&data, cfg);
        }
    }

    #[test]
    fn deeper_chains_compress_no_worse() {
        let mut data = Vec::new();
        let mut x = 12345u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
            data.push((x % 7) as u8); // low-entropy stream
        }
        // Lazy matching is a heuristic: allow a little slack, but deep
        // search should never be drastically worse than greedy.
        let shallow = lz77_tokens(&data, LzConfig::level(1)).len();
        let deep = lz77_tokens(&data, LzConfig::level(9)).len();
        assert!(
            deep as f64 <= shallow as f64 * 1.10,
            "deep {deep} vs shallow {shallow}"
        );
    }

    #[test]
    fn match_len_swar_matches_scalar() {
        // Repeating pattern with mismatches planted at every offset within
        // a word, so the trailing_zeros tie-break is exercised byte by byte.
        let mut data: Vec<u8> = (0..256u32).map(|i| (i % 13) as u8).collect();
        for flip in 0..24 {
            data[128 + flip] ^= 0xA5;
            for max in [0, 1, 5, 7, 8, 9, 15, 16, 17, 33, 64, 120] {
                let want = match_len_scalar(&data, 0, 128, max);
                assert_eq!(
                    match_len(&data, 0, 128, max),
                    want,
                    "dispatched, flip {flip} max {max}"
                );
                for &b in crate::simd::supported() {
                    assert_eq!(
                        b.match_len(&data, 0, 128, max),
                        want,
                        "{} flip {flip} max {max}",
                        b.name()
                    );
                }
            }
            data[128 + flip] ^= 0xA5;
        }
    }

    #[test]
    fn append_match_matches_byte_loop() {
        // Every (dist, len) shape: non-overlap, exact, and deep overlap.
        for dist in 1..=20usize {
            for len in 0..=50usize {
                let seed: Vec<u8> = (0..20).map(|i| (i * 7 + 3) as u8).collect();
                let mut fast = seed.clone();
                append_match(&mut fast, dist, len);
                let mut slow = seed.clone();
                let start = slow.len() - dist;
                for k in 0..len {
                    let b = slow[start + k];
                    slow.push(b);
                }
                assert_eq!(fast, slow, "dist {dist} len {len}");
            }
        }
    }

    #[test]
    fn expand_rejects_bad_distance() {
        let tokens = vec![Token::Match { len: 5, dist: 3 }];
        assert!(lz77_expand(&tokens, 5).is_err());
    }

    #[test]
    fn random_bytes_roundtrip() {
        let mut x = 0xDEADBEEFu64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        roundtrip(&data, LzConfig::level(6));
        roundtrip(&data, LzConfig::fast());
    }
}
