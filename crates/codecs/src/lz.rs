//! LZ77 matching engine shared by the byte-oriented codecs.
//!
//! A classic hash-chain matcher over a 32 KiB window, with a tunable chain
//! search depth and optional lazy matching. Effort levels map to the
//! gzip/zlib speed-vs-ratio spectrum the paper's Figure 2/3 relies on:
//! greedy depth-1 search is the "snappy" fast path; deep chains with lazy
//! evaluation form the "gzip" slow path.

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (the DEFLATE limit).
pub const MAX_MATCH: usize = 258;
/// Sliding-window size; matches may reference at most this far back.
pub const WINDOW: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length (3..=258).
        len: u16,
        /// Backward distance (1..=32768).
        dist: u16,
    },
}

/// Matcher tuning. Higher `max_chain` finds better matches but costs time.
#[derive(Debug, Clone, Copy)]
pub struct LzConfig {
    /// How many chain entries to examine per position.
    pub max_chain: usize,
    /// Defer emitting a match if the next position has a longer one.
    pub lazy: bool,
}

impl LzConfig {
    /// Fast greedy configuration (snappy-class).
    pub fn fast() -> Self {
        Self {
            max_chain: 1,
            lazy: false,
        }
    }

    /// Effort level 1..=10 mapped onto chain depth and laziness,
    /// mirroring zlib's level ladder.
    pub fn level(level: u8) -> Self {
        match level {
            0 | 1 => Self {
                max_chain: 4,
                lazy: false,
            },
            2 => Self {
                max_chain: 8,
                lazy: false,
            },
            3 => Self {
                max_chain: 16,
                lazy: false,
            },
            4 | 5 => Self {
                max_chain: 16,
                lazy: true,
            },
            6 => Self {
                max_chain: 32,
                lazy: true,
            },
            7 => Self {
                max_chain: 64,
                lazy: true,
            },
            8 => Self {
                max_chain: 128,
                lazy: true,
            },
            9 => Self {
                max_chain: 256,
                lazy: true,
            },
            _ => Self {
                max_chain: 1024,
                lazy: true,
            },
        }
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut len = 0;
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<i32>,
    prev: Vec<i32>,
    max_chain: usize,
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8], max_chain: usize) -> Self {
        Self {
            data,
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; data.len()],
            max_chain,
        }
    }

    /// Insert position `i` into the hash chains.
    #[inline]
    fn insert(&mut self, i: usize) {
        if i + MIN_MATCH <= self.data.len() {
            let h = hash3(self.data, i);
            self.prev[i] = self.head[h];
            self.head[h] = i as i32;
        }
    }

    /// Find the best match starting at `i`, or `None`.
    fn best_match(&self, i: usize) -> Option<(usize, usize)> {
        if i + MIN_MATCH > self.data.len() {
            return None;
        }
        let max = (self.data.len() - i).min(MAX_MATCH);
        let h = hash3(self.data, i);
        let mut cand = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.max_chain;
        let min_pos = i.saturating_sub(WINDOW);
        while cand >= 0 && chain > 0 {
            let c = cand as usize;
            if c < min_pos {
                break;
            }
            let len = match_len(self.data, c, i, max);
            if len > best_len {
                best_len = len;
                best_dist = i - c;
                if len == max {
                    break;
                }
            }
            cand = self.prev[c];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenize `data` with the given configuration.
pub fn lz77_tokens(data: &[u8], config: LzConfig) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 2 + 8);
    if data.is_empty() {
        return tokens;
    }
    let mut m = Matcher::new(data, config.max_chain);
    let mut i = 0usize;
    while i < data.len() {
        let found = m.best_match(i);
        match found {
            Some((mut len, mut dist)) => {
                if config.lazy && i + 1 < data.len() {
                    // Peek one position ahead; emit a literal if it starts a
                    // strictly better match (classic lazy matching).
                    m.insert(i);
                    if let Some((len2, dist2)) = m.best_match(i + 1) {
                        if len2 > len {
                            tokens.push(Token::Literal(data[i]));
                            i += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    // First position already inserted above.
                    for k in i + 1..i + len {
                        m.insert(k);
                    }
                    i += len;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    for k in i..i + len {
                        m.insert(k);
                    }
                    i += len;
                }
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                m.insert(i);
                i += 1;
            }
        }
    }
    tokens
}

/// Expand tokens back into bytes. `expected_len` pre-sizes the output.
pub fn lz77_expand(tokens: &[Token], expected_len: usize) -> Result<Vec<u8>, &'static str> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err("match distance out of range");
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (dist < len): copy byte-wise.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], config: LzConfig) {
        let tokens = lz77_tokens(data, config);
        let back = lz77_expand(&tokens, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"", LzConfig::fast());
        roundtrip(b"a", LzConfig::fast());
        roundtrip(b"ab", LzConfig::level(9));
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc".to_vec();
        let tokens = lz77_tokens(&data, LzConfig::level(6));
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        roundtrip(&data, LzConfig::level(6));
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // Run of a single byte forces dist=1, len>1 overlapping copies.
        let data = vec![7u8; 1000];
        let tokens = lz77_tokens(&data, LzConfig::level(6));
        assert!(
            tokens.len() < 20,
            "run should collapse, got {}",
            tokens.len()
        );
        roundtrip(&data, LzConfig::level(6));
    }

    #[test]
    fn all_configs_roundtrip_mixed_data() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(&(i % 97).to_le_bytes());
        }
        for cfg in [
            LzConfig::fast(),
            LzConfig::level(1),
            LzConfig::level(6),
            LzConfig::level(9),
            LzConfig::level(10),
        ] {
            roundtrip(&data, cfg);
        }
    }

    #[test]
    fn deeper_chains_compress_no_worse() {
        let mut data = Vec::new();
        let mut x = 12345u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
            data.push((x % 7) as u8); // low-entropy stream
        }
        // Lazy matching is a heuristic: allow a little slack, but deep
        // search should never be drastically worse than greedy.
        let shallow = lz77_tokens(&data, LzConfig::level(1)).len();
        let deep = lz77_tokens(&data, LzConfig::level(9)).len();
        assert!(
            deep as f64 <= shallow as f64 * 1.10,
            "deep {deep} vs shallow {shallow}"
        );
    }

    #[test]
    fn expand_rejects_bad_distance() {
        let tokens = vec![Token::Match { len: 5, dist: 3 }];
        assert!(lz77_expand(&tokens, 5).is_err());
    }

    #[test]
    fn random_bytes_roundtrip() {
        let mut x = 0xDEADBEEFu64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        roundtrip(&data, LzConfig::level(6));
        roundtrip(&data, LzConfig::fast());
    }
}
