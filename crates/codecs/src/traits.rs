//! Codec traits: the common interface every compression scheme implements.

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;

/// Whether a codec restores the input exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// Decompression restores the input exactly (up to declared precision
    /// for the quantizing codecs, which is the paper's convention).
    Lossless,
    /// Decompression returns an approximation; size is tunable.
    Lossy,
}

/// Common interface for all codecs.
///
/// Compression operates on one *segment*: a fixed-length run of consecutive
/// `f64` data points (§III-B of the paper). Codecs are stateless and
/// shareable across threads; all tuning lives in constructor parameters.
pub trait Codec: Send + Sync {
    /// Identifier of this codec (one MAB arm).
    fn id(&self) -> CodecId;

    /// Lossless or lossy.
    fn kind(&self) -> CodecKind;

    /// Compress a segment at the codec's natural setting.
    ///
    /// For lossless codecs this is the only mode. For lossy codecs this uses
    /// a mild default; use [`LossyCodec::compress_to_ratio`] to hit a budget.
    fn compress(&self, data: &[f64]) -> Result<CompressedBlock>;

    /// Decompress a block back to `n_points` values.
    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>>;

    /// Compress a segment into the scratch arena's output buffer, reusing
    /// its work buffers instead of allocating.
    ///
    /// Produces exactly the same payload bytes as [`Codec::compress`] (the
    /// wire format is frozen), but the returned block borrows
    /// `scratch.out`, which stays valid only until the arena's next use. A
    /// worker thread that keeps one `CodecScratch` alive across segments
    /// compresses with zero steady-state heap allocations.
    ///
    /// The default implementation falls back to the allocating
    /// [`Codec::compress`]; every built-in codec overrides it natively.
    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        let block = self.compress(data)?;
        scratch.out = block.payload;
        Ok(CompressedBlockRef {
            codec: block.codec,
            n_points: block.n_points,
            payload: &scratch.out,
        })
    }

    /// Decompress a block into a caller-provided vector, reusing the scratch
    /// arena for intermediate state.
    ///
    /// `out` is cleared and refilled with exactly the values
    /// [`Codec::decompress`] would return; its capacity is reused across
    /// calls. The default implementation falls back to the allocating path.
    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let _ = scratch;
        *out = self.decompress(block)?;
        Ok(())
    }

    /// Convenience: short display name.
    fn name(&self) -> &'static str {
        self.id().name()
    }

    /// Guard helper: verify the block belongs to this codec.
    fn check_block(&self, block: &CompressedBlock) -> Result<()> {
        if block.codec != self.id() {
            return Err(CodecError::WrongCodec {
                expected: self.id(),
                found: block.codec,
            });
        }
        Ok(())
    }
}

/// Extra interface for lossy codecs: ratio targeting and in-place recoding.
///
/// All AdaEdge lossy codecs are customizable to reach a desired compression
/// ratio (§III-A2) and support "virtual decompression" recoding — applying a
/// more aggressive setting directly to an already-compressed block without a
/// full decompress/re-compress round trip (§IV-E).
pub trait LossyCodec: Codec {
    /// Compress `data` so that the resulting block's ratio is `<= ratio`
    /// (as close to it as the codec's granularity allows).
    ///
    /// Returns [`CodecError::RatioUnreachable`] when the codec cannot go that
    /// low on this segment (e.g. BUFF-lossy below ~0.125).
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock>;

    /// The smallest ratio this codec can reach on a segment of `n` points.
    fn min_ratio(&self, n: usize) -> f64;

    /// Re-compress an existing block of this codec to a more aggressive
    /// target ratio without reconstructing the original floats.
    ///
    /// The result must again be a block of this codec with ratio `<= ratio`.
    /// Returns [`CodecError::RecodeUnsupported`] if `ratio` is larger than
    /// the block's current ratio (recoding only ever shrinks) or
    /// [`CodecError::RatioUnreachable`] below the codec's floor.
    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock>;

    /// Compress `data` so that every reconstructed point deviates from its
    /// original by at most `max_abs_error`, using as little space as the
    /// codec's granularity allows.
    ///
    /// This is the ModelarDB-style error-bounded interface (§II: systems
    /// that trade accuracy for space under a user-defined error bound).
    /// The default implementation reports the capability as unsupported;
    /// PAA, PLA and BUFF-lossy override it.
    fn compress_with_error_bound(
        &self,
        _data: &[f64],
        _max_abs_error: f64,
    ) -> Result<CompressedBlock> {
        Err(CodecError::RecodeUnsupported(
            "codec has no error-bounded mode",
        ))
    }
}

/// Compute how many payload bytes a target ratio allows for `n` points.
pub(crate) fn budget_bytes(n: usize, ratio: f64) -> usize {
    (ratio * (n * crate::block::POINT_BYTES) as f64).floor() as usize
}

/// Validate segment and ratio arguments shared by every lossy codec.
pub(crate) fn check_lossy_args(data_len: usize, ratio: f64) -> Result<()> {
    if data_len == 0 {
        return Err(CodecError::EmptyInput);
    }
    if !(ratio > 0.0 && ratio <= 1.0) {
        return Err(CodecError::InvalidParameter("ratio must be in (0, 1]"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_math() {
        assert_eq!(budget_bytes(1000, 0.5), 4000);
        assert_eq!(budget_bytes(1000, 0.1), 800);
        assert_eq!(budget_bytes(10, 0.01), 0);
    }

    #[test]
    fn lossy_arg_validation() {
        assert!(check_lossy_args(0, 0.5).is_err());
        assert!(check_lossy_args(10, 0.0).is_err());
        assert!(check_lossy_args(10, 1.5).is_err());
        assert!(check_lossy_args(10, 1.0).is_ok());
        assert!(check_lossy_args(10, 0.001).is_ok());
    }
}
