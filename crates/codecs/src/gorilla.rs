//! Gorilla XOR compression for doubles (Pelkonen et al., VLDB 2015).
//!
//! Each value is XORed with its predecessor. A zero XOR is encoded as a
//! single `0` bit. Otherwise the meaningful (non-zero) bit window is encoded,
//! reusing the previous window when it still covers the new one:
//!
//! * `10` — the previous leading/trailing window covers this XOR; write the
//!   meaningful bits inside that window.
//! * `11` — new window: 6 bits of leading-zero count, 6 bits of
//!   (meaningful-length − 1), then the meaningful bits.
//!
//! Works best on slowly-varying signals where consecutive doubles share
//! exponent and high mantissa bits.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::bitio::{BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};

/// Encode a non-empty segment into an existing bit stream. Shared with the
/// Elf codec, which prepends a precision byte to the same stream.
// Callers uphold the documented non-empty precondition, so `data[0]`
// and `data[1..]` are in bounds.
#[allow(clippy::indexing_slicing)]
pub(crate) fn gorilla_encode(data: &[f64], w: &mut BitWriter) {
    let mut prev = data[0].to_bits();
    w.write_bits(prev, 64);
    // Window state: previous leading-zero count and meaningful length.
    let mut prev_lead: u32 = u32::MAX; // "no window yet"
    let mut prev_len: u32 = 0;
    for &v in &data[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        let lead = xor.leading_zeros().min(63);
        let trail = xor.trailing_zeros();
        let len = 64 - lead - trail;
        if prev_lead != u32::MAX && lead >= prev_lead && trail >= 64 - prev_lead - prev_len {
            // Previous window still covers the meaningful bits.
            w.write_bit(false);
            let prev_trail = 64 - prev_lead - prev_len;
            w.write_bits(xor >> prev_trail, prev_len);
        } else {
            w.write_bit(true);
            w.write_bits(lead as u64, 6);
            w.write_bits((len - 1) as u64, 6);
            w.write_bits(xor >> trail, len);
            prev_lead = lead;
            prev_len = len;
        }
    }
}

/// Decode `n` values from a bit stream into a reused output vector
/// (cleared, capacity kept). Shared with the Elf codec.
pub(crate) fn gorilla_decode_into(
    r: &mut BitReader<'_>,
    n: usize,
    out: &mut Vec<f64>,
) -> Result<()> {
    out.clear();
    if n == 0 {
        return Ok(());
    }
    out.reserve(n);
    let mut prev = r.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut prev_lead: u32 = 0;
    let mut prev_len: u32 = 0;
    for _ in 1..n {
        if !r.read_bit()? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()? {
            prev_lead = r.read_bits(6)? as u32;
            prev_len = r.read_bits(6)? as u32 + 1;
            if prev_lead + prev_len > 64 {
                return Err(CodecError::Corrupt("gorilla window exceeds 64 bits"));
            }
        } else if prev_len == 0 {
            return Err(CodecError::Corrupt("window reuse before any window"));
        }
        let meaningful = r.read_bits(prev_len)?;
        let trail = 64 - prev_lead - prev_len;
        let xor = meaningful << trail;
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(())
}

/// Gorilla codec. Stateless; construct freely.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gorilla;

impl Codec for Gorilla {
    fn id(&self) -> CodecId {
        CodecId::Gorilla
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let mut w = BitWriter::over(std::mem::take(&mut scratch.out));
        w.reserve(data.len() * 8);
        gorilla_encode(data, &mut w);
        scratch.out = w.finish();
        Ok(CompressedBlockRef::new(self.id(), data.len(), &scratch.out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let mut r = BitReader::new(&block.payload);
        gorilla_decode_into(&mut r, block.n_points as usize, out)
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) {
        let g = Gorilla;
        let block = g.compress(data).unwrap();
        let back = g.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_constant() {
        roundtrip(&[42.0; 100]);
        // Constant series should compress to roughly 64 bits + n-1 zero bits.
        let block = Gorilla.compress(&[42.0; 1000]).unwrap();
        assert!(block.compressed_bytes() < 8 + 1000 / 8 + 2);
    }

    #[test]
    fn roundtrip_slowly_varying() {
        let data: Vec<f64> = (0..500).map(|i| 20.0 + (i as f64 * 0.01).sin()).collect();
        roundtrip(&data);
        let block = Gorilla.compress(&data).unwrap();
        assert!(block.ratio() < 1.0, "smooth signal should compress");
    }

    #[test]
    fn roundtrip_single_value() {
        roundtrip(&[std::f64::consts::E]);
    }

    #[test]
    fn roundtrip_special_values() {
        roundtrip(&[0.0, -0.0, f64::MIN_POSITIVE, f64::MAX, -1e-300, 1e300]);
    }

    #[test]
    fn roundtrip_alternating_extremes() {
        let data: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1e9 } else { -1e-9 })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(Gorilla.compress(&[]), Err(CodecError::EmptyInput));
    }

    #[test]
    fn wrong_codec_rejected() {
        let block = Gorilla.compress(&[1.0, 2.0]).unwrap();
        let mut bad = block;
        bad.codec = CodecId::Sprintz;
        assert!(matches!(
            Gorilla.decompress(&bad),
            Err(CodecError::WrongCodec { .. })
        ));
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let block = Gorilla
            .compress(&(0..100).map(|i| i as f64 * 0.37).collect::<Vec<_>>())
            .unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(block.payload.len() / 2);
        assert!(Gorilla.decompress(&bad).is_err());
    }
}
