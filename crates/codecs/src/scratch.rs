//! Reusable scratch arenas backing the buffer-reuse codec API.
//!
//! A [`CodecScratch`] owns every buffer a codec needs while compressing or
//! decompressing one segment: the output payload, the integer/float work
//! vectors of the quantizing codecs, the dictionary hash map, and the
//! LZ77/Huffman state of the DEFLATE family. A long-lived worker thread
//! keeps one arena and passes it to `compress_into`/`decompress_into`; after
//! the first few segments every buffer has grown to the working-set size and
//! the steady-state loop performs no heap allocations at all.
//!
//! Ownership contract: buffers are *cleared* (length reset) at the start of
//! each use but never shrunk, so capacity persists across segments. The
//! payload written by `compress_into` lives in [`CodecScratch::out`] and is
//! only valid until the next call that uses the arena; callers that need to
//! keep it copy it out (`CompressedBlockRef::to_block`).

use crate::huffman::HuffScratch;
use crate::lz::LzScratch;
use std::collections::HashMap;

/// Per-thread reusable buffers for [`Codec::compress_into`] /
/// [`Codec::decompress_into`].
///
/// [`Codec::compress_into`]: crate::traits::Codec::compress_into
/// [`Codec::decompress_into`]: crate::traits::Codec::decompress_into
#[derive(Debug, Default)]
pub struct CodecScratch {
    /// The compressed payload produced by the most recent `compress_into`.
    pub(crate) out: Vec<u8>,
    /// Byte staging for codecs that operate on the LE byte image
    /// (snappy/deflate family).
    pub(crate) bytes: Vec<u8>,
    /// Unsigned work vector (zigzagged deltas, dictionary entries,
    /// BUFF subcolumn values).
    pub(crate) u64s: Vec<u64>,
    /// Second unsigned work vector (dictionary codes).
    pub(crate) u64s_b: Vec<u64>,
    /// Quantized fixed-point values.
    pub(crate) i64s: Vec<i64>,
    /// Float work vector (Elf erased values, decode intermediates).
    pub(crate) f64s: Vec<f64>,
    /// Distinct-value index for the dictionary codec.
    pub(crate) map: HashMap<u64, u32>,
    /// LZ77 matcher state and token buffer.
    pub(crate) lz: LzScratch,
    /// Huffman frequency tables, encoders/decoders and tree workspace.
    pub(crate) huff: HuffScratch,
}

impl CodecScratch {
    /// Create an empty arena. No allocation happens until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take ownership of the most recent payload, leaving an empty buffer
    /// behind (used to turn a borrowed block into an owned one without a
    /// copy when the arena is about to be dropped anyway).
    pub fn take_out(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }
}
