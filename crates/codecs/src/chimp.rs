//! CHIMP: the optimized Gorilla variant (Liakos et al., VLDB 2022).
//!
//! Like Gorilla, CHIMP XORs each value with its predecessor, but it uses a
//! 2-bit flag per value and a rounded 3-bit leading-zero representation,
//! which shortens the common cases considerably:
//!
//! * `00` — XOR is zero (identical value).
//! * `01` — XOR has more than 6 trailing zeros: store 3-bit rounded leading
//!   count + 6-bit center length + the center bits.
//! * `10` — leading count equal to the previous one: store the low
//!   `64 − lead` bits of the XOR directly.
//! * `11` — new leading count: store 3-bit rounded leading count + the low
//!   `64 − lead` bits.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::bitio::{BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};

/// Rounded leading-zero buckets used by CHIMP (3-bit representation).
// Const table build: the `while i < 65` loop bounds every write.
#[allow(clippy::indexing_slicing)]
const LEADING_ROUND: [u32; 65] = {
    let mut t = [0u32; 65];
    let mut i = 0;
    while i < 65 {
        t[i] = match i {
            0..=7 => 0,
            8..=11 => 8,
            12..=15 => 12,
            16..=17 => 16,
            18..=19 => 18,
            20..=21 => 20,
            22..=23 => 22,
            _ => 24,
        };
        i += 1;
    }
    t
};

/// Map a rounded leading count to its 3-bit code.
#[inline]
fn leading_code(rounded: u32) -> u64 {
    match rounded {
        0 => 0,
        8 => 1,
        12 => 2,
        16 => 3,
        18 => 4,
        20 => 5,
        22 => 6,
        _ => 7, // 24
    }
}

/// Inverse of [`leading_code`].
#[inline]
// `code` comes from a 3-bit read, so it is always in 0..=7.
#[allow(clippy::indexing_slicing)]
fn leading_from_code(code: u64) -> u32 {
    [0, 8, 12, 16, 18, 20, 22, 24][code as usize]
}

/// CHIMP codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Chimp;

impl Codec for Chimp {
    fn id(&self) -> CodecId {
        CodecId::Chimp
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    // Encode path over caller-validated input: `data` is checked non-empty
    // below, and `LEADING_ROUND` has 65 entries for leading_zeros() in 0..=64.
    #[allow(clippy::indexing_slicing)]
    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let mut w = BitWriter::over(std::mem::take(&mut scratch.out));
        w.reserve(data.len() * 8);
        let mut prev = data[0].to_bits();
        w.write_bits(prev, 64);
        let mut prev_lead: u32 = u32::MAX;
        for &v in &data[1..] {
            let bits = v.to_bits();
            let xor = bits ^ prev;
            prev = bits;
            if xor == 0 {
                w.write_bits(0b00, 2);
                prev_lead = u32::MAX; // paper resets the stored leading count
                continue;
            }
            let lead = LEADING_ROUND[xor.leading_zeros() as usize];
            let trail = xor.trailing_zeros();
            if trail > 6 {
                // Center-bits case.
                let center = 64 - lead - trail;
                w.write_bits(0b01, 2);
                w.write_bits(leading_code(lead), 3);
                w.write_bits(center as u64, 6);
                w.write_bits(xor >> trail, center);
                prev_lead = u32::MAX;
            } else if lead == prev_lead {
                w.write_bits(0b10, 2);
                w.write_bits(xor, 64 - lead);
            } else {
                w.write_bits(0b11, 2);
                w.write_bits(leading_code(lead), 3);
                w.write_bits(xor, 64 - lead);
                prev_lead = lead;
            }
        }
        scratch.out = w.finish();
        Ok(CompressedBlockRef::new(self.id(), data.len(), &scratch.out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        out.clear();
        if n == 0 {
            return Ok(());
        }
        out.reserve(n);
        let mut r = BitReader::new(&block.payload);
        let mut prev = r.read_bits(64)?;
        out.push(f64::from_bits(prev));
        let mut prev_lead: u32 = u32::MAX;
        for _ in 1..n {
            let flag = r.read_bits(2)?;
            let xor = match flag {
                0b00 => {
                    prev_lead = u32::MAX;
                    0
                }
                0b01 => {
                    let lead = leading_from_code(r.read_bits(3)?);
                    let center = r.read_bits(6)? as u32;
                    // The encoder never writes center = 0 here, but corrupt
                    // input can; a zero center would shift by 64 below.
                    if center == 0 || lead + center > 64 {
                        return Err(CodecError::Corrupt("chimp center out of range"));
                    }
                    let trail = 64 - lead - center;
                    let bits = r.read_bits(center)?;
                    prev_lead = u32::MAX;
                    bits << trail
                }
                0b10 => {
                    if prev_lead == u32::MAX {
                        return Err(CodecError::Corrupt("chimp lead reuse before set"));
                    }
                    r.read_bits(64 - prev_lead)?
                }
                _ => {
                    let lead = leading_from_code(r.read_bits(3)?);
                    prev_lead = lead;
                    r.read_bits(64 - lead)?
                }
            };
            prev ^= xor;
            out.push(f64::from_bits(prev));
        }
        Ok(())
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) {
        let c = Chimp;
        let block = c.compress(data).unwrap();
        let back = c.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_constant() {
        roundtrip(&[7.25; 257]);
    }

    #[test]
    fn roundtrip_smooth_signal() {
        let data: Vec<f64> = (0..1000).map(|i| 100.0 + (i as f64 * 0.02).cos()).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_noisy_signal() {
        // Pseudorandom but deterministic values.
        let mut x = 0x9E3779B97F4A7C15u64;
        let data: Vec<f64> = (0..300)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_specials() {
        roundtrip(&[0.0, -0.0, 1e-308, -1e308, 1.0, -1.0]);
    }

    #[test]
    fn beats_gorilla_on_smooth_data() {
        // CHIMP's claim: shorter codes on typical time series.
        let data: Vec<f64> = (0..2000).map(|i| 55.0 + (i as f64 * 0.005).sin()).collect();
        let chimp = Chimp.compress(&data).unwrap();
        let gorilla = crate::gorilla::Gorilla.compress(&data).unwrap();
        // Allow a little slack; on most smooth inputs CHIMP is at least close.
        assert!(
            chimp.compressed_bytes() as f64 <= gorilla.compressed_bytes() as f64 * 1.10,
            "chimp {} vs gorilla {}",
            chimp.compressed_bytes(),
            gorilla.compressed_bytes()
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Chimp.compress(&[]), Err(CodecError::EmptyInput));
    }

    #[test]
    fn truncation_detected() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let block = Chimp.compress(&data).unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(4);
        assert!(Chimp.decompress(&bad).is_err());
    }
}
