//! RRD-sample: one random value kept per bucket, replicated across the
//! bucket on reconstruction.
//!
//! This simulates RRDTool's storage-bounding behaviour (which simply drops
//! old data) but, as the paper notes, AdaEdge keeps a random representative
//! per bucket instead of deleting outright. It is the fallback arm when
//! even BUFF-lossy cannot shrink further (Figure 12's late phase).
//!
//! The "random" pick is a deterministic hash of the segment length and
//! bucket index, so compression is reproducible and recoding needs no RNG
//! state. Payload: `bucket: u32`, then one `f64` sample per bucket.

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef, POINT_BYTES};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{budget_bytes, check_lossy_args, Codec, CodecKind, LossyCodec};

const HDR_BYTES: usize = 4;
const SAMPLE_BYTES: usize = 8;

/// RRD-sample codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct RrdSample;

/// Deterministic in-bucket offset: splitmix64 of (n, bucket index).
fn pick_offset(n: usize, bucket_idx: usize, bucket_len: usize) -> usize {
    let mut z = (n as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(bucket_idx as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % bucket_len as u64) as usize
}

impl RrdSample {
    fn buckets_for(n: usize, ratio: f64) -> usize {
        let budget = budget_bytes(n, ratio);
        if budget <= HDR_BYTES {
            return 0;
        }
        ((budget - HDR_BYTES) / SAMPLE_BYTES).min(n)
    }

    pub(crate) fn parse(block: &CompressedBlock) -> Result<(usize, Vec<f64>)> {
        if block.payload.len() < HDR_BYTES + SAMPLE_BYTES
            || !(block.payload.len() - HDR_BYTES).is_multiple_of(SAMPLE_BYTES)
        {
            return Err(CodecError::Corrupt("rrd payload size"));
        }
        let bucket =
            u32::from_le_bytes(block.payload[..HDR_BYTES].try_into().expect("4 bytes")) as usize;
        if bucket == 0 {
            return Err(CodecError::Corrupt("rrd zero bucket"));
        }
        let samples: Vec<f64> = block.payload[HDR_BYTES..]
            .chunks_exact(SAMPLE_BYTES)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        if samples.len() != (block.n_points as usize).div_ceil(bucket) {
            return Err(CodecError::Corrupt("rrd sample count mismatch"));
        }
        Ok((bucket, samples))
    }

    fn encode(n: usize, bucket: usize, samples: &[f64]) -> CompressedBlock {
        let mut payload = Vec::with_capacity(HDR_BYTES + samples.len() * SAMPLE_BYTES);
        payload.extend_from_slice(&(bucket as u32).to_le_bytes());
        for s in samples {
            payload.extend_from_slice(&s.to_le_bytes());
        }
        CompressedBlock::new(CodecId::RrdSample, n, payload)
    }
}

impl Codec for RrdSample {
    fn id(&self) -> CodecId {
        CodecId::RrdSample
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossy
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        self.compress_to_ratio(data, 0.5)
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        // Mirrors `compress_to_ratio(data, 0.5)` but builds the payload in
        // the caller's scratch buffer.
        check_lossy_args(data.len(), 0.5)?;
        let n = data.len();
        let m = Self::buckets_for(n, 0.5);
        if m == 0 {
            return Err(CodecError::RatioUnreachable {
                requested: 0.5,
                minimum: self.min_ratio(n),
            });
        }
        let bucket = n.div_ceil(m);
        let payload = &mut scratch.out;
        payload.clear();
        payload.reserve(HDR_BYTES + n.div_ceil(bucket) * SAMPLE_BYTES);
        payload.extend_from_slice(&(bucket as u32).to_le_bytes());
        for (b_idx, chunk) in data.chunks(bucket).enumerate() {
            let s = chunk[pick_offset(n, b_idx, chunk.len())];
            payload.extend_from_slice(&s.to_le_bytes());
        }
        Ok(CompressedBlockRef::new(self.id(), n, payload))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        // Same validation as `parse`, expanding samples straight off the
        // payload.
        if block.payload.len() < HDR_BYTES + SAMPLE_BYTES
            || !(block.payload.len() - HDR_BYTES).is_multiple_of(SAMPLE_BYTES)
        {
            return Err(CodecError::Corrupt("rrd payload size"));
        }
        let bucket =
            u32::from_le_bytes(block.payload[..HDR_BYTES].try_into().expect("4 bytes")) as usize;
        if bucket == 0 {
            return Err(CodecError::Corrupt("rrd zero bucket"));
        }
        let samples = block.payload[HDR_BYTES..].chunks_exact(SAMPLE_BYTES);
        if samples.len() != n.div_ceil(bucket) {
            return Err(CodecError::Corrupt("rrd sample count mismatch"));
        }
        out.clear();
        out.reserve(n);
        for (b_idx, c) in samples.enumerate() {
            let s = f64::from_le_bytes(c.try_into().expect("8 bytes"));
            let count = bucket.min(n - b_idx * bucket);
            out.extend(std::iter::repeat_n(s, count));
        }
        Ok(())
    }
}

impl LossyCodec for RrdSample {
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock> {
        check_lossy_args(data.len(), ratio)?;
        let n = data.len();
        let m = Self::buckets_for(n, ratio);
        if m == 0 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        let bucket = n.div_ceil(m);
        let mut samples = Vec::with_capacity(n.div_ceil(bucket));
        for (b_idx, chunk) in data.chunks(bucket).enumerate() {
            samples.push(chunk[pick_offset(n, b_idx, chunk.len())]);
        }
        Ok(Self::encode(n, bucket, &samples))
    }

    fn min_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        (HDR_BYTES + SAMPLE_BYTES) as f64 / (n * POINT_BYTES) as f64
    }

    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        check_lossy_args(n, ratio)?;
        if block.ratio() <= ratio {
            return Err(CodecError::RecodeUnsupported(
                "block already at or below target ratio",
            ));
        }
        let (bucket, samples) = Self::parse(block)?;
        let m_new = Self::buckets_for(n, ratio);
        if m_new == 0 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        // Merge k old buckets per new bucket, keeping one of the old samples
        // (deterministically chosen) as the survivor.
        let new_bucket = n.div_ceil(m_new).div_ceil(bucket) * bucket;
        let k = new_bucket / bucket;
        let merged: Vec<f64> = samples
            .chunks(k)
            .enumerate()
            .map(|(g_idx, group)| group[pick_offset(n, g_idx, group.len())])
            .collect();
        Ok(Self::encode(n, new_bucket, &merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.31).sin() * 9.0).collect()
    }

    #[test]
    fn samples_come_from_their_bucket() {
        let data = sample(100);
        let block = RrdSample.compress_to_ratio(&data, 0.2).unwrap();
        let back = RrdSample.decompress(&block).unwrap();
        assert_eq!(back.len(), 100);
        let (bucket, _) = RrdSample::parse(&block).unwrap();
        for (i, &v) in back.iter().enumerate() {
            let b = i / bucket;
            let lo = b * bucket;
            let hi = (lo + bucket).min(100);
            assert!(
                data[lo..hi].contains(&v),
                "value {v} at {i} not from bucket {b}"
            );
        }
    }

    #[test]
    fn hits_target_ratio() {
        let data = sample(1000);
        for target in [0.5, 0.1, 0.03, 0.01] {
            let block = RrdSample.compress_to_ratio(&data, target).unwrap();
            assert!(block.ratio() <= target + 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let data = sample(500);
        let a = RrdSample.compress_to_ratio(&data, 0.1).unwrap();
        let b = RrdSample.compress_to_ratio(&data, 0.1).unwrap();
        assert_eq!(a.payload, b.payload);
    }

    #[test]
    fn recode_keeps_original_samples() {
        let data = sample(1000);
        let block = RrdSample.compress_to_ratio(&data, 0.2).unwrap();
        let recoded = RrdSample.recode(&block, 0.05).unwrap();
        assert!(recoded.ratio() <= 0.05 + 1e-9);
        let (_, old_samples) = RrdSample::parse(&block).unwrap();
        let (_, new_samples) = RrdSample::parse(&recoded).unwrap();
        for s in &new_samples {
            assert!(old_samples.contains(s));
        }
    }

    #[test]
    fn floor_enforced() {
        let data = sample(50);
        assert!(RrdSample.compress_to_ratio(&data, 0.001).is_err());
        let floor = RrdSample.min_ratio(50);
        assert!(RrdSample.compress_to_ratio(&data, floor * 1.05).is_ok());
    }

    #[test]
    fn single_point() {
        let block = RrdSample.compress_to_ratio(&[2.5], 1.0).unwrap_err();
        // 1 point: header+sample = 12 bytes > 8 bytes original — unreachable.
        assert!(matches!(block, CodecError::RatioUnreachable { .. }));
    }

    #[test]
    fn corrupt_rejected() {
        let data = sample(100);
        let block = RrdSample.compress_to_ratio(&data, 0.2).unwrap();
        let mut bad = block.clone();
        bad.payload[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(RrdSample.decompress(&bad).is_err());
    }
}
