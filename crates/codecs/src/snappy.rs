//! Snappy-class byte compression: greedy LZ77 with byte-oriented output and
//! no entropy coding. Optimized for speed over ratio, exactly the role the
//! snappy arm plays in the paper's throughput experiments (Figure 2).
//!
//! Wire format (per token):
//! * control byte `c < 128` — a literal run of `c + 1` bytes follows.
//! * control byte `c >= 128` — a match of length `c - 128 + MIN_MATCH`
//!   (3..=130), followed by a little-endian `u16` distance.

// Decode paths handle untrusted payload bytes; surface every raw index so
// each one carries an explicit bounds argument.
#![warn(clippy::indexing_slicing)]

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::lz::{append_match, lz77_tokens_into, LzConfig, LzScratch, Token, MIN_MATCH};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};
use crate::util::{bytes_to_f64s_into, f64s_to_bytes_into};

const MAX_LITERAL_RUN: usize = 128;
const MAX_COPY_LEN: usize = 127 + MIN_MATCH; // 130

/// Compress raw bytes with the snappy-class format.
pub fn snappy_compress_bytes(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    snappy_compress_bytes_into(data, &mut LzScratch::default(), &mut out);
    out
}

/// [`snappy_compress_bytes`] into a reused output buffer, recycling the
/// LZ77 matcher state. Literal runs are flushed directly from input ranges
/// (the token stream covers `data` in order), so no staging buffer is
/// needed.
// Hot path over trusted input: `lit_start`/`pos` walk the token stream,
// which covers `data` exactly once in order, so every slice is in bounds.
#[allow(clippy::indexing_slicing)]
pub fn snappy_compress_bytes_into(data: &[u8], lz: &mut LzScratch, out: &mut Vec<u8>) {
    lz77_tokens_into(data, LzConfig::fast(), lz);
    out.clear();
    out.reserve(data.len() / 2 + 16);
    let flush_lits = |out: &mut Vec<u8>, lits: &[u8]| {
        for chunk in lits.chunks(MAX_LITERAL_RUN) {
            out.push((chunk.len() - 1) as u8);
            out.extend_from_slice(chunk);
        }
    };
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    for t in &lz.tokens {
        match *t {
            Token::Literal(_) => pos += 1,
            Token::Match { len, dist } => {
                flush_lits(out, &data[lit_start..pos]);
                // Split long matches into <=130-byte chunks.
                let mut remaining = len as usize;
                while remaining > 0 {
                    let take = remaining.min(MAX_COPY_LEN);
                    // A trailing stub shorter than MIN_MATCH cannot be encoded
                    // as a copy; emitting it as part of the previous chunk is
                    // guaranteed possible because MAX_COPY_LEN > 2*MIN_MATCH.
                    let take = if remaining - take > 0 && remaining - take < MIN_MATCH {
                        take - (MIN_MATCH - (remaining - take))
                    } else {
                        take
                    };
                    out.push(128 + (take - MIN_MATCH) as u8);
                    out.extend_from_slice(&dist.to_le_bytes());
                    remaining -= take;
                }
                pos += len as usize;
                lit_start = pos;
            }
        }
    }
    flush_lits(out, &data[lit_start..pos]);
}

/// Decompress the snappy-class format, expecting `expected_len` bytes.
pub fn snappy_decompress_bytes(payload: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    snappy_decompress_bytes_into(payload, expected_len, &mut out)?;
    Ok(out)
}

/// [`snappy_decompress_bytes`] into a reused buffer (cleared, capacity kept).
///
/// Corruption containment: every literal run and match copy is checked
/// against both the remaining payload and `expected_len` *before* it is
/// applied, so a corrupt stream can neither read out of bounds nor grow
/// `out` past the caller's declared segment size.
// Every index below is guarded: `i` is re-checked against `payload.len()`
// before each read, and match copies check `dist`/`len` against the decoded
// prefix and the expected-length cap first.
#[allow(clippy::indexing_slicing)]
pub fn snappy_decompress_bytes_into(
    payload: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<()> {
    out.clear();
    out.reserve(expected_len);
    let mut i = 0usize;
    while i < payload.len() {
        let c = payload[i];
        i += 1;
        if c < 128 {
            let run = c as usize + 1;
            if i + run > payload.len() {
                return Err(CodecError::Corrupt("literal run past end"));
            }
            if out.len() + run > expected_len {
                return Err(CodecError::Corrupt("literal run overruns output"));
            }
            out.extend_from_slice(&payload[i..i + run]);
            i += run;
        } else {
            let len = (c - 128) as usize + MIN_MATCH;
            if i + 2 > payload.len() {
                return Err(CodecError::Corrupt("truncated copy distance"));
            }
            let dist = u16::from_le_bytes([payload[i], payload[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::Corrupt("copy distance out of range"));
            }
            if out.len() + len > expected_len {
                return Err(CodecError::Corrupt("match copy overruns output"));
            }
            // `dist`/`len` validated above; the word-at-a-time copy kernel
            // handles overlap with doubling `extend_from_within` rounds.
            append_match(out, dist, len);
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::Corrupt("snappy length mismatch"));
    }
    Ok(())
}

/// Snappy-class codec over doubles.
#[derive(Debug, Default, Clone, Copy)]
pub struct Snappy;

impl Codec for Snappy {
    fn id(&self) -> CodecId {
        CodecId::Snappy
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let CodecScratch { out, bytes, lz, .. } = scratch;
        f64s_to_bytes_into(data, bytes);
        snappy_compress_bytes_into(bytes, lz, out);
        Ok(CompressedBlockRef::new(self.id(), data.len(), out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let bytes = &mut scratch.bytes;
        snappy_decompress_bytes_into(&block.payload, block.n_points as usize * 8, bytes)?;
        bytes_to_f64s_into(bytes, out)
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn roundtrip_bytes(data: &[u8]) {
        let c = snappy_compress_bytes(data);
        assert_eq!(snappy_decompress_bytes(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_and_small() {
        roundtrip_bytes(b"");
        roundtrip_bytes(b"x");
        roundtrip_bytes(b"ab");
    }

    #[test]
    fn repetitive_compresses() {
        let data = b"hellohellohellohellohellohello".repeat(50);
        let c = snappy_compress_bytes(&data);
        assert!(c.len() < data.len() / 3);
        roundtrip_bytes(&data);
    }

    #[test]
    fn long_run_splits_correctly() {
        // Forces match splitting across the 130-byte copy limit, including
        // remainders near MIN_MATCH.
        for n in [131, 132, 133, 260, 261, 1000, 1003] {
            roundtrip_bytes(&vec![9u8; n]);
        }
    }

    #[test]
    fn long_literal_run_splits() {
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        roundtrip_bytes(&data);
    }

    #[test]
    fn float_codec_roundtrip() {
        let data: Vec<f64> = (0..800).map(|i| ((i / 8) as f64) * 1.25).collect();
        let block = Snappy.compress(&data).unwrap();
        assert_eq!(Snappy.decompress(&block).unwrap(), data);
    }

    #[test]
    fn corrupt_distance_detected() {
        let payload = vec![128 + 10, 0xFF, 0x7F]; // copy before any output
        assert!(snappy_decompress_bytes(&payload, 13).is_err());
    }

    #[test]
    fn truncated_literal_detected() {
        let payload = vec![50u8, 1, 2, 3]; // claims 51 literals, has 3
        assert!(snappy_decompress_bytes(&payload, 51).is_err());
    }
}
