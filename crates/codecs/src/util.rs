//! Small shared helpers: float/byte conversion and fixed-point quantization.

use crate::error::{CodecError, Result};

/// Serialize a segment of doubles to little-endian bytes.
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes back to doubles.
pub fn bytes_to_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Corrupt("byte length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Powers of ten for decimal precision 0..=12.
const POW10: [f64; 13] = [
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
    1_000_000_000.0,
    10_000_000_000.0,
    100_000_000_000.0,
    1_000_000_000_000.0,
];

/// Scale factor for `precision` decimal digits.
pub fn pow10(precision: u8) -> Result<f64> {
    POW10
        .get(precision as usize)
        .copied()
        .ok_or(CodecError::InvalidParameter("precision must be <= 12"))
}

/// Quantize a segment of doubles to fixed-point integers at `precision`
/// decimal digits: `q = round(v * 10^p)`.
///
/// Rejects non-finite values and magnitudes that would overflow the 52-bit
/// safe range (the paper's datasets use 4-6 digits on small-magnitude
/// signals, far inside this range).
pub fn quantize(data: &[f64], precision: u8) -> Result<Vec<i64>> {
    let scale = pow10(precision)?;
    let mut out = Vec::with_capacity(data.len());
    for &v in data {
        if !v.is_finite() {
            return Err(CodecError::UnsupportedValue("non-finite float"));
        }
        let scaled = v * scale;
        if scaled.abs() >= 4.5e15 {
            return Err(CodecError::UnsupportedValue(
                "magnitude overflows fixed-point range at this precision",
            ));
        }
        out.push(scaled.round() as i64);
    }
    Ok(out)
}

/// Inverse of [`quantize`].
pub fn dequantize(q: &[i64], precision: u8) -> Result<Vec<f64>> {
    let scale = pow10(precision)?;
    Ok(q.iter().map(|&x| x as f64 / scale).collect())
}

/// Round a float to `precision` decimal digits (the value a quantizing codec
/// will reproduce).
pub fn round_to_precision(v: f64, precision: u8) -> f64 {
    let scale = POW10[precision as usize];
    (v * scale).round() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let data = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let bytes = f64s_to_bytes(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        assert_eq!(bytes_to_f64s(&bytes).unwrap(), data);
    }

    #[test]
    fn bad_byte_length_rejected() {
        assert!(bytes_to_f64s(&[0u8; 7]).is_err());
    }

    #[test]
    fn quantize_roundtrip_at_precision() {
        let data = vec![1.2345, -0.0021, 99.9999, 0.0];
        let q = quantize(&data, 4).unwrap();
        assert_eq!(q, vec![12345, -21, 999_999, 0]);
        let back = dequantize(&q, 4).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_rejects_nan_and_overflow() {
        assert!(quantize(&[f64::NAN], 4).is_err());
        assert!(quantize(&[f64::INFINITY], 2).is_err());
        assert!(quantize(&[1e20], 6).is_err());
    }

    #[test]
    fn precision_limits() {
        assert!(pow10(12).is_ok());
        assert!(pow10(13).is_err());
    }

    #[test]
    fn rounding_matches_quantization() {
        let v = 1.23456789;
        assert_eq!(round_to_precision(v, 4), 1.2346);
        assert_eq!(round_to_precision(v, 0), 1.0);
    }
}
