//! Small shared helpers: float/byte conversion, fixed-point quantization
//! and the delta/zigzag preprocessing shared by the quantizing codecs.
//!
//! The `_into` variants write into caller-owned buffers (cleared, capacity
//! kept) and run their validation and transform passes over fixed-size
//! chunks so the loops auto-vectorize; the allocating forms wrap them.

use crate::bitio::{zigzag_decode, zigzag_encode};
use crate::error::{CodecError, Result};

/// Chunk size for the validate-then-transform quantization loops: big
/// enough to amortize the per-chunk branch, small enough to stay in L1.
const CHUNK: usize = 64;

/// Serialize a segment of doubles to little-endian bytes.
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::new();
    f64s_to_bytes_into(data, &mut out);
    out
}

/// [`f64s_to_bytes`] into a reused buffer (cleared, capacity kept).
///
/// The buffer is sized up front and filled through fixed-size
/// `copy_from_slice` stores, so the loop compiles to straight bulk copies
/// instead of per-value `extend` growth checks.
pub fn f64s_to_bytes_into(data: &[f64], out: &mut Vec<u8>) {
    out.clear();
    out.resize(data.len() * 8, 0);
    for (dst, v) in out.chunks_exact_mut(8).zip(data) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

/// Deserialize little-endian bytes back to doubles.
pub fn bytes_to_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    bytes_to_f64s_into(bytes, &mut out)?;
    Ok(out)
}

/// [`bytes_to_f64s`] into a reused buffer (cleared, capacity kept).
///
/// Mirror of [`f64s_to_bytes_into`]: pre-sized output, fixed-size loads,
/// no per-value growth checks.
pub fn bytes_to_f64s_into(bytes: &[u8], out: &mut Vec<f64>) -> Result<()> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Corrupt("byte length not a multiple of 8"));
    }
    out.clear();
    out.resize(bytes.len() / 8, 0.0);
    for (dst, src) in out.iter_mut().zip(bytes.chunks_exact(8)) {
        *dst = f64::from_le_bytes(src.try_into().expect("chunk of 8"));
    }
    Ok(())
}

/// Powers of ten for decimal precision 0..=12.
const POW10: [f64; 13] = [
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
    1_000_000_000.0,
    10_000_000_000.0,
    100_000_000_000.0,
    1_000_000_000_000.0,
];

/// Scale factor for `precision` decimal digits.
pub fn pow10(precision: u8) -> Result<f64> {
    POW10
        .get(precision as usize)
        .copied()
        .ok_or(CodecError::InvalidParameter("precision must be <= 12"))
}

/// Quantize a segment of doubles to fixed-point integers at `precision`
/// decimal digits: `q = round(v * 10^p)`.
///
/// Rejects non-finite values and magnitudes that would overflow the 52-bit
/// safe range (the paper's datasets use 4-6 digits on small-magnitude
/// signals, far inside this range).
pub fn quantize(data: &[f64], precision: u8) -> Result<Vec<i64>> {
    let mut out = Vec::new();
    quantize_into(data, precision, &mut out)?;
    Ok(out)
}

/// [`quantize`] into a reused buffer (cleared, capacity kept).
///
/// Validation (finiteness, fixed-point range) and the round step run as
/// separate passes over each chunk so both loops stay branch-free and
/// auto-vectorize; the scaled values are staged in a stack buffer so the
/// multiply happens once per element.
pub fn quantize_into(data: &[f64], precision: u8, out: &mut Vec<i64>) -> Result<()> {
    let scale = pow10(precision)?;
    out.clear();
    out.reserve(data.len());
    let mut scaled = [0.0f64; CHUNK];
    for chunk in data.chunks(CHUNK) {
        let mut finite = true;
        let mut max_abs = 0.0f64;
        for (slot, &v) in scaled.iter_mut().zip(chunk) {
            finite &= v.is_finite();
            let x = v * scale;
            *slot = x;
            let a = x.abs();
            max_abs = if a > max_abs { a } else { max_abs };
        }
        if !finite {
            return Err(CodecError::UnsupportedValue("non-finite float"));
        }
        if max_abs >= 4.5e15 {
            return Err(CodecError::UnsupportedValue(
                "magnitude overflows fixed-point range at this precision",
            ));
        }
        out.extend(scaled[..chunk.len()].iter().map(|&x| x.round() as i64));
    }
    Ok(())
}

/// Inverse of [`quantize`].
pub fn dequantize(q: &[i64], precision: u8) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    dequantize_into(q, precision, &mut out)?;
    Ok(out)
}

/// [`dequantize`] into a reused buffer (cleared, capacity kept).
///
/// Dispatches through [`crate::simd`]: AVX2 hosts convert and divide four
/// lanes per step (full-range exact `i64 → f64` conversion; the division
/// keeps the exact rounding of the scalar reference — a reciprocal
/// multiply would not be bit-identical), everything else takes the
/// autovectorizable [`dequantize_swar`] loop.
pub fn dequantize_into(q: &[i64], precision: u8, out: &mut Vec<f64>) -> Result<()> {
    let scale = pow10(precision)?;
    out.clear();
    out.resize(q.len(), 0.0);
    crate::simd::active().dequantize(q, scale, out);
    Ok(())
}

/// Portable convert-and-divide loop (the `Backend::Swar` tier of
/// [`crate::simd::Backend::dequantize`]): pre-sized output, branch-free,
/// liftable by the autovectorizer.
pub(crate) fn dequantize_swar(q: &[i64], scale: f64, out: &mut [f64]) {
    for (dst, &x) in out.iter_mut().zip(q) {
        *dst = x as f64 / scale;
    }
}

/// Reference per-element dequantize (the `Backend::Scalar` tier). Also
/// the tail kernel for the AVX2 tier; identical rounding by construction.
pub(crate) fn dequantize_scalar(q: &[i64], scale: f64, out: &mut [f64]) {
    for (dst, &x) in out.iter_mut().zip(q) {
        *dst = x as f64 / scale;
    }
}

/// Zigzagged consecutive deltas of a quantized segment: `out[i] =
/// zigzag(q[i+1] - q[i])` (the Sprintz/BUFF preprocessing loop; `q[0]` is
/// transmitted raw by the caller). Wrapping subtraction matches the
/// decoder's wrapping accumulation. Dispatches through [`crate::simd`];
/// every tier produces identical output.
pub fn delta_zigzag_into(q: &[i64], out: &mut Vec<u64>) {
    out.clear();
    if q.len() < 2 {
        return;
    }
    out.resize(q.len() - 1, 0);
    crate::simd::active().delta_zigzag(q, out);
}

/// Portable fused delta+zigzag (the `Backend::Swar` tier of
/// [`crate::simd::Backend::delta_zigzag`]): a subtract/shift/xor loop
/// over two offset slices — no window bookkeeping, no growth checks,
/// fully liftable. Requires `out.len() + 1 == q.len()`.
pub(crate) fn delta_zigzag_swar(q: &[i64], out: &mut [u64]) {
    delta_zigzag_tail(q, out, 0);
}

/// Offset-slice delta+zigzag starting at index `from`; the ragged-tail
/// kernel shared by the SIMD tiers. Requires `out.len() + 1 == q.len()`
/// and `from <= out.len()`.
#[inline]
pub(crate) fn delta_zigzag_tail(q: &[i64], out: &mut [u64], from: usize) {
    let (prev, next) = (&q[from..q.len() - 1], &q[from + 1..]);
    for ((dst, &a), &b) in out[from..].iter_mut().zip(prev).zip(next) {
        *dst = zigzag_encode(b.wrapping_sub(a));
    }
}

/// Reference per-element delta+zigzag (the `Backend::Scalar` tier):
/// indexed loop, one delta at a time.
pub(crate) fn delta_zigzag_scalar(q: &[i64], out: &mut [u64]) {
    for (i, dst) in out.iter_mut().enumerate() {
        *dst = zigzag_encode(q[i + 1].wrapping_sub(q[i]));
    }
}

/// Portable inverse transform (the `Backend::Swar` tier of
/// [`crate::simd::Backend::unzigzag_undelta`]): starting from `prev`,
/// accumulate zigzag-decoded deltas into `out` and return the final
/// value. The accumulation is inherently serial in scalar code; the AVX2
/// tier breaks the chain with a 4-lane prefix sum. Requires
/// `zs.len() == out.len()`.
pub(crate) fn unzigzag_undelta_swar(prev: i64, zs: &[u64], out: &mut [i64]) -> i64 {
    unzigzag_undelta_scalar(prev, zs, out)
}

/// Reference inverse transform (the `Backend::Scalar` tier). Also the
/// ragged-tail kernel for the SIMD tiers.
#[inline]
pub(crate) fn unzigzag_undelta_scalar(prev: i64, zs: &[u64], out: &mut [i64]) -> i64 {
    let mut prev = prev;
    for (dst, &z) in out.iter_mut().zip(zs) {
        prev = prev.wrapping_add(zigzag_decode(z));
        *dst = prev;
    }
    prev
}

/// Minimum and maximum of a non-empty quantized segment in one pass.
pub fn min_max_i64(q: &[i64]) -> (i64, i64) {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for &v in q {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Round a float to `precision` decimal digits (the value a quantizing codec
/// will reproduce).
pub fn round_to_precision(v: f64, precision: u8) -> f64 {
    let scale = POW10[precision as usize];
    (v * scale).round() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let data = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let bytes = f64s_to_bytes(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        assert_eq!(bytes_to_f64s(&bytes).unwrap(), data);
    }

    #[test]
    fn bad_byte_length_rejected() {
        assert!(bytes_to_f64s(&[0u8; 7]).is_err());
    }

    #[test]
    fn quantize_roundtrip_at_precision() {
        let data = vec![1.2345, -0.0021, 99.9999, 0.0];
        let q = quantize(&data, 4).unwrap();
        assert_eq!(q, vec![12345, -21, 999_999, 0]);
        let back = dequantize(&q, 4).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_rejects_nan_and_overflow() {
        assert!(quantize(&[f64::NAN], 4).is_err());
        assert!(quantize(&[f64::INFINITY], 2).is_err());
        assert!(quantize(&[1e20], 6).is_err());
    }

    #[test]
    fn precision_limits() {
        assert!(pow10(12).is_ok());
        assert!(pow10(13).is_err());
    }

    #[test]
    fn rounding_matches_quantization() {
        let v = 1.23456789;
        assert_eq!(round_to_precision(v, 4), 1.2346);
        assert_eq!(round_to_precision(v, 0), 1.0);
    }
}
