//! The identity "codec": raw little-endian doubles. Used as the control arm
//! and as the representation of not-yet-compressed segments on disk.

use crate::block::{CodecId, CompressedBlock};
use crate::error::{CodecError, Result};
use crate::traits::{Codec, CodecKind};
use crate::util::{bytes_to_f64s, f64s_to_bytes};

/// Raw pass-through codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Raw;

impl Codec for Raw {
    fn id(&self) -> CodecId {
        CodecId::Raw
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        Ok(CompressedBlock::new(
            self.id(),
            data.len(),
            f64s_to_bytes(data),
        ))
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        let out = bytes_to_f64s(&block.payload)?;
        if out.len() != block.n_points as usize {
            return Err(CodecError::Corrupt("raw length mismatch"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let data = vec![1.0, -2.0, 3.5];
        let block = Raw.compress(&data).unwrap();
        assert_eq!(block.ratio(), 1.0);
        assert_eq!(Raw.decompress(&block).unwrap(), data);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut block = Raw.compress(&[1.0, 2.0]).unwrap();
        block.n_points = 3;
        assert!(Raw.decompress(&block).is_err());
    }
}
