//! The identity "codec": raw little-endian doubles. Used as the control arm
//! and as the representation of not-yet-compressed segments on disk.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};
use crate::util::{bytes_to_f64s_into, f64s_to_bytes_into};

/// Raw pass-through codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Raw;

impl Codec for Raw {
    fn id(&self) -> CodecId {
        CodecId::Raw
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        f64s_to_bytes_into(data, &mut scratch.out);
        Ok(CompressedBlockRef::new(self.id(), data.len(), &scratch.out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        bytes_to_f64s_into(&block.payload, out)?;
        if out.len() != block.n_points as usize {
            return Err(CodecError::Corrupt("raw length mismatch"));
        }
        Ok(())
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let data = vec![1.0, -2.0, 3.5];
        let block = Raw.compress(&data).unwrap();
        assert_eq!(block.ratio(), 1.0);
        assert_eq!(Raw.decompress(&block).unwrap(), data);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut block = Raw.compress(&[1.0, 2.0]).unwrap();
        block.n_points = 3;
        assert!(Raw.decompress(&block).is_err());
    }
}
