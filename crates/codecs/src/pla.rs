//! Piecewise Linear Approximation (Shatkay & Zdonik, ICDE 1996).
//!
//! The segment is represented by a subset of *knots* — (index, value)
//! pairs — reconstructed by linear interpolation. Knots are chosen by
//! greedy Douglas–Peucker refinement: repeatedly split the interval whose
//! maximum deviation from its chord is largest. Because the point of
//! maximum deviation is usually a local extremum, PLA preserves peaks —
//! the property that makes it the winner for MAX queries in the paper's
//! Figure 9.
//!
//! Recoding drops knots by smallest-triangle-area (Visvalingam–Whyatt),
//! operating purely on the stored knots (§IV-E virtual decompression).
//!
//! Payload: sequence of `(index: u32, value: f32)` pairs, ascending index.

use crate::block::{CodecId, CompressedBlock, POINT_BYTES};
use crate::error::{CodecError, Result};
use crate::traits::{budget_bytes, check_lossy_args, Codec, CodecKind, LossyCodec};
use std::collections::BinaryHeap;

const KNOT_BYTES: usize = 8;

/// PLA codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Pla;

fn knots_for(n: usize, ratio: f64) -> usize {
    (budget_bytes(n, ratio) / KNOT_BYTES).min(n)
}

fn encode_knots(n: usize, knots: &[(u32, f32)]) -> CompressedBlock {
    let mut payload = Vec::with_capacity(knots.len() * KNOT_BYTES);
    for &(idx, val) in knots {
        payload.extend_from_slice(&idx.to_le_bytes());
        payload.extend_from_slice(&val.to_le_bytes());
    }
    CompressedBlock::new(CodecId::Pla, n, payload)
}

pub(crate) fn decode_knots(block: &CompressedBlock) -> Result<Vec<(u32, f32)>> {
    if block.payload.is_empty() || !block.payload.len().is_multiple_of(KNOT_BYTES) {
        return Err(CodecError::Corrupt("pla payload size"));
    }
    let mut knots = Vec::with_capacity(block.payload.len() / KNOT_BYTES);
    let n = block.n_points;
    let mut prev: Option<u32> = None;
    for c in block.payload.chunks_exact(KNOT_BYTES) {
        let idx = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
        let val = f32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
        if idx >= n || prev.is_some_and(|p| idx <= p) {
            return Err(CodecError::Corrupt("pla knot index out of order"));
        }
        prev = Some(idx);
        knots.push((idx, val));
    }
    Ok(knots)
}

/// Perpendicular-free deviation: vertical distance of `data[i]` from the
/// chord between knots `a` and `b` (indices into the original segment).
fn chord_dev(data: &[f64], a: usize, b: usize, i: usize) -> f64 {
    let t = (i - a) as f64 / (b - a) as f64;
    let interp = data[a] + (data[b] - data[a]) * t;
    (data[i] - interp).abs()
}

/// Find the point of maximum deviation strictly inside `(a, b)`.
fn max_dev(data: &[f64], a: usize, b: usize) -> Option<(usize, f64)> {
    if b <= a + 1 {
        return None;
    }
    let mut best = (a + 1, 0.0f64);
    for i in a + 1..b {
        let d = chord_dev(data, a, b, i);
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(best)
}

/// Greedy Douglas–Peucker refinement to at most `m` knots (m >= 2).
fn select_knots(data: &[f64], m: usize) -> Vec<(u32, f32)> {
    let n = data.len();
    if n == 1 || m <= 1 {
        return vec![(0, data[0] as f32)];
    }
    #[derive(PartialEq)]
    struct Interval {
        err: f64,
        a: usize,
        b: usize,
        split: usize,
    }
    impl Eq for Interval {}
    impl Ord for Interval {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.err
                .partial_cmp(&other.err)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.a.cmp(&other.a))
        }
    }
    impl PartialOrd for Interval {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut knots: Vec<usize> = vec![0, n - 1];
    let mut heap = BinaryHeap::new();
    if let Some((split, err)) = max_dev(data, 0, n - 1) {
        heap.push(Interval {
            err,
            a: 0,
            b: n - 1,
            split,
        });
    }
    while knots.len() < m {
        let Some(iv) = heap.pop() else { break };
        if iv.err <= 1e-12 {
            break; // Linear to rounding noise; extra knots are wasted bytes.
        }
        knots.push(iv.split);
        for (a, b) in [(iv.a, iv.split), (iv.split, iv.b)] {
            if let Some((split, err)) = max_dev(data, a, b) {
                heap.push(Interval { err, a, b, split });
            }
        }
    }
    knots.sort_unstable();
    knots
        .into_iter()
        .map(|i| (i as u32, data[i] as f32))
        .collect()
}

/// Douglas–Peucker refinement until the maximum chord deviation is at most
/// `eps` (no knot budget).
fn select_knots_until(data: &[f64], eps: f64) -> Vec<(u32, f32)> {
    // Reuse the budgeted refinement with an unreachable budget, stopping on
    // the error criterion instead: re-implemented here because the stop
    // condition differs.
    let n = data.len();
    if n == 1 {
        return vec![(0, data[0] as f32)];
    }
    let mut knots: Vec<usize> = vec![0, n - 1];
    let mut stack: Vec<(usize, usize)> = vec![(0, n - 1)];
    while let Some((a, b)) = stack.pop() {
        if let Some((split, err)) = max_dev(data, a, b) {
            // f32 storage adds rounding of its own; leave headroom.
            if err > eps * 0.5 {
                knots.push(split);
                stack.push((a, split));
                stack.push((split, b));
            }
        }
    }
    knots.sort_unstable();
    knots.dedup();
    knots
        .into_iter()
        .map(|i| (i as u32, data[i] as f32))
        .collect()
}

/// Drop knots to at most `m` by repeatedly removing the knot whose triangle
/// with its neighbours has the smallest area (endpoints are never dropped).
fn thin_knots(mut knots: Vec<(u32, f32)>, m: usize) -> Vec<(u32, f32)> {
    let area = |p: (u32, f32), q: (u32, f32), r: (u32, f32)| -> f64 {
        let (x1, y1) = (p.0 as f64, p.1 as f64);
        let (x2, y2) = (q.0 as f64, q.1 as f64);
        let (x3, y3) = (r.0 as f64, r.1 as f64);
        ((x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1)).abs() * 0.5
    };
    while knots.len() > m.max(2) {
        let mut min_area = f64::INFINITY;
        let mut min_idx = 1usize;
        for i in 1..knots.len() - 1 {
            let a = area(knots[i - 1], knots[i], knots[i + 1]);
            if a < min_area {
                min_area = a;
                min_idx = i;
            }
        }
        knots.remove(min_idx);
    }
    knots
}

fn interpolate(n: usize, knots: &[(u32, f32)]) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    if knots.is_empty() {
        return out;
    }
    // Flat extension before the first and after the last knot.
    let first = knots[0];
    for v in out.iter_mut().take(first.0 as usize + 1) {
        *v = first.1 as f64;
    }
    for w in knots.windows(2) {
        let (a_idx, a_val) = (w[0].0 as usize, w[0].1 as f64);
        let (b_idx, b_val) = (w[1].0 as usize, w[1].1 as f64);
        for (i, slot) in out.iter_mut().enumerate().take(b_idx + 1).skip(a_idx) {
            let t = (i - a_idx) as f64 / (b_idx - a_idx) as f64;
            *slot = a_val + (b_val - a_val) * t;
        }
    }
    let last = knots[knots.len() - 1];
    for v in out.iter_mut().skip(last.0 as usize) {
        *v = last.1 as f64;
    }
    out
}

impl Codec for Pla {
    fn id(&self) -> CodecId {
        CodecId::Pla
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossy
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        // Natural setting: half the points as knots.
        self.compress_to_ratio(data, 0.5)
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        let knots = decode_knots(block)?;
        Ok(interpolate(block.n_points as usize, &knots))
    }
}

impl LossyCodec for Pla {
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock> {
        check_lossy_args(data.len(), ratio)?;
        let m = knots_for(data.len(), ratio);
        let needed = if data.len() == 1 { 1 } else { 2 };
        if m < needed {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(data.len()),
            });
        }
        Ok(encode_knots(data.len(), &select_knots(data, m)))
    }

    fn min_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let needed = if n == 1 { 1 } else { 2 };
        (needed * KNOT_BYTES) as f64 / (n * POINT_BYTES) as f64
    }

    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        check_lossy_args(n, ratio)?;
        if block.ratio() <= ratio {
            return Err(CodecError::RecodeUnsupported(
                "block already at or below target ratio",
            ));
        }
        let m = knots_for(n, ratio);
        let needed = if n == 1 { 1 } else { 2 };
        if m < needed {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        let knots = decode_knots(block)?;
        Ok(encode_knots(n, &thin_knots(knots, m)))
    }

    fn compress_with_error_bound(
        &self,
        data: &[f64],
        max_abs_error: f64,
    ) -> Result<CompressedBlock> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        if !max_abs_error.is_finite() || max_abs_error <= 0.0 {
            return Err(CodecError::InvalidParameter("error bound must be positive"));
        }
        Ok(encode_knots(
            data.len(),
            &select_knots_until(data, max_abs_error),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.05).sin() * 3.0 + (i as f64 * 0.011).cos())
            .collect()
    }

    #[test]
    fn perfectly_linear_data_is_exact() {
        let data: Vec<f64> = (0..100).map(|i| 2.0 * i as f64 + 1.0).collect();
        let block = Pla.compress_to_ratio(&data, 0.5).unwrap();
        // Only 2 knots needed for a line.
        assert!(block.compressed_bytes() <= 2 * KNOT_BYTES);
        let back = Pla.decompress(&block).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn hits_target_ratio() {
        let data = sample(1000);
        for target in [0.5, 0.2, 0.1, 0.05, 0.02] {
            let block = Pla.compress_to_ratio(&data, target).unwrap();
            assert!(block.ratio() <= target + 1e-9);
        }
    }

    #[test]
    fn preserves_peaks_well() {
        // A spiky signal: PLA should capture the spike because the spike is
        // the max-deviation point.
        let mut data = vec![0.0; 200];
        data[77] = 50.0;
        let block = Pla.compress_to_ratio(&data, 0.1).unwrap();
        let back = Pla.decompress(&block).unwrap();
        let max_orig = data.iter().cloned().fold(f64::MIN, f64::max);
        let max_back = back.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (max_orig - max_back).abs() / max_orig < 0.01,
            "peak lost: {max_back} vs {max_orig}"
        );
    }

    #[test]
    fn error_shrinks_with_budget() {
        let data = sample(1000);
        let rmse = |r: f64| {
            let b = Pla.compress_to_ratio(&data, r).unwrap();
            let back = Pla.decompress(&b).unwrap();
            (data
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / data.len() as f64)
                .sqrt()
        };
        assert!(rmse(0.3) <= rmse(0.05) + 1e-12);
    }

    #[test]
    fn recode_thins_knots() {
        let data = sample(1000);
        let block = Pla.compress_to_ratio(&data, 0.2).unwrap();
        let recoded = Pla.recode(&block, 0.05).unwrap();
        assert!(recoded.ratio() <= 0.05 + 1e-9);
        let back = Pla.decompress(&recoded).unwrap();
        assert_eq!(back.len(), data.len());
        // Endpoints survive thinning.
        let knots = decode_knots(&recoded).unwrap();
        assert_eq!(knots.first().unwrap().0, 0);
        assert_eq!(knots.last().unwrap().0, 999);
    }

    #[test]
    fn single_point_segment() {
        let block = Pla.compress_to_ratio(&[5.0], 1.0).unwrap();
        let back = Pla.decompress(&block).unwrap();
        assert_eq!(back.len(), 1);
        assert!((back[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn floor_enforced() {
        let data = sample(100);
        assert!(matches!(
            Pla.compress_to_ratio(&data, 0.01),
            Err(CodecError::RatioUnreachable { .. })
        ));
        let floor = Pla.min_ratio(100);
        assert!(Pla.compress_to_ratio(&data, floor).is_ok());
    }

    #[test]
    fn corrupt_knots_rejected() {
        let data = sample(100);
        let block = Pla.compress_to_ratio(&data, 0.5).unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(KNOT_BYTES - 2);
        assert!(Pla.decompress(&bad).is_err());
        // Out-of-range index.
        let mut bad2 = block.clone();
        bad2.payload[..4].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(Pla.decompress(&bad2).is_err());
    }

    #[test]
    fn constant_data_collapses() {
        let data = vec![7.0; 500];
        let block = Pla.compress_to_ratio(&data, 0.5).unwrap();
        assert!(block.compressed_bytes() <= 2 * KNOT_BYTES);
        let back = Pla.decompress(&block).unwrap();
        assert!(back.iter().all(|&v| (v - 7.0).abs() < 1e-6));
    }
}
