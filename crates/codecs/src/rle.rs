//! Run-length encoding for doubles: `(count, value)` pairs.
//!
//! The classic lightweight encoding from the column-store lineage the
//! paper builds on (Abadi et al., SIGMOD 2006). Devastatingly effective on
//! step/plateau signals (status flags, setpoints), useless on noisy ones —
//! a textbook arm for the MAB to learn *when* to use.
//!
//! Payload: repeated `(count: u32 LE, value: f64 LE)`.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};

/// RLE codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rle;

const PAIR_BYTES: usize = 12;

impl Codec for Rle {
    fn id(&self) -> CodecId {
        CodecId::Rle
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    // `data[0]` / `data[1..]` are guarded by the emptiness check below.
    #[allow(clippy::indexing_slicing)]
    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let payload = &mut scratch.out;
        payload.clear();
        let mut run_value = data[0];
        let mut run_len: u32 = 1;
        for &v in &data[1..] {
            // Bit-pattern equality so NaN payloads and -0.0 are preserved.
            if v.to_bits() == run_value.to_bits() && run_len < u32::MAX {
                run_len += 1;
            } else {
                payload.extend_from_slice(&run_len.to_le_bytes());
                payload.extend_from_slice(&run_value.to_le_bytes());
                run_value = v;
                run_len = 1;
            }
        }
        payload.extend_from_slice(&run_len.to_le_bytes());
        payload.extend_from_slice(&run_value.to_le_bytes());
        Ok(CompressedBlockRef::new(self.id(), data.len(), payload))
    }

    // `chunks_exact(PAIR_BYTES)` guarantees each `pair` is exactly 12 bytes,
    // so the 4/8-byte splits cannot be out of bounds.
    #[allow(clippy::indexing_slicing)]
    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        if !block.payload.len().is_multiple_of(PAIR_BYTES) {
            return Err(CodecError::Corrupt("rle payload size"));
        }
        out.clear();
        out.reserve(n);
        for pair in block.payload.chunks_exact(PAIR_BYTES) {
            let count = u32::from_le_bytes(pair[..4].try_into().expect("4 bytes")) as usize;
            let value = f64::from_le_bytes(pair[4..].try_into().expect("8 bytes"));
            if out.len() + count > n {
                return Err(CodecError::Corrupt("rle runs exceed point count"));
            }
            out.extend(std::iter::repeat_n(value, count));
        }
        if out.len() != n {
            return Err(CodecError::Corrupt("rle runs short of point count"));
        }
        Ok(())
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) {
        let block = Rle.compress(data).unwrap();
        let back = Rle.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn constant_collapses_to_one_pair() {
        let data = vec![5.5; 10_000];
        let block = Rle.compress(&data).unwrap();
        assert_eq!(block.compressed_bytes(), PAIR_BYTES);
        roundtrip(&data);
    }

    #[test]
    fn step_signal_compresses() {
        let data: Vec<f64> = (0..1000).map(|i| (i / 100) as f64).collect();
        let block = Rle.compress(&data).unwrap();
        assert_eq!(block.compressed_bytes(), 10 * PAIR_BYTES);
        roundtrip(&data);
    }

    #[test]
    fn distinct_values_expand() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        let block = Rle.compress(&data).unwrap();
        assert!(block.ratio() > 1.0, "all-distinct should exceed 1.0");
        roundtrip(&data);
    }

    #[test]
    fn single_value_and_specials() {
        roundtrip(&[42.0]);
        roundtrip(&[0.0, -0.0, 0.0, -0.0]);
        roundtrip(&[f64::NAN, f64::NAN, 1.0]);
    }

    #[test]
    fn corrupt_counts_detected() {
        let block = Rle.compress(&[1.0, 1.0, 2.0]).unwrap();
        let mut overrun = block.clone();
        overrun.payload[..4].copy_from_slice(&100u32.to_le_bytes());
        assert!(Rle.decompress(&overrun).is_err());
        let mut short = block.clone();
        short.payload[..4].copy_from_slice(&1u32.to_le_bytes());
        assert!(Rle.decompress(&short).is_err());
        let mut ragged = block;
        ragged.payload.push(0);
        assert!(Rle.decompress(&ragged).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Rle.compress(&[]).is_err());
    }
}
