//! DEFLATE-style byte compression: LZ77 tokens entropy-coded with canonical
//! Huffman over the standard literal/length and distance alphabets.
//!
//! The bitstream is self-describing but deliberately *not* RFC 1951
//! compatible — AdaEdge never exchanges compressed bytes with foreign
//! tools, so we use a simpler code-length header (4-bit lengths with
//! zero-run escapes) instead of DEFLATE's meta-Huffman header.
//!
//! Three arms are built on this engine: `gzip` (deepest search, slowest,
//! strongest), `zlib-1/6/9` (the zlib ladder). `snappy` lives in
//! [`crate::snappy`] and skips entropy coding entirely.

// The inflate path handles untrusted payload bytes; surface every raw index
// so each one carries an explicit bounds argument.
#![warn(clippy::indexing_slicing)]

use crate::bitio::{BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::huffman::HuffScratch;
use crate::lz::{
    lz77_expand_into, lz77_tokens_into, LzConfig, LzScratch, Token, MAX_MATCH, MIN_MATCH,
};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};
use crate::util::{bytes_to_f64s_into, f64s_to_bytes_into};

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size (DEFLATE's 286).
const LITLEN_SYMS: usize = 286;
/// Distance alphabet size (DEFLATE's 30).
const DIST_SYMS: usize = 30;

/// DEFLATE length-code table: (base length, extra bits) for codes 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// DEFLATE distance-code table: (base distance, extra bits) for codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Map a match length (3..=258) to (symbol offset 0..28, extra bits, extra value).
// `partition_point(..).saturating_sub(1)` is always < LEN_TABLE.len(), and
// the 258 special case pins idx to the last entry.
#[allow(clippy::indexing_slicing)]
fn length_code(len: u16) -> (usize, u8, u16) {
    debug_assert!((MIN_MATCH as u16..=MAX_MATCH as u16).contains(&len));
    // Binary search over base values.
    let mut idx = LEN_TABLE
        .partition_point(|&(base, _)| base <= len)
        .saturating_sub(1);
    // Length 258 maps to the final code with 0 extra bits.
    if len == 258 {
        idx = 28;
    }
    let (base, extra) = LEN_TABLE[idx];
    (idx, extra, len - base)
}

/// Map a distance (1..=32768) to (symbol 0..29, extra bits, extra value).
// `partition_point(..).saturating_sub(1)` is always < DIST_TABLE.len().
#[allow(clippy::indexing_slicing)]
fn dist_code(dist: u16) -> (usize, u8, u16) {
    let idx = DIST_TABLE
        .partition_point(|&(base, _)| base <= dist)
        .saturating_sub(1);
    let (base, extra) = DIST_TABLE[idx];
    (idx, extra, dist - base)
}

/// Write code lengths: nibble 1..=15 is a length; nibble 0 is followed by an
/// 8-bit (run−1) count of zero lengths.
// Encode-side hot path: `i` and `n` are bounded by the loop conditions
// directly above each index.
#[allow(clippy::indexing_slicing)]
fn write_lens(w: &mut BitWriter, lens: &[u32]) {
    let mut nibbles = [0u64; 16];
    let mut i = 0;
    while i < lens.len() {
        if lens[i] == 0 {
            let mut run = 1usize;
            while i + run < lens.len() && lens[i + run] == 0 && run < 256 {
                run += 1;
            }
            w.write_bits(0, 4);
            w.write_bits((run - 1) as u64, 8);
            i += run;
        } else {
            // Batch consecutive non-zero lengths through the bulk 4-bit kernel.
            while i < lens.len() && lens[i] != 0 {
                let mut n = 0;
                while i < lens.len() && lens[i] != 0 && n < nibbles.len() {
                    nibbles[n] = lens[i] as u64;
                    n += 1;
                    i += 1;
                }
                w.write_run(&nibbles[..n], 4);
            }
        }
    }
}

fn read_lens_into(r: &mut BitReader<'_>, n: usize, lens: &mut Vec<u32>) -> Result<()> {
    lens.clear();
    lens.reserve(n);
    while lens.len() < n {
        let nib = r.read_bits(4)? as u32;
        if nib == 0 {
            let run = r.read_bits(8)? as usize + 1;
            if lens.len() + run > n {
                return Err(CodecError::Corrupt("zero run overflows length table"));
            }
            lens.extend(std::iter::repeat_n(0, run));
        } else {
            lens.push(nib);
        }
    }
    Ok(())
}

/// Compress raw bytes with the given LZ configuration.
pub fn deflate_bytes(data: &[u8], config: LzConfig) -> Vec<u8> {
    let mut out = Vec::new();
    deflate_bytes_into(
        data,
        config,
        &mut LzScratch::default(),
        &mut HuffScratch::default(),
        &mut out,
    );
    out
}

/// [`deflate_bytes`] into a reused output buffer, recycling the LZ77
/// matcher tables, token buffer and Huffman state across calls.
// Encode-side hot path over trusted tokens: frequency tables are resized to
// the alphabet sizes and every symbol is alphabet-bounded by construction.
#[allow(clippy::indexing_slicing)]
pub fn deflate_bytes_into(
    data: &[u8],
    config: LzConfig,
    lz: &mut LzScratch,
    huff: &mut HuffScratch,
    out: &mut Vec<u8>,
) {
    lz77_tokens_into(data, config, lz);
    let tokens = &lz.tokens;
    // Frequency pass.
    huff.lit_freq.clear();
    huff.lit_freq.resize(LITLEN_SYMS, 0);
    huff.dist_freq.clear();
    huff.dist_freq.resize(DIST_SYMS, 0);
    for t in tokens {
        match *t {
            Token::Literal(b) => huff.lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                huff.lit_freq[257 + length_code(len).0] += 1;
                huff.dist_freq[dist_code(dist).0] += 1;
            }
        }
    }
    huff.lit_freq[EOB] += 1;
    huff.lit_enc
        .rebuild_from_freqs(&huff.lit_freq, &mut huff.work);
    huff.dist_enc
        .rebuild_from_freqs(&huff.dist_freq, &mut huff.work);
    let lit_enc = &huff.lit_enc;
    let dist_enc = &huff.dist_enc;

    let mut w = BitWriter::over(std::mem::take(out));
    w.reserve(data.len() / 2 + 64);
    write_lens(&mut w, lit_enc.lens());
    write_lens(&mut w, dist_enc.lens());
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                lit_enc.write(&mut w, b as usize).expect("literal has code");
            }
            Token::Match { len, dist } => {
                let (lsym, lextra, lval) = length_code(len);
                lit_enc.write(&mut w, 257 + lsym).expect("length has code");
                w.write_bits(lval as u64, lextra as u32);
                let (dsym, dextra, dval) = dist_code(dist);
                dist_enc.write(&mut w, dsym).expect("distance has code");
                w.write_bits(dval as u64, dextra as u32);
            }
        }
    }
    lit_enc.write(&mut w, EOB).expect("EOB has code");
    *out = w.finish();
}

/// Decompress bytes produced by [`deflate_bytes`], expecting `expected_len`
/// output bytes.
pub fn inflate_bytes(payload: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    inflate_bytes_into(
        payload,
        expected_len,
        &mut LzScratch::default(),
        &mut HuffScratch::default(),
        &mut out,
    )?;
    Ok(out)
}

/// [`inflate_bytes`] into a reused output buffer, recycling the token
/// buffer and Huffman decoder state across calls.
///
/// Corruption containment: a running produced-byte count caps the token
/// stream at `expected_len` while it is still being parsed, so a corrupt
/// payload cannot grow the token buffer (or, later, the output) beyond the
/// declared segment size.
// `LEN_TABLE[idx]` / `DIST_TABLE[dsym]` are indexed only after the explicit
// range checks directly above them.
#[allow(clippy::indexing_slicing)]
pub fn inflate_bytes_into(
    payload: &[u8],
    expected_len: usize,
    lz: &mut LzScratch,
    huff: &mut HuffScratch,
    out: &mut Vec<u8>,
) -> Result<()> {
    let mut r = BitReader::new(payload);
    read_lens_into(&mut r, LITLEN_SYMS, &mut huff.lit_lens)?;
    read_lens_into(&mut r, DIST_SYMS, &mut huff.dist_lens)?;
    huff.lit_dec.rebuild_from_lens(&huff.lit_lens)?;
    huff.dist_dec.rebuild_from_lens(&huff.dist_lens)?;
    let lit_dec = &huff.lit_dec;
    let dist_dec = &huff.dist_dec;
    let tokens = &mut lz.tokens;
    tokens.clear();
    tokens.reserve(expected_len / 4 + 8);
    let mut produced = 0usize;
    loop {
        let sym = lit_dec.read(&mut r)? as usize;
        if sym == EOB {
            break;
        }
        if sym < 256 {
            produced += 1;
            tokens.push(Token::Literal(sym as u8));
        } else {
            let idx = sym - 257;
            if idx >= LEN_TABLE.len() {
                return Err(CodecError::Corrupt("invalid length symbol"));
            }
            let (base, extra) = LEN_TABLE[idx];
            let len = base + r.read_bits(extra as u32)? as u16;
            let dsym = dist_dec.read(&mut r)? as usize;
            if dsym >= DIST_TABLE.len() {
                return Err(CodecError::Corrupt("invalid distance symbol"));
            }
            let (dbase, dextra) = DIST_TABLE[dsym];
            let dist = dbase + r.read_bits(dextra as u32)? as u16;
            produced += len as usize;
            tokens.push(Token::Match { len, dist });
        }
        if produced > expected_len {
            return Err(CodecError::Corrupt("deflate stream overruns output"));
        }
    }
    lz77_expand_into(tokens, expected_len, out).map_err(CodecError::Corrupt)?;
    if out.len() != expected_len {
        return Err(CodecError::Corrupt("inflated length mismatch"));
    }
    Ok(())
}

/// A byte-compression codec backed by the DEFLATE-style engine.
#[derive(Debug, Clone, Copy)]
pub struct Deflate {
    id: CodecId,
    config: LzConfig,
}

impl Deflate {
    /// `gzip`: deepest chain search — slowest, strongest arm.
    pub fn gzip() -> Self {
        Self {
            id: CodecId::Gzip,
            config: LzConfig::level(10),
        }
    }

    /// `zlib-1`: fastest Huffman-coded setting.
    pub fn zlib1() -> Self {
        Self {
            id: CodecId::Zlib1,
            config: LzConfig::level(1),
        }
    }

    /// `zlib-6`: default setting.
    pub fn zlib6() -> Self {
        Self {
            id: CodecId::Zlib6,
            config: LzConfig::level(6),
        }
    }

    /// `zlib-9`: strongest zlib setting.
    pub fn zlib9() -> Self {
        Self {
            id: CodecId::Zlib9,
            config: LzConfig::level(9),
        }
    }
}

impl Codec for Deflate {
    fn id(&self) -> CodecId {
        self.id
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id,
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let CodecScratch {
            out,
            bytes,
            lz,
            huff,
            ..
        } = scratch;
        f64s_to_bytes_into(data, bytes);
        deflate_bytes_into(bytes, self.config, lz, huff, out);
        Ok(CompressedBlockRef::new(self.id, data.len(), out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let CodecScratch {
            bytes, lz, huff, ..
        } = scratch;
        inflate_bytes_into(&block.payload, block.n_points as usize * 8, lz, huff, bytes)?;
        bytes_to_f64s_into(bytes, out)
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn length_code_table_covers_range() {
        for len in MIN_MATCH as u16..=MAX_MATCH as u16 {
            let (idx, extra, val) = length_code(len);
            let (base, e) = LEN_TABLE[idx];
            assert_eq!(e, extra);
            assert_eq!(base + val, len, "len {len}");
            assert!(val < (1 << extra) || extra == 0 && val == 0);
        }
    }

    #[test]
    fn dist_code_table_covers_range() {
        for dist in [1u16, 2, 3, 4, 5, 100, 1024, 5000, 32767] {
            let (idx, extra, val) = dist_code(dist);
            let (base, e) = DIST_TABLE[idx];
            assert_eq!(e, extra);
            assert_eq!(base + val, dist, "dist {dist}");
        }
    }

    #[test]
    fn bytes_roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox!".repeat(20);
        for cfg in [LzConfig::level(1), LzConfig::level(6), LzConfig::level(9)] {
            let c = deflate_bytes(&data, cfg);
            assert!(c.len() < data.len());
            assert_eq!(inflate_bytes(&c, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn bytes_roundtrip_incompressible() {
        let mut x = 0x123456789ABCDEFu64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let c = deflate_bytes(&data, LzConfig::level(6));
        assert_eq!(inflate_bytes(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_byte_stream_roundtrip() {
        let c = deflate_bytes(&[], LzConfig::level(6));
        assert_eq!(inflate_bytes(&c, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn float_codec_roundtrips() {
        let data: Vec<f64> = (0..500).map(|i| ((i / 10) as f64) * 0.5).collect();
        for codec in [
            Deflate::gzip(),
            Deflate::zlib1(),
            Deflate::zlib6(),
            Deflate::zlib9(),
        ] {
            let block = codec.compress(&data).unwrap();
            assert_eq!(codec.decompress(&block).unwrap(), data);
        }
    }

    #[test]
    fn repeated_values_compress_well() {
        let data: Vec<f64> = (0..2000).map(|i| [1.0, 2.0][(i / 100) % 2]).collect();
        let block = Deflate::zlib9().compress(&data).unwrap();
        assert!(block.ratio() < 0.1, "ratio {}", block.ratio());
    }

    #[test]
    fn stronger_levels_do_no_worse() {
        let data: Vec<f64> = (0..3000)
            .map(|i| ((i % 50) as f64 * 0.1).round() / 10.0)
            .collect();
        let l1 = Deflate::zlib1().compress(&data).unwrap().compressed_bytes();
        let l9 = Deflate::zlib9().compress(&data).unwrap().compressed_bytes();
        let gz = Deflate::gzip().compress(&data).unwrap().compressed_bytes();
        assert!(l9 <= l1, "l9 {l9} vs l1 {l1}");
        assert!(gz <= l9 + 8, "gzip {gz} vs l9 {l9}");
    }

    #[test]
    fn wrong_length_detected() {
        let data = vec![3.0; 64];
        let block = Deflate::zlib6().compress(&data).unwrap();
        assert!(inflate_bytes(&block.payload, 100).is_err());
    }

    #[test]
    fn truncated_payload_detected() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let block = Deflate::zlib6().compress(&data).unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(8);
        assert!(Deflate::zlib6().decompress(&bad).is_err());
    }
}
