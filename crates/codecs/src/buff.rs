//! BUFF: bounded-precision fixed-point float compression (Liu et al.,
//! VLDB 2021), plus the lossy variant AdaEdge uses for aggressive targets.
//!
//! The segment is quantized at the dataset's decimal precision, rebased on
//! its minimum, and each offset is stored with just enough bits for the
//! segment's range. `Buff` keeps all bits (lossless at the declared
//! precision). `BuffLossy` discards `D` low-order bits — the paper's
//! "discarding insignificant bits" — which barely perturbs values, making it
//! the best choice for tree-based ML tasks at moderate ratios, but imposes a
//! hard floor: at most `W − MIN_KEPT_BITS` bits can be dropped, which is why
//! BUFF-lossy cannot reach ratios below ≈0.125 (§V-A, Figure 7).
//!
//! Recoding is a pure integer shift on the packed payload ("virtual
//! decompression", §IV-E): no floats are reconstructed.

use crate::bitio::{bits_needed, BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef, POINT_BYTES};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{budget_bytes, check_lossy_args, Codec, CodecKind, LossyCodec};
use crate::util::{min_max_i64, pow10, quantize_into};

/// Header bytes: precision (1) + width (1) + dropped (1) + min_q (8).
const HDR_BYTES: usize = 11;

/// The smallest number of bits BUFF-lossy will keep per value.
///
/// 8 bits of a 64-bit double gives the documented ≈0.125 ratio floor.
pub const MIN_KEPT_BITS: u32 = 8;

#[derive(Debug, Clone, Copy)]
struct Header {
    precision: u8,
    width: u32,
    dropped: u32,
    min_q: i64,
}

fn write_payload(hdr: Header, stored: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_payload_into(hdr, stored, &mut out);
    out
}

fn write_payload_into(hdr: Header, stored: &[u64], out: &mut Vec<u8>) {
    let kept = hdr.width - hdr.dropped;
    let mut w = BitWriter::over(std::mem::take(out));
    w.reserve(HDR_BYTES + (stored.len() * kept as usize).div_ceil(8));
    w.write_bits(hdr.precision as u64, 8);
    w.write_bits(hdr.width as u64, 8);
    w.write_bits(hdr.dropped as u64, 8);
    w.write_bits(hdr.min_q as u64, 64);
    w.write_run(stored, kept);
    *out = w.finish();
}

fn read_header(r: &mut BitReader<'_>) -> Result<Header> {
    let precision = r.read_bits(8)? as u8;
    let width = r.read_bits(8)? as u32;
    let dropped = r.read_bits(8)? as u32;
    let min_q = r.read_bits(64)? as i64;
    if width > 63 || dropped > width {
        return Err(CodecError::Corrupt("buff header widths invalid"));
    }
    Ok(Header {
        precision,
        width,
        dropped,
        min_q,
    })
}

/// How aggressively [`encode`] truncates low-order bits.
#[derive(Debug, Clone, Copy)]
enum Truncation {
    /// Keep everything (lossless BUFF).
    None,
    /// Keep at most this many bits per value (ratio-driven).
    Keep(u32),
    /// Drop this many low-order bits, capped at the natural width
    /// (error-bound-driven).
    Drop(u32),
}

/// Compress `data`, truncating per `truncation`.
fn encode(data: &[f64], precision: u8, truncation: Truncation) -> Result<CompressedBlock> {
    let mut scratch = CodecScratch::new();
    let (codec, n) = {
        let r = encode_into(data, precision, truncation, &mut scratch)?;
        (r.codec, r.n_points)
    };
    Ok(CompressedBlock {
        codec,
        n_points: n,
        payload: scratch.take_out(),
    })
}

/// [`encode`] into the scratch arena: quantized values, rebased offsets and
/// the packed payload all land in reused buffers.
fn encode_into<'a>(
    data: &[f64],
    precision: u8,
    truncation: Truncation,
    scratch: &'a mut CodecScratch,
) -> Result<CompressedBlockRef<'a>> {
    if data.is_empty() {
        return Err(CodecError::EmptyInput);
    }
    let CodecScratch {
        out, u64s, i64s, ..
    } = scratch;
    quantize_into(data, precision, i64s)?;
    let q = &*i64s;
    let (min_q, max_q) = min_max_i64(q);
    let range = (max_q as i128 - min_q as i128) as u128;
    if range > u64::MAX as u128 {
        return Err(CodecError::UnsupportedValue("range overflows 64 bits"));
    }
    let width = bits_needed(range as u64);
    let dropped = match truncation {
        Truncation::None => 0,
        Truncation::Keep(kept) => width.saturating_sub(kept),
        Truncation::Drop(d) => d.min(width),
    };
    let hdr = Header {
        precision,
        width,
        dropped,
        min_q,
    };
    let stored = u64s;
    stored.clear();
    stored.reserve(q.len());
    stored.extend(q.iter().map(|&v| ((v - min_q) as u64) >> dropped));
    write_payload_into(hdr, stored, out);
    let codec = if matches!(truncation, Truncation::None) {
        CodecId::Buff
    } else {
        CodecId::BuffLossy
    };
    Ok(CompressedBlockRef::new(codec, data.len(), out))
}

fn decode(block: &CompressedBlock) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    decode_into(block, &mut CodecScratch::new(), &mut out)?;
    Ok(out)
}

fn decode_into(
    block: &CompressedBlock,
    scratch: &mut CodecScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let n = block.n_points as usize;
    let mut r = BitReader::new(&block.payload);
    let hdr = read_header(&mut r)?;
    let scale = pow10(hdr.precision)?;
    let kept = hdr.width - hdr.dropped;
    // Midpoint reconstruction halves the expected truncation error.
    let half = if hdr.dropped > 0 {
        1u64 << (hdr.dropped - 1)
    } else {
        0
    };
    // Validate the payload's bit budget before sizing the work buffer, so a
    // corrupt header cannot trigger an allocation the payload doesn't back.
    if (r.remaining() as u64) < n as u64 * kept as u64 {
        return Err(CodecError::Corrupt(
            "buff payload shorter than header claims",
        ));
    }
    let stored = &mut scratch.u64s;
    stored.clear();
    stored.resize(n, 0);
    r.read_run(stored, kept)?;
    out.clear();
    out.reserve(n);
    for &s in stored.iter() {
        let delta = (s << hdr.dropped) | half;
        let q = hdr.min_q.wrapping_add(delta as i64);
        out.push(q as f64 / scale);
    }
    Ok(())
}

/// Scan a BUFF/BUFF-lossy payload's packed integers without materializing
/// floats: returns `(min, max, sum)` of the reconstruction. Backs the
/// compressed-domain aggregation operators.
pub(crate) fn scan_stats(block: &CompressedBlock) -> Result<(f64, f64, f64)> {
    let n = block.n_points as usize;
    let mut r = BitReader::new(&block.payload);
    let hdr = read_header(&mut r)?;
    let scale = pow10(hdr.precision)?;
    let kept = hdr.width - hdr.dropped;
    let half = if hdr.dropped > 0 {
        1u64 << (hdr.dropped - 1)
    } else {
        0
    };
    let mut min_q = i64::MAX;
    let mut max_q = i64::MIN;
    let mut sum_q: i128 = 0;
    // Validate before allocating (same containment as `decode_into`).
    if (r.remaining() as u64) < n as u64 * kept as u64 {
        return Err(CodecError::Corrupt(
            "buff payload shorter than header claims",
        ));
    }
    let mut stored = vec![0u64; n];
    r.read_run(&mut stored, kept)?;
    for s in stored {
        let delta = (s << hdr.dropped) | half;
        let q = hdr.min_q.wrapping_add(delta as i64);
        min_q = min_q.min(q);
        max_q = max_q.max(q);
        sum_q += q as i128;
    }
    if n == 0 {
        return Ok((0.0, 0.0, 0.0));
    }
    Ok((
        min_q as f64 / scale,
        max_q as f64 / scale,
        sum_q as f64 / scale,
    ))
}

/// Lossless BUFF at a fixed decimal precision.
#[derive(Debug, Clone, Copy)]
pub struct Buff {
    precision: u8,
}

impl Buff {
    /// BUFF codec for data with `precision` decimal digits.
    pub fn new(precision: u8) -> Self {
        Self { precision }
    }

    /// The precision this codec quantizes to.
    pub fn precision(&self) -> u8 {
        self.precision
    }
}

impl Codec for Buff {
    fn id(&self) -> CodecId {
        CodecId::Buff
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        encode(data, self.precision, Truncation::None)
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        decode(block)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        encode_into(data, self.precision, Truncation::None, scratch)
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        decode_into(block, scratch, out)
    }
}

/// Lossy BUFF: truncates low-order bits to hit a target ratio.
#[derive(Debug, Clone, Copy)]
pub struct BuffLossy {
    precision: u8,
}

impl BuffLossy {
    /// Lossy BUFF codec for data with `precision` decimal digits.
    pub fn new(precision: u8) -> Self {
        Self { precision }
    }

    fn kept_bits_for(&self, n: usize, ratio: f64) -> i64 {
        let budget = budget_bytes(n, ratio);
        if budget <= HDR_BYTES {
            return -1;
        }
        (((budget - HDR_BYTES) * 8) / n) as i64
    }
}

impl Codec for BuffLossy {
    fn id(&self) -> CodecId {
        CodecId::BuffLossy
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossy
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        // Natural setting: drop half of the fractional resolution.
        encode(
            data,
            self.precision,
            Truncation::Keep(MIN_KEPT_BITS.max(16)),
        )
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        decode(block)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        encode_into(
            data,
            self.precision,
            Truncation::Keep(MIN_KEPT_BITS.max(16)),
            scratch,
        )
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        decode_into(block, scratch, out)
    }
}

impl LossyCodec for BuffLossy {
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock> {
        check_lossy_args(data.len(), ratio)?;
        let kept = self.kept_bits_for(data.len(), ratio);
        if kept < MIN_KEPT_BITS as i64 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(data.len()),
            });
        }
        // The data's natural width may be below the budget; encode() caps
        // `dropped` at zero in that case and the block lands under target.
        encode(data, self.precision, Truncation::Keep(kept as u32))
    }

    fn min_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let min_bytes = HDR_BYTES + (n * MIN_KEPT_BITS as usize).div_ceil(8);
        min_bytes as f64 / (n * POINT_BYTES) as f64
    }

    fn compress_with_error_bound(
        &self,
        data: &[f64],
        max_abs_error: f64,
    ) -> Result<CompressedBlock> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        if !max_abs_error.is_finite() || max_abs_error <= 0.0 {
            return Err(CodecError::InvalidParameter("error bound must be positive"));
        }
        let scale = pow10(self.precision)?;
        // Midpoint reconstruction bounds the truncation error by
        // 2^(d−1)/scale; quantization itself adds ≤ 0.5/scale.
        let budget = (max_abs_error * scale - 0.5).max(0.0);
        // Dropping d bits costs at most 2^(d−1) quanta; take the largest d
        // whose cost fits (the loop guard is the cost of d+1).
        let mut dropped = 0u32;
        while dropped < 52 && (1u64 << dropped) as f64 <= budget {
            dropped += 1;
        }
        // `encode` caps dropping at the natural width.
        encode(data, self.precision, Truncation::Drop(dropped)).map(|mut b| {
            b.codec = CodecId::BuffLossy;
            b
        })
    }

    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        if block.codec != CodecId::BuffLossy && block.codec != CodecId::Buff {
            return Err(CodecError::WrongCodec {
                expected: CodecId::BuffLossy,
                found: block.codec,
            });
        }
        check_lossy_args(block.n_points as usize, ratio)?;
        if block.ratio() <= ratio {
            return Err(CodecError::RecodeUnsupported(
                "block already at or below target ratio",
            ));
        }
        let n = block.n_points as usize;
        let mut r = BitReader::new(&block.payload);
        let hdr = read_header(&mut r)?;
        let cur_kept = hdr.width - hdr.dropped;
        let new_kept = self.kept_bits_for(n, ratio);
        if new_kept < MIN_KEPT_BITS as i64 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        let new_kept = (new_kept as u32).min(cur_kept);
        if new_kept == cur_kept {
            return Err(CodecError::RecodeUnsupported(
                "cannot shrink further at this granularity",
            ));
        }
        let shift = cur_kept - new_kept;
        let new_hdr = Header {
            dropped: hdr.dropped + shift,
            ..hdr
        };
        // Pure integer pass over the packed payload: virtual decompression.
        // Validate before allocating (same containment as `decode_into`).
        if (r.remaining() as u64) < n as u64 * cur_kept as u64 {
            return Err(CodecError::Corrupt(
                "buff payload shorter than header claims",
            ));
        }
        let mut stored = vec![0u64; n];
        r.read_run(&mut stored, cur_kept)?;
        for s in &mut stored {
            *s >>= shift;
        }
        let payload = write_payload(new_hdr, &stored);
        Ok(CompressedBlock::new(CodecId::BuffLossy, n, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::round_to_precision;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.017).sin() * 2.5 + 0.3)
            .collect()
    }

    #[test]
    fn lossless_roundtrip_at_precision() {
        let data = sample(500);
        let b = Buff::new(4);
        let block = b.compress(&data).unwrap();
        assert_eq!(block.codec, CodecId::Buff);
        let back = b.decompress(&block).unwrap();
        for (a, r) in data.iter().zip(&back) {
            assert!((round_to_precision(*a, 4) - r).abs() < 1e-9, "{a} -> {r}");
        }
    }

    #[test]
    fn lossless_ratio_reflects_range_and_precision() {
        // ~5 units of range at 4 digits → width ≈ 16-17 bits → ratio ≈ 0.27.
        let block = Buff::new(4).compress(&sample(1000)).unwrap();
        assert!(
            block.ratio() > 0.20 && block.ratio() < 0.35,
            "{}",
            block.ratio()
        );
    }

    #[test]
    fn lossy_hits_target_ratio() {
        let data = sample(1000);
        let bl = BuffLossy::new(4);
        for target in [0.5, 0.3, 0.2, 0.15] {
            let block = bl.compress_to_ratio(&data, target).unwrap();
            assert!(
                block.ratio() <= target + 1e-9,
                "{} > {target}",
                block.ratio()
            );
            assert_eq!(block.codec, CodecId::BuffLossy);
            let back = bl.decompress(&block).unwrap();
            assert_eq!(back.len(), data.len());
        }
    }

    #[test]
    fn lossy_error_shrinks_with_ratio() {
        let data = sample(1000);
        let bl = BuffLossy::new(4);
        let coarse = bl.compress_to_ratio(&data, 0.15).unwrap();
        let fine = bl.compress_to_ratio(&data, 0.3).unwrap();
        let err = |block: &CompressedBlock| -> f64 {
            let back = bl.decompress(block).unwrap();
            data.iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / data.len() as f64
        };
        assert!(err(&fine) <= err(&coarse));
        // Even coarse truncation keeps values close (minimal distortion).
        assert!(err(&coarse) < 0.05, "coarse err {}", err(&coarse));
    }

    #[test]
    fn ratio_floor_enforced() {
        let data = sample(1000);
        let bl = BuffLossy::new(4);
        let err = bl.compress_to_ratio(&data, 0.05).unwrap_err();
        match err {
            CodecError::RatioUnreachable { minimum, .. } => {
                assert!(minimum > 0.12 && minimum < 0.14, "floor {minimum}");
            }
            other => panic!("expected RatioUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn min_ratio_matches_paper_floor() {
        let bl = BuffLossy::new(4);
        let floor = bl.min_ratio(1000);
        assert!(floor > 0.125 && floor < 0.13, "{floor}");
    }

    #[test]
    fn recode_shrinks_without_floats() {
        let data = sample(800);
        let bl = BuffLossy::new(4);
        let block = bl.compress_to_ratio(&data, 0.3).unwrap();
        let smaller = bl.recode(&block, 0.18).unwrap();
        assert!(smaller.ratio() <= 0.18 + 1e-9);
        assert!(smaller.compressed_bytes() < block.compressed_bytes());
        let back = bl.decompress(&smaller).unwrap();
        assert_eq!(back.len(), data.len());
        // Recoded output equals direct compression at the same kept bits.
        let direct = bl.compress_to_ratio(&data, 0.18).unwrap();
        assert_eq!(bl.decompress(&direct).unwrap(), back);
    }

    #[test]
    fn recode_respects_floor_and_direction() {
        let data = sample(800);
        let bl = BuffLossy::new(4);
        let block = bl.compress_to_ratio(&data, 0.3).unwrap();
        assert!(matches!(
            bl.recode(&block, 0.05),
            Err(CodecError::RatioUnreachable { .. })
        ));
        assert!(matches!(
            bl.recode(&block, 0.9),
            Err(CodecError::RecodeUnsupported(_))
        ));
    }

    #[test]
    fn recode_accepts_lossless_buff_input() {
        let data = sample(500);
        let lossless = Buff::new(4).compress(&data).unwrap();
        let bl = BuffLossy::new(4);
        let recoded = bl.recode(&lossless, 0.15).unwrap();
        assert_eq!(recoded.codec, CodecId::BuffLossy);
        assert!(recoded.ratio() <= 0.15 + 1e-9);
    }

    #[test]
    fn constant_segment_is_tiny() {
        let data = vec![1.5; 512];
        let block = Buff::new(4).compress(&data).unwrap();
        assert!(block.compressed_bytes() <= HDR_BYTES + 1);
        let back = Buff::new(4).decompress(&block).unwrap();
        assert!(back.iter().all(|&v| (v - 1.5).abs() < 1e-9));
    }

    #[test]
    fn negative_values_roundtrip() {
        let data: Vec<f64> = (0..200).map(|i| -50.0 + i as f64 * 0.25).collect();
        let b = Buff::new(2);
        let back = b.decompress(&b.compress(&data).unwrap()).unwrap();
        for (a, r) in data.iter().zip(&back) {
            assert!((a - r).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(Buff::new(4).compress(&[]).is_err());
        assert!(BuffLossy::new(4).compress_to_ratio(&[], 0.5).is_err());
    }
}
