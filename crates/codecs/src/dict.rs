//! Dictionary encoding for doubles: distinct bit patterns are collected in
//! a per-segment dictionary and each point stores a bit-packed code.
//!
//! Highly effective on low-entropy signals (few distinct values), which is
//! exactly the regime where it wins arms in the data-shift experiment
//! (Figure 15). On high-entropy data the dictionary approaches the segment
//! size and the ratio exceeds 1.0 — the MAB learns to avoid it.

use crate::bitio::{bits_needed, BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock};
use crate::error::{CodecError, Result};
use crate::traits::{Codec, CodecKind};
use std::collections::HashMap;

/// Dictionary codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Dict;

impl Codec for Dict {
    fn id(&self) -> CodecId {
        CodecId::Dict
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        // First pass: collect distinct bit patterns in first-seen order.
        let mut index: HashMap<u64, u32> = HashMap::new();
        let mut entries: Vec<u64> = Vec::new();
        let mut codes: Vec<u64> = Vec::with_capacity(data.len());
        for &v in data {
            let bits = v.to_bits();
            let code = *index.entry(bits).or_insert_with(|| {
                entries.push(bits);
                (entries.len() - 1) as u32
            });
            codes.push(code as u64);
        }
        let code_width = bits_needed(entries.len() as u64 - 1).max(1);
        let mut w = BitWriter::with_capacity(
            4 + entries.len() * 8 + (data.len() * code_width as usize).div_ceil(8),
        );
        w.write_bits(entries.len() as u64, 32);
        w.write_run(&entries, 64);
        w.write_run(&codes, code_width);
        Ok(CompressedBlock::new(self.id(), data.len(), w.finish()))
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut r = BitReader::new(&block.payload);
        let dict_len = r.read_bits(32)? as usize;
        if dict_len == 0 || dict_len > n {
            return Err(CodecError::Corrupt("dictionary size out of range"));
        }
        let mut entry_bits = vec![0u64; dict_len];
        r.read_run(&mut entry_bits, 64)?;
        let entries: Vec<f64> = entry_bits.into_iter().map(f64::from_bits).collect();
        let code_width = bits_needed(dict_len as u64 - 1).max(1);
        let mut codes = vec![0u64; n];
        r.read_run(&mut codes, code_width)?;
        let mut out = Vec::with_capacity(n);
        for code in codes {
            let v = entries
                .get(code as usize)
                .copied()
                .ok_or(CodecError::Corrupt("code beyond dictionary"))?;
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) {
        let block = Dict.compress(data).unwrap();
        let back = Dict.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_low_entropy() {
        let data: Vec<f64> = (0..1000).map(|i| [1.0, 2.5, -3.0][i % 3]).collect();
        roundtrip(&data);
        let block = Dict.compress(&data).unwrap();
        // 3 entries → 2-bit codes → ratio ≈ 2/64 + dict overhead.
        assert!(block.ratio() < 0.05, "ratio {}", block.ratio());
    }

    #[test]
    fn roundtrip_all_distinct() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 1.0001).collect();
        roundtrip(&data);
        let block = Dict.compress(&data).unwrap();
        // All distinct: dictionary alone equals the input — ratio above 1.
        assert!(block.ratio() > 1.0);
    }

    #[test]
    fn roundtrip_single_value() {
        roundtrip(&[std::f64::consts::PI]);
        roundtrip(&[0.0; 17]);
    }

    #[test]
    fn nan_patterns_preserved() {
        // Dict operates on bit patterns, so NaN payloads roundtrip exactly.
        let data = vec![f64::NAN, 1.0, f64::NAN, 1.0];
        let block = Dict.compress(&data).unwrap();
        let back = Dict.decompress(&block).unwrap();
        assert!(back[0].is_nan() && back[2].is_nan());
        assert_eq!(back[1], 1.0);
    }

    #[test]
    fn corrupt_dict_len_detected() {
        let block = Dict.compress(&[1.0, 2.0, 1.0]).unwrap();
        let mut bad = block.clone();
        // Overwrite dict length with a huge value.
        bad.payload[0..4].copy_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
        assert!(Dict.decompress(&bad).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Dict.compress(&[]).is_err());
    }
}
