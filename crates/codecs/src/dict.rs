//! Dictionary encoding for doubles: distinct bit patterns are collected in
//! a per-segment dictionary and each point stores a bit-packed code.
//!
//! Highly effective on low-entropy signals (few distinct values), which is
//! exactly the regime where it wins arms in the data-shift experiment
//! (Figure 15). On high-entropy data the dictionary approaches the segment
//! size and the ratio exceeds 1.0 — the MAB learns to avoid it.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::bitio::{bits_needed, BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};

/// Dictionary codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Dict;

impl Codec for Dict {
    fn id(&self) -> CodecId {
        CodecId::Dict
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let CodecScratch {
            out,
            u64s,
            u64s_b,
            map,
            ..
        } = scratch;
        // First pass: collect distinct bit patterns in first-seen order.
        let index = map;
        index.clear();
        let entries = u64s;
        entries.clear();
        let codes = u64s_b;
        codes.clear();
        codes.reserve(data.len());
        for &v in data {
            let bits = v.to_bits();
            let code = *index.entry(bits).or_insert_with(|| {
                entries.push(bits);
                (entries.len() - 1) as u32
            });
            codes.push(code as u64);
        }
        let code_width = bits_needed(entries.len() as u64 - 1).max(1);
        let mut w = BitWriter::over(std::mem::take(out));
        w.reserve(4 + entries.len() * 8 + (data.len() * code_width as usize).div_ceil(8));
        w.write_bits(entries.len() as u64, 32);
        w.write_run(entries, 64);
        w.write_run(codes, code_width);
        *out = w.finish();
        Ok(CompressedBlockRef::new(self.id(), data.len(), out))
    }

    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        out.clear();
        if n == 0 {
            return Ok(());
        }
        let CodecScratch { u64s, u64s_b, .. } = scratch;
        let mut r = BitReader::new(&block.payload);
        let dict_len = r.read_bits(32)? as usize;
        if dict_len == 0 || dict_len > n {
            return Err(CodecError::Corrupt("dictionary size out of range"));
        }
        let entry_bits = u64s;
        entry_bits.clear();
        entry_bits.resize(dict_len, 0);
        r.read_run(entry_bits, 64)?;
        let code_width = bits_needed(dict_len as u64 - 1).max(1);
        let codes = u64s_b;
        codes.clear();
        codes.resize(n, 0);
        r.read_run(codes, code_width)?;
        out.reserve(n);
        for &code in codes.iter() {
            let v = entry_bits
                .get(code as usize)
                .copied()
                .map(f64::from_bits)
                .ok_or(CodecError::Corrupt("code beyond dictionary"))?;
            out.push(v);
        }
        Ok(())
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) {
        let block = Dict.compress(data).unwrap();
        let back = Dict.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_low_entropy() {
        let data: Vec<f64> = (0..1000).map(|i| [1.0, 2.5, -3.0][i % 3]).collect();
        roundtrip(&data);
        let block = Dict.compress(&data).unwrap();
        // 3 entries → 2-bit codes → ratio ≈ 2/64 + dict overhead.
        assert!(block.ratio() < 0.05, "ratio {}", block.ratio());
    }

    #[test]
    fn roundtrip_all_distinct() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 1.0001).collect();
        roundtrip(&data);
        let block = Dict.compress(&data).unwrap();
        // All distinct: dictionary alone equals the input — ratio above 1.
        assert!(block.ratio() > 1.0);
    }

    #[test]
    fn roundtrip_single_value() {
        roundtrip(&[std::f64::consts::PI]);
        roundtrip(&[0.0; 17]);
    }

    #[test]
    fn nan_patterns_preserved() {
        // Dict operates on bit patterns, so NaN payloads roundtrip exactly.
        let data = vec![f64::NAN, 1.0, f64::NAN, 1.0];
        let block = Dict.compress(&data).unwrap();
        let back = Dict.decompress(&block).unwrap();
        assert!(back[0].is_nan() && back[2].is_nan());
        assert_eq!(back[1], 1.0);
    }

    #[test]
    fn corrupt_dict_len_detected() {
        let block = Dict.compress(&[1.0, 2.0, 1.0]).unwrap();
        let mut bad = block.clone();
        // Overwrite dict length with a huge value.
        bad.payload[0..4].copy_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
        assert!(Dict.decompress(&bad).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Dict.compress(&[]).is_err());
    }
}
