//! MSB-first bit-level reader and writer used by the bit-oriented codecs
//! (Gorilla, Chimp, Sprintz, BUFF, dictionary, DEFLATE-style Huffman coding).
//!
//! # Wire-format invariant
//!
//! Bits are packed most-significant-bit first within each byte: the first
//! bit written lands in bit 7 of byte 0, the ninth in bit 7 of byte 1, and a
//! `write_bits(v, n)` emits the low `n` bits of `v` from most to least
//! significant. This layout matches the conventional Gorilla-style
//! time-series format, makes hex dumps readable, and is **frozen**: payloads
//! are persisted and shipped between devices, so any change to this module
//! must keep the produced bytes identical (see
//! `tests/golden_wire_format.rs`, which pins scripted sequences and every
//! codec's output against fixtures captured from the original
//! byte-at-a-time implementation).
//!
//! # Implementation
//!
//! Both directions work a word at a time rather than a byte at a time:
//!
//! * [`BitWriter`] stages bits in the high end of a `u64` accumulator and
//!   flushes eight bytes at once via `to_be_bytes` when the word fills, so a
//!   `write_bits` is one shift/or pair on the hot path instead of a per-byte
//!   loop.
//! * [`BitReader`] loads an eight-byte window with `u64::from_be_bytes` at
//!   the current cursor and extracts a field as `(word << offset) >>
//!   (64 - nbits)`; only reads within eight bytes of the end of the buffer
//!   fall back to assembling a partial window.
//!
//! # Bulk kernels
//!
//! Fixed-width runs — the inner loops of Sprintz delta lanes, BUFF
//! subcolumns, and dictionary codes — should use [`BitWriter::write_run`] /
//! [`BitReader::read_run`]. They produce bit-identical output to the
//! equivalent per-value `write_bits` / `read_bits` loop, keep the
//! accumulator in registers across the whole slice, and drop to a plain
//! byte-copy loop when both the cursor and the width are byte-aligned
//! (`width % 8 == 0`). Outside the byte-aligned fast path they dispatch
//! through [`crate::simd`]: hosts with AVX2 pack/unpack four fields per
//! step ([`pack_run_swar`] / [`unpack_run_swar`] are the portable tiers,
//! [`pack_run_scalar`] / [`unpack_run_scalar`] the bit-by-bit
//! references), and every tier's output is bit-identical.

/// Append-only bit writer over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Staging word; bits occupy the high end (MSB-first).
    acc: u64,
    /// Number of valid bits in `acc` (0..=63 between calls).
    nacc: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with capacity for roughly `bytes` bytes of output.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nacc: 0,
        }
    }

    /// Create a writer that reuses `buf`'s allocation: the buffer is
    /// cleared but its capacity is kept, so a recycled scratch vector
    /// makes the whole write allocation-free once it has grown to the
    /// working-set size.
    pub fn over(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self {
            buf,
            acc: 0,
            nacc: 0,
        }
    }

    /// Reserve room for at least `additional` more output bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    #[inline]
    fn flush_word(&mut self) {
        self.buf.extend_from_slice(&self.acc.to_be_bytes());
        self.acc = 0;
        self.nacc = 0;
    }

    /// Push every whole staged byte into `buf`. Leaves `nacc < 8`.
    fn spill_whole_bytes(&mut self) {
        let nbytes = (self.nacc / 8) as usize;
        if nbytes > 0 {
            self.buf
                .extend_from_slice(&self.acc.to_be_bytes()[..nbytes]);
            self.acc = if nbytes == 8 {
                0
            } else {
                self.acc << (nbytes * 8)
            };
            self.nacc -= (nbytes as u32) * 8;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc |= (bit as u64) << (63 - self.nacc);
        self.nacc += 1;
        if self.nacc == 64 {
            self.flush_word();
        }
    }

    /// Write the low `nbits` bits of `value`, most significant first.
    ///
    /// `nbits` may be 0 (a no-op) up to 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return;
        }
        // Mask the value to the requested width to tolerate dirty high bits.
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        if self.nacc + nbits <= 64 {
            self.acc |= value << (64 - self.nacc - nbits);
            self.nacc += nbits;
            if self.nacc == 64 {
                self.flush_word();
            }
        } else {
            // Split: the high part fills the staging word, the low `rem`
            // bits start the next one.
            let rem = self.nacc + nbits - 64;
            let acc = self.acc | (value >> rem);
            self.buf.extend_from_slice(&acc.to_be_bytes());
            self.acc = value << (64 - rem);
            self.nacc = rem;
        }
    }

    /// Write every value in `values` at the same fixed `width`.
    ///
    /// Bit-identical to calling [`write_bits`](Self::write_bits) once per
    /// value, but keeps the accumulator in registers across the run and
    /// degenerates to a byte-copy loop when the cursor and width are both
    /// byte-aligned.
    pub fn write_run(&mut self, values: &[u64], width: u32) {
        debug_assert!(width <= 64);
        if width == 0 || values.is_empty() {
            return;
        }
        self.buf
            .reserve((values.len() * width as usize).div_ceil(8) + 8);
        // Byte-copy fast path for whole-byte values at a byte-aligned
        // cursor. Only widths 8 and 64 take it: in-between widths (16..56)
        // pay more in short-slice copies than the accumulator path costs.
        if self.nacc.is_multiple_of(8) && (width == 8 || width == 64) {
            self.spill_whole_bytes();
            if width == 8 {
                self.buf.extend(values.iter().map(|&v| v as u8));
            } else {
                for &v in values {
                    self.buf.extend_from_slice(&v.to_be_bytes());
                }
            }
            return;
        }
        let (acc, nacc) =
            crate::simd::active().pack_run(&mut self.buf, self.acc, self.nacc, values, width);
        self.acc = acc;
        self.nacc = nacc;
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.nacc = (self.nacc + 7) & !7;
        self.spill_whole_bytes();
    }

    /// Write a full byte slice. Aligns to a byte boundary first.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.align_to_byte();
        self.buf.extend_from_slice(bytes);
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nacc as usize
    }

    /// Current output length in bytes, counting any partial byte.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + (self.nacc as usize).div_ceil(8)
    }

    /// Finish writing and return the packed bytes (zero-padded to a byte).
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.buf
    }
}

/// Error returned when a [`BitReader`] runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit reader exhausted")
    }
}

impl std::error::Error for OutOfBits {}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor from the start of `buf`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `buf` starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        if self.pos >= self.buf.len() * 8 {
            return Err(OutOfBits);
        }
        let byte = self.buf[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Extract `nbits` (1..=64) at the current cursor. Caller must have
    /// checked `remaining() >= nbits`.
    #[inline]
    fn extract_unchecked(&mut self, nbits: u32) -> u64 {
        let out = extract_at(self.buf, self.pos, nbits);
        self.pos += nbits as usize;
        out
    }

    /// Read `nbits` bits (0..=64), returning them in the low bits of the
    /// result, most significant first.
    #[inline]
    pub fn read_bits(&mut self, nbits: u32) -> Result<u64, OutOfBits> {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return Ok(0);
        }
        if self.remaining() < nbits as usize {
            return Err(OutOfBits);
        }
        Ok(self.extract_unchecked(nbits))
    }

    /// Fill `out` with consecutive values of the same fixed `width`.
    ///
    /// Bit-identical to calling [`read_bits`](Self::read_bits) once per
    /// slot, with one bounds check for the whole run and a byte-copy loop
    /// when the cursor and width are both byte-aligned. On `Err` the cursor
    /// is unchanged and `out` is unmodified.
    pub fn read_run(&mut self, out: &mut [u64], width: u32) -> Result<(), OutOfBits> {
        debug_assert!(width <= 64);
        if width == 0 {
            out.fill(0);
            return Ok(());
        }
        if self.remaining() < out.len() * width as usize {
            return Err(OutOfBits);
        }
        // Byte-copy fast path, mirroring `BitWriter::write_run`: only
        // widths 8 and 64 beat the windowed-extract path below.
        if self.pos.is_multiple_of(8) && (width == 8 || width == 64) {
            let mut idx = self.pos / 8;
            if width == 8 {
                for (slot, &b) in out.iter_mut().zip(&self.buf[idx..]) {
                    *slot = b as u64;
                }
                idx += out.len();
            } else {
                for slot in out.iter_mut() {
                    *slot = u64::from_be_bytes(self.buf[idx..idx + 8].try_into().unwrap());
                    idx += 8;
                }
            }
            self.pos = idx * 8;
            return Ok(());
        }
        self.pos = crate::simd::active().unpack_run(self.buf, self.pos, out, width);
        Ok(())
    }

    /// Skip forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let rem = self.pos % 8;
        if rem != 0 {
            self.pos += 8 - rem;
        }
    }

    /// Read `n` whole bytes after aligning to a byte boundary.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], OutOfBits> {
        self.align_to_byte();
        let start = self.pos / 8;
        if start + n > self.buf.len() {
            return Err(OutOfBits);
        }
        self.pos += n * 8;
        Ok(&self.buf[start..start + n])
    }
}

/// Extract `nbits` (1..=64) at absolute bit `pos` of `buf`, MSB-first.
/// Caller must guarantee `pos + nbits <= buf.len() * 8`.
#[inline]
pub(crate) fn extract_at(buf: &[u8], pos: usize, nbits: u32) -> u64 {
    let byte_idx = pos / 8;
    let offset = (pos % 8) as u32;
    if byte_idx + 8 <= buf.len() {
        let word = u64::from_be_bytes(buf[byte_idx..byte_idx + 8].try_into().unwrap());
        if offset + nbits <= 64 {
            (word << offset) >> (64 - nbits)
        } else {
            // Spill into the ninth byte: only possible when
            // offset + nbits > 64, i.e. nbits >= 58, so at most 7 low
            // bits come from the next byte.
            let lo_bits = offset + nbits - 64;
            let hi = (word << offset) >> offset;
            let next = buf[byte_idx + 8] as u64;
            (hi << lo_bits) | (next >> (8 - lo_bits))
        }
    } else {
        // Within eight bytes of the end: assemble the remaining bytes
        // into a partial window. The caller's bounds check guarantees
        // offset + nbits fits in it.
        let mut word = 0u64;
        for (i, &b) in buf[byte_idx..].iter().enumerate() {
            word |= (b as u64) << (56 - 8 * i);
        }
        (word << offset) >> (64 - nbits)
    }
}

/// Portable word-at-a-time run pack (the `Backend::Swar` tier of
/// [`crate::simd::Backend::pack_run`]): append each value's low `width`
/// bits to the `(acc, nacc)` staging word over `buf`, flushing eight
/// bytes at a time. Returns the new staging state.
pub(crate) fn pack_run_swar(
    buf: &mut Vec<u8>,
    acc: u64,
    nacc: u32,
    values: &[u64],
    width: u32,
) -> (u64, u32) {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let (mut acc, mut nacc) = (acc, nacc);
    for &raw in values {
        let v = raw & mask;
        if nacc + width <= 64 {
            acc |= v << (64 - nacc - width);
            nacc += width;
            if nacc == 64 {
                buf.extend_from_slice(&acc.to_be_bytes());
                acc = 0;
                nacc = 0;
            }
        } else {
            let rem = nacc + width - 64;
            buf.extend_from_slice(&(acc | (v >> rem)).to_be_bytes());
            acc = v << (64 - rem);
            nacc = rem;
        }
    }
    (acc, nacc)
}

/// Bit-by-bit reference run pack (the `Backend::Scalar` tier): one bit
/// staged per step, MSB of each field first. Differential baseline only.
pub(crate) fn pack_run_scalar(
    buf: &mut Vec<u8>,
    acc: u64,
    nacc: u32,
    values: &[u64],
    width: u32,
) -> (u64, u32) {
    let (mut acc, mut nacc) = (acc, nacc);
    for &v in values {
        for k in (0..width).rev() {
            acc |= ((v >> k) & 1) << (63 - nacc);
            nacc += 1;
            if nacc == 64 {
                buf.extend_from_slice(&acc.to_be_bytes());
                acc = 0;
                nacc = 0;
            }
        }
    }
    (acc, nacc)
}

/// Portable windowed run unpack (the `Backend::Swar` tier of
/// [`crate::simd::Backend::unpack_run`]): one [`extract_at`] per field.
/// Returns the advanced bit cursor. Caller guarantees the run fits.
pub(crate) fn unpack_run_swar(buf: &[u8], pos: usize, out: &mut [u64], width: u32) -> usize {
    let mut pos = pos;
    for slot in out.iter_mut() {
        *slot = extract_at(buf, pos, width);
        pos += width as usize;
    }
    pos
}

/// Bit-by-bit reference run unpack (the `Backend::Scalar` tier).
/// Differential baseline only.
pub(crate) fn unpack_run_scalar(buf: &[u8], pos: usize, out: &mut [u64], width: u32) -> usize {
    let mut pos = pos;
    for slot in out.iter_mut() {
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | ((buf[pos / 8] >> (7 - (pos % 8))) & 1) as u64;
            pos += 1;
        }
        *slot = v;
    }
    pos
}

/// Zigzag-encode a signed integer to an unsigned one, mapping
/// 0, -1, 1, -2, 2, ... to 0, 1, 2, 3, 4, ...
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Minimum number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_needed(v: u64) -> u32 {
    64 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0, 0);
        w.write_bits(u64::MAX, 64);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn dirty_high_bits_are_masked() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits should land
        w.write_bits(0b1010, 4);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1111_1010]);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1100_0000, 0xAB, 0xCD]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert_eq!(r.read_bytes(2).unwrap(), &[0xAB, 0xCD]);
    }

    #[test]
    fn out_of_bits_is_reported() {
        let bytes = [0u8; 1];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0);
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn bit_len_counts_partials() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn bits_needed_basics() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn write_run_matches_scalar_writes() {
        for width in 0..=64u32 {
            for lead in 0..8u32 {
                let values: Vec<u64> = (0..37)
                    .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .collect();
                let mut bulk = BitWriter::new();
                bulk.write_bits(0x2A, lead);
                bulk.write_run(&values, width);
                let mut scalar = BitWriter::new();
                scalar.write_bits(0x2A, lead);
                for &v in &values {
                    scalar.write_bits(v, width);
                }
                assert_eq!(bulk.finish(), scalar.finish(), "width {width} lead {lead}");
            }
        }
    }

    #[test]
    fn read_run_matches_scalar_reads() {
        for width in 0..=64u32 {
            for lead in 0..8u32 {
                let values: Vec<u64> = (0..37)
                    .map(|i| (i as u64).wrapping_mul(0xD134_2543_DE82_EF95))
                    .collect();
                let mut w = BitWriter::new();
                w.write_bits(0, lead);
                w.write_run(&values, width);
                let bytes = w.finish();

                let mut scalar = BitReader::new(&bytes);
                scalar.read_bits(lead).unwrap();
                let expected: Vec<u64> = (0..values.len())
                    .map(|_| scalar.read_bits(width).unwrap())
                    .collect();

                let mut bulk = BitReader::new(&bytes);
                bulk.read_bits(lead).unwrap();
                let mut got = vec![0u64; values.len()];
                bulk.read_run(&mut got, width).unwrap();
                assert_eq!(got, expected, "width {width} lead {lead}");
                assert_eq!(bulk.bit_pos(), scalar.bit_pos());
            }
        }
    }

    #[test]
    fn read_run_out_of_bits_leaves_cursor() {
        let bytes = [0xFFu8; 4];
        let mut r = BitReader::new(&bytes);
        r.read_bits(3).unwrap();
        let mut out = vec![0u64; 5];
        assert_eq!(r.read_run(&mut out, 7), Err(OutOfBits));
        assert_eq!(r.bit_pos(), 3);
        let mut out = vec![0u64; 4];
        r.read_run(&mut out, 7).unwrap();
        assert_eq!(out, vec![0x7F; 4]);
    }

    #[test]
    fn long_unaligned_stream_roundtrips() {
        // Cross many word boundaries with widths near the split threshold.
        let mut w = BitWriter::new();
        let widths = [63u32, 1, 64, 58, 7, 61, 2, 59, 64, 5];
        let mut expected = Vec::new();
        for (i, &width) in widths.iter().cycle().take(500).enumerate() {
            let v = (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let masked = if width == 64 {
                v
            } else {
                v & ((1 << width) - 1)
            };
            w.write_bits(v, width);
            expected.push((masked, width));
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, width) in expected {
            assert_eq!(r.read_bits(width).unwrap(), v);
        }
    }
}
