//! MSB-first bit-level reader and writer used by the bit-oriented codecs
//! (Gorilla, Chimp, Sprintz, BUFF, dictionary, DEFLATE-style Huffman coding).
//!
//! Bits are packed most-significant-bit first within each byte, so the first
//! bit written lands in bit 7 of byte 0. This matches the conventional layout
//! used by Gorilla-style time-series codecs and makes hex dumps readable.

/// Append-only bit writer over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `acc` (0..=7). Bits live in the high end.
    nacc: u32,
    acc: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with capacity for roughly `bytes` bytes of output.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            nacc: 0,
            acc: 0,
        }
    }

    /// Write a single bit (the low bit of `bit`).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc |= (bit as u8) << (7 - self.nacc);
        self.nacc += 1;
        if self.nacc == 8 {
            self.buf.push(self.acc);
            self.acc = 0;
            self.nacc = 0;
        }
    }

    /// Write the low `nbits` bits of `value`, most significant first.
    ///
    /// `nbits` may be 0 (a no-op) up to 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return;
        }
        let mut remaining = nbits;
        // Mask the value to the requested width to tolerate dirty high bits.
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        while remaining > 0 {
            let free = 8 - self.nacc;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            self.acc |= chunk << (free - take);
            self.nacc += take;
            remaining -= take;
            if self.nacc == 8 {
                self.buf.push(self.acc);
                self.acc = 0;
                self.nacc = 0;
            }
        }
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        if self.nacc > 0 {
            self.buf.push(self.acc);
            self.acc = 0;
            self.nacc = 0;
        }
    }

    /// Write a full byte slice. Aligns to a byte boundary first.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.align_to_byte();
        self.buf.extend_from_slice(bytes);
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nacc as usize
    }

    /// Current output length in bytes, counting any partial byte.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + usize::from(self.nacc > 0)
    }

    /// Finish writing and return the packed bytes (zero-padded to a byte).
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.buf
    }
}

/// Error returned when a [`BitReader`] runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit reader exhausted")
    }
}

impl std::error::Error for OutOfBits {}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor from the start of `buf`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `buf` starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        if self.pos >= self.buf.len() * 8 {
            return Err(OutOfBits);
        }
        let byte = self.buf[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Read `nbits` bits (0..=64), returning them in the low bits of the
    /// result, most significant first.
    #[inline]
    pub fn read_bits(&mut self, nbits: u32) -> Result<u64, OutOfBits> {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return Ok(0);
        }
        if self.remaining() < nbits as usize {
            return Err(OutOfBits);
        }
        let mut out: u64 = 0;
        let mut remaining = nbits;
        while remaining > 0 {
            let byte = self.buf[self.pos / 8];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let chunk = ((byte >> (avail - take)) & ((1u16 << take) - 1) as u8) as u64;
            out = (out << take) | chunk;
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(out)
    }

    /// Skip forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let rem = self.pos % 8;
        if rem != 0 {
            self.pos += 8 - rem;
        }
    }

    /// Read `n` whole bytes after aligning to a byte boundary.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], OutOfBits> {
        self.align_to_byte();
        let start = self.pos / 8;
        if start + n > self.buf.len() {
            return Err(OutOfBits);
        }
        self.pos += n * 8;
        Ok(&self.buf[start..start + n])
    }
}

/// Zigzag-encode a signed integer to an unsigned one, mapping
/// 0, -1, 1, -2, 2, ... to 0, 1, 2, 3, 4, ...
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Minimum number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_needed(v: u64) -> u32 {
    64 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0, 0);
        w.write_bits(u64::MAX, 64);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn dirty_high_bits_are_masked() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits should land
        w.write_bits(0b1010, 4);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1111_1010]);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1100_0000, 0xAB, 0xCD]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert_eq!(r.read_bytes(2).unwrap(), &[0xAB, 0xCD]);
    }

    #[test]
    fn out_of_bits_is_reported() {
        let bytes = [0u8; 1];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0);
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn bit_len_counts_partials() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn bits_needed_basics() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }
}
