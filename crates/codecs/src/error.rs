//! Error type shared by every codec.

use crate::block::CodecId;

/// Errors produced while compressing, decompressing or recoding a segment.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The input segment was empty; codecs require at least one point.
    EmptyInput,
    /// The payload was truncated or structurally invalid.
    Corrupt(&'static str),
    /// The block was produced by a different codec than the one asked to
    /// decode it.
    WrongCodec {
        /// The codec asked to decode the block.
        expected: CodecId,
        /// The codec recorded in the block header.
        found: CodecId,
    },
    /// A lossy codec cannot reach the requested target compression ratio.
    /// Carries the smallest ratio the codec can reach on this segment.
    RatioUnreachable {
        /// The ratio the caller asked for.
        requested: f64,
        /// The smallest ratio the codec can reach on this segment.
        minimum: f64,
    },
    /// A value cannot be represented by the codec (e.g. non-finite floats or
    /// fixed-point overflow in Sprintz/BUFF).
    UnsupportedValue(&'static str),
    /// Recoding (virtual decompression) is not supported between the given
    /// source block and the requested destination.
    RecodeUnsupported(&'static str),
    /// The requested parameter is out of the codec's accepted range.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::EmptyInput => write!(f, "input segment is empty"),
            CodecError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            CodecError::WrongCodec { expected, found } => {
                write!(f, "wrong codec: expected {expected:?}, found {found:?}")
            }
            CodecError::RatioUnreachable { requested, minimum } => write!(
                f,
                "target ratio {requested:.4} unreachable (minimum {minimum:.4})"
            ),
            CodecError::UnsupportedValue(what) => write!(f, "unsupported value: {what}"),
            CodecError::RecodeUnsupported(what) => write!(f, "recode unsupported: {what}"),
            CodecError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<crate::bitio::OutOfBits> for CodecError {
    fn from(_: crate::bitio::OutOfBits) -> Self {
        CodecError::Corrupt("unexpected end of bit stream")
    }
}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, CodecError>;
