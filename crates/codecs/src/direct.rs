//! Compressed-domain aggregation: evaluate SUM/MAX/MIN/AVG directly on an
//! encoded block, without materializing the reconstruction.
//!
//! This is the "execute queries over the compressed data" capability of
//! §IV-C (and the in-situ execution lineage the paper cites from Abadi's
//! decision tree and CodecDB). Every operator returns *exactly* the value
//! the aggregate would produce on the decompressed block (up to float
//! summation order), so callers can use it as a drop-in fast path;
//! codecs without a direct path return `Ok(None)` and the caller falls
//! back to decompress-then-aggregate.

use crate::block::{CodecId, CompressedBlock};
use crate::buff::scan_stats;
use crate::error::Result;
use crate::lttb::Lttb;
use crate::paa::Paa;
use crate::pla::decode_knots;
use crate::registry::CodecRegistry;
use crate::rrd::RrdSample;
use crate::scratch::CodecScratch;

/// The aggregation operators supported in the compressed domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of all reconstructed points.
    Sum,
    /// Maximum reconstructed point.
    Max,
    /// Minimum reconstructed point.
    Min,
    /// Arithmetic mean of the reconstruction.
    Avg,
}

/// Sum of the piecewise-linear reconstruction described by `(index, value)`
/// knots over `n` integer positions (the PLA/LTTB decode semantics:
/// flat extension outside the knot range, linear interpolation inside).
fn linear_knots_sum(n: usize, knots: &[(u32, f32)]) -> f64 {
    if knots.is_empty() {
        return 0.0;
    }
    let first = knots[0];
    let last = knots[knots.len() - 1];
    // Points strictly before the first knot, at the first knot's value.
    let mut sum = first.0 as f64 * first.1 as f64;
    // Each linear piece contributes an arithmetic series including both
    // endpoints; interior knots are shared, so subtract them once.
    for w in knots.windows(2) {
        let (a_idx, a_val) = (w[0].0 as f64, w[0].1 as f64);
        let (b_idx, b_val) = (w[1].0 as f64, w[1].1 as f64);
        let len = b_idx - a_idx;
        sum += (len + 1.0) * (a_val + b_val) / 2.0;
    }
    for k in &knots[1..knots.len().saturating_sub(1)] {
        sum -= k.1 as f64;
    }
    // Points strictly after the last knot, at the last knot's value.
    sum += (n as f64 - 1.0 - last.0 as f64) * last.1 as f64;
    sum
}

fn extremum_of_knots(knots: &[(u32, f32)], max: bool) -> f64 {
    // Linear interpolation attains its extrema at knots.
    let it = knots.iter().map(|&(_, v)| v as f64);
    if max {
        it.fold(f64::NEG_INFINITY, f64::max)
    } else {
        it.fold(f64::INFINITY, f64::min)
    }
}

/// Evaluate `op` directly on a compressed block.
///
/// Returns `Ok(Some(value))` when the codec supports the operator in the
/// compressed domain, `Ok(None)` when it does not (fall back to
/// decompressing), and `Err` on corrupt payloads.
pub fn direct_agg(block: &CompressedBlock, op: AggOp) -> Result<Option<f64>> {
    let n = block.n_points as usize;
    if n == 0 {
        return Ok(Some(0.0));
    }
    let value = match block.codec {
        CodecId::Paa => {
            let (window, means) = Paa::parse(block)?;
            match op {
                AggOp::Sum | AggOp::Avg => {
                    let mut sum = 0.0;
                    for (w_idx, &mean) in means.iter().enumerate() {
                        let count = window.min(n - w_idx * window);
                        sum += mean * count as f64;
                    }
                    if op == AggOp::Avg {
                        sum / n as f64
                    } else {
                        sum
                    }
                }
                AggOp::Max => means.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                AggOp::Min => means.iter().cloned().fold(f64::INFINITY, f64::min),
            }
        }
        CodecId::RrdSample => {
            let (bucket, samples) = RrdSample::parse(block)?;
            match op {
                AggOp::Sum | AggOp::Avg => {
                    let mut sum = 0.0;
                    for (b_idx, &s) in samples.iter().enumerate() {
                        let count = bucket.min(n - b_idx * bucket);
                        sum += s * count as f64;
                    }
                    if op == AggOp::Avg {
                        sum / n as f64
                    } else {
                        sum
                    }
                }
                AggOp::Max => samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                AggOp::Min => samples.iter().cloned().fold(f64::INFINITY, f64::min),
            }
        }
        CodecId::Fft => {
            // The f64 DC bin carries the exact sum of the reconstruction.
            if block.payload.len() < 8 {
                return Err(crate::error::CodecError::Corrupt("fft payload size"));
            }
            let dc = f64::from_le_bytes(block.payload[..8].try_into().expect("8 bytes"));
            match op {
                AggOp::Sum => dc,
                AggOp::Avg => dc / n as f64,
                // Extrema need the full inverse transform.
                AggOp::Max | AggOp::Min => return Ok(None),
            }
        }
        CodecId::Pla => {
            let knots = decode_knots(block)?;
            match op {
                AggOp::Sum => linear_knots_sum(n, &knots),
                AggOp::Avg => linear_knots_sum(n, &knots) / n as f64,
                AggOp::Max => extremum_of_knots(&knots, true),
                AggOp::Min => extremum_of_knots(&knots, false),
            }
        }
        CodecId::Lttb => {
            let pairs = Lttb::parse(block)?;
            match op {
                AggOp::Sum => linear_knots_sum(n, &pairs),
                AggOp::Avg => linear_knots_sum(n, &pairs) / n as f64,
                AggOp::Max => extremum_of_knots(&pairs, true),
                AggOp::Min => extremum_of_knots(&pairs, false),
            }
        }
        CodecId::Buff | CodecId::BuffLossy => {
            let (min, max, sum) = scan_stats(block)?;
            match op {
                AggOp::Sum => sum,
                AggOp::Avg => sum / n as f64,
                AggOp::Max => max,
                AggOp::Min => min,
            }
        }
        _ => return Ok(None),
    };
    Ok(Some(value))
}

/// Convenience wrapper that falls back to decompress-then-aggregate for
/// codecs without a direct path.
pub fn agg_with_fallback(reg: &CodecRegistry, block: &CompressedBlock, op: AggOp) -> Result<f64> {
    agg_with_scratch(reg, block, op, &mut CodecScratch::new(), &mut Vec::new())
}

/// [`agg_with_fallback`] with caller-owned buffers: when the codec has no
/// direct path the decompression runs through [`CodecRegistry::decompress_into`]
/// so repeated queries reuse `scratch`/`buf` instead of allocating.
pub fn agg_with_scratch(
    reg: &CodecRegistry,
    block: &CompressedBlock,
    op: AggOp,
    scratch: &mut CodecScratch,
    buf: &mut Vec<f64>,
) -> Result<f64> {
    if let Some(v) = direct_agg(block, op)? {
        return Ok(v);
    }
    reg.decompress_into(block, scratch, buf)?;
    Ok(match op {
        AggOp::Sum => buf.iter().sum(),
        AggOp::Avg => buf.iter().sum::<f64>() / buf.len().max(1) as f64,
        AggOp::Max => buf.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        AggOp::Min => buf.iter().cloned().fold(f64::INFINITY, f64::min),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::round_to_precision;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| round_to_precision((i as f64 * 0.0137).sin() * 5.0 - 0.4, 4))
            .collect()
    }

    fn reference(data: &[f64], op: AggOp) -> f64 {
        match op {
            AggOp::Sum => data.iter().sum(),
            AggOp::Avg => data.iter().sum::<f64>() / data.len() as f64,
            AggOp::Max => data.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            AggOp::Min => data.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }

    const OPS: [AggOp; 4] = [AggOp::Sum, AggOp::Max, AggOp::Min, AggOp::Avg];

    #[test]
    fn direct_matches_decompressed_for_every_codec() {
        let reg = CodecRegistry::new(4);
        let data = sample(777);
        let mut checked = 0;
        for id in CodecId::ALL {
            let block = match reg.get_lossy(id) {
                Some(l) => l.compress_to_ratio(&data, 0.3).unwrap(),
                None => match reg.get(id).compress(&data) {
                    Ok(b) => b,
                    Err(_) => continue,
                },
            };
            let reconstructed = reg.decompress(&block).unwrap();
            for op in OPS {
                if let Some(direct) = direct_agg(&block, op).unwrap() {
                    let expected = reference(&reconstructed, op);
                    let tol = expected.abs().max(1.0) * 1e-9;
                    assert!(
                        (direct - expected).abs() <= tol,
                        "{id} {op:?}: direct {direct} vs decompressed {expected}"
                    );
                    checked += 1;
                }
            }
        }
        // PAA, RRD, PLA, LTTB, BUFF, BUFF-lossy support all 4; FFT 2.
        assert!(checked >= 22, "only {checked} direct paths exercised");
    }

    #[test]
    fn fft_extrema_fall_back() {
        let reg = CodecRegistry::new(4);
        let data = sample(256);
        let block = reg
            .get_lossy(CodecId::Fft)
            .unwrap()
            .compress_to_ratio(&data, 0.2)
            .unwrap();
        assert!(direct_agg(&block, AggOp::Max).unwrap().is_none());
        assert!(direct_agg(&block, AggOp::Sum).unwrap().is_some());
        // The fallback wrapper still answers.
        let v = agg_with_fallback(&reg, &block, AggOp::Max).unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn byte_codecs_have_no_direct_path() {
        let reg = CodecRegistry::new(4);
        let data = sample(64);
        let block = reg.get(CodecId::Gzip).compress(&data).unwrap();
        assert_eq!(direct_agg(&block, AggOp::Sum).unwrap(), None);
        let via_fallback = agg_with_fallback(&reg, &block, AggOp::Sum).unwrap();
        assert!((via_fallback - reference(&data, AggOp::Sum)).abs() < 1e-9);
    }

    #[test]
    fn empty_block_sums_to_zero() {
        let block = CompressedBlock::new(CodecId::Paa, 0, vec![]);
        assert_eq!(direct_agg(&block, AggOp::Sum).unwrap(), Some(0.0));
    }

    #[test]
    fn linear_sum_handles_partial_coverage() {
        // Knots covering only the middle: flat extensions on both sides.
        let knots = vec![(2u32, 1.0f32), (4, 3.0)];
        // Reconstruction: [1,1,1,2,3,3,3] for n=7.
        assert!((linear_knots_sum(7, &knots) - 14.0).abs() < 1e-9);
    }
}
