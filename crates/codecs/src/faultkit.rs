//! Deterministic fault injection for compressed payloads and on-disk
//! files.
//!
//! The decode-fuzz harness (`tests/decode_fuzz.rs`) drives every registered
//! codec's decoder with corrupted variants of known-good payloads. The
//! mutations here model the on-device fault classes AdaEdge's best-effort
//! story cares about: single/multi bit flips (bit rot, bus glitches),
//! truncation (torn writes, partial flushes) and extension (appended
//! garbage, misframed reads). All randomness flows through a caller-seeded
//! RNG, so every failure reproduces from its case number alone.
//!
//! The `file_*` primitives apply the same fault classes to files on disk
//! — the power-loss and bit-rot model every on-disk format test (persist,
//! posterior archive, segment spool) shares: torn tail writes, truncation
//! at an exact offset, in-place bit flips within a byte range, and frame
//! duplication (a replayed write).

use rand::Rng;
use std::io;
use std::ops::Range;
use std::path::Path;

/// The fault classes [`mutate`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// One to four random bits flipped in place.
    BitFlip,
    /// Payload cut short at a random point (possibly to zero bytes).
    Truncate,
    /// One to sixteen random bytes appended.
    Extend,
}

/// Flip 1..=4 random bits of `payload` in place. No-op on an empty payload.
pub fn bit_flip<R: Rng>(payload: &mut [u8], rng: &mut R) {
    if payload.is_empty() {
        return;
    }
    let flips = rng.gen_range(1..=4usize);
    for _ in 0..flips {
        let byte = rng.gen_range(0..payload.len());
        let bit = rng.gen_range(0..8u32);
        if let Some(b) = payload.get_mut(byte) {
            *b ^= 1 << bit;
        }
    }
}

/// Flip 1..=`max_flips` random bits of `payload` in place — the
/// configurable-burst variant of [`bit_flip`] for wire-frame corruption,
/// where a noisy radio can smear many bits across one frame. No-op on an
/// empty payload or `max_flips == 0`.
pub fn bit_flip_n<R: Rng>(payload: &mut [u8], max_flips: usize, rng: &mut R) {
    if payload.is_empty() || max_flips == 0 {
        return;
    }
    let flips = rng.gen_range(1..=max_flips);
    for _ in 0..flips {
        let byte = rng.gen_range(0..payload.len());
        let bit = rng.gen_range(0..8u32);
        if let Some(b) = payload.get_mut(byte) {
            *b ^= 1 << bit;
        }
    }
}

/// Truncate `payload` to a random strictly-shorter length (possibly empty).
/// No-op on an empty payload.
pub fn truncate<R: Rng>(payload: &mut Vec<u8>, rng: &mut R) {
    if payload.is_empty() {
        return;
    }
    let keep = rng.gen_range(0..payload.len());
    payload.truncate(keep);
}

/// Append 1..=16 random bytes to `payload`.
pub fn extend<R: Rng>(payload: &mut Vec<u8>, rng: &mut R) {
    let extra = rng.gen_range(1..=16usize);
    for _ in 0..extra {
        payload.push(rng.gen::<u8>());
    }
}

/// Apply one randomly chosen fault class to `payload` (bit flips weighted
/// highest — they exercise the deepest decode paths) and report which one
/// was injected.
pub fn mutate<R: Rng>(payload: &mut Vec<u8>, rng: &mut R) -> Fault {
    match rng.gen_range(0..4u32) {
        0 | 1 => {
            bit_flip(payload, rng);
            Fault::BitFlip
        }
        2 => {
            truncate(payload, rng);
            Fault::Truncate
        }
        _ => {
            extend(payload, rng);
            Fault::Extend
        }
    }
}

// --- file-level fault primitives (on-disk format fault suites) ---

/// Truncate the file at `path` to exactly `offset` bytes (no-op when the
/// file is already at or below `offset`). Models a crash captured at a
/// precise write boundary — the deterministic workhorse of the power-loss
/// torture suites.
pub fn file_truncate_at(path: &Path, offset: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    if f.metadata()?.len() > offset {
        f.set_len(offset)?;
        f.sync_data()?;
    }
    Ok(())
}

/// Tear the tail off the file at `path`: truncate 1..=`max_tear` bytes
/// from the end (never below zero length). Models a torn tail write —
/// power loss mid-`write(2)`, where only a prefix of the final write
/// reached the platter. Returns the new length. No-op on an empty file.
pub fn file_torn_tail<R: Rng>(path: &Path, max_tear: u64, rng: &mut R) -> io::Result<u64> {
    let len = std::fs::metadata(path)?.len();
    if len == 0 || max_tear == 0 {
        return Ok(len);
    }
    let tear = rng.gen_range(1..=max_tear.min(len));
    let new_len = len - tear;
    file_truncate_at(path, new_len)?;
    Ok(new_len)
}

/// Flip 1..=4 random bits of the file at `path`, restricted to byte
/// offsets in `range` (clamped to the file length). Models media bit rot
/// localized to a region — e.g. inside one segment frame. No-op when the
/// clamped range is empty.
pub fn file_bit_flip_in<R: Rng>(path: &Path, range: Range<u64>, rng: &mut R) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let lo = (range.start as usize).min(bytes.len());
    let hi = (range.end as usize).min(bytes.len());
    if lo >= hi {
        return Ok(());
    }
    let flips = rng.gen_range(1..=4usize);
    for _ in 0..flips {
        let byte = rng.gen_range(lo..hi);
        let bit = rng.gen_range(0..8u32);
        if let Some(b) = bytes.get_mut(byte) {
            *b ^= 1 << bit;
        }
    }
    std::fs::write(path, &bytes)?;
    Ok(())
}

/// Duplicate the byte range `start..start + len` of the file at `path`,
/// splicing the copy in immediately after the original (everything behind
/// it shifts back). Models a replayed/duplicated frame write — the
/// at-least-once hazard an ACK-ledger protocol must dedup. The range is
/// clamped to the file; a fully out-of-range request is a no-op.
pub fn file_duplicate_range(path: &Path, start: u64, len: u64) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let lo = (start as usize).min(bytes.len());
    let hi = lo.saturating_add(len as usize).min(bytes.len());
    if lo >= hi {
        return Ok(());
    }
    let dup: Vec<u8> = bytes[lo..hi].to_vec();
    bytes.splice(hi..hi, dup);
    std::fs::write(path, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base: Vec<u8> = (0..64u8).collect();
        for seed in 0..50u64 {
            let mut a = base.clone();
            let mut b = base.clone();
            let fa = mutate(&mut a, &mut SmallRng::seed_from_u64(seed));
            let fb = mutate(&mut b, &mut SmallRng::seed_from_u64(seed));
            assert_eq!(fa, fb);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn bit_flip_changes_payload_and_keeps_length() {
        let base: Vec<u8> = vec![0xAB; 32];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = base.clone();
        bit_flip(&mut p, &mut rng);
        assert_eq!(p.len(), base.len());
        assert_ne!(p, base);
    }

    #[test]
    fn bit_flip_n_is_bounded_and_deterministic() {
        let base: Vec<u8> = (0..32u8).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        bit_flip_n(&mut a, 16, &mut SmallRng::seed_from_u64(13));
        bit_flip_n(&mut b, 16, &mut SmallRng::seed_from_u64(13));
        assert_eq!(a, b, "deterministic per seed");
        assert_ne!(a, base);
        assert_eq!(a.len(), base.len());
        // Flipped bit count never exceeds the burst bound.
        let flipped: u32 = a.iter().zip(&base).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!((1..=16).contains(&flipped), "{flipped} bits flipped");
        // Degenerate inputs are safe no-ops.
        let mut empty: Vec<u8> = Vec::new();
        bit_flip_n(&mut empty, 4, &mut SmallRng::seed_from_u64(1));
        let mut zero = vec![5u8; 4];
        bit_flip_n(&mut zero, 0, &mut SmallRng::seed_from_u64(1));
        assert_eq!(zero, vec![5u8; 4]);
    }

    #[test]
    fn truncate_shrinks_and_extend_grows() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut p = vec![1u8; 100];
        truncate(&mut p, &mut rng);
        assert!(p.len() < 100);
        let before = p.len();
        extend(&mut p, &mut rng);
        assert!(p.len() > before && p.len() <= before + 16);
    }

    #[test]
    fn empty_payload_is_safe() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p: Vec<u8> = Vec::new();
        bit_flip(&mut p, &mut rng);
        truncate(&mut p, &mut rng);
        assert!(p.is_empty());
        extend(&mut p, &mut rng);
        assert!(!p.is_empty());
    }

    fn tmpfile(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("adaedge-faultkit-{name}-{}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn file_truncate_at_cuts_and_is_idempotent() {
        let p = tmpfile("trunc", &[1u8; 100]);
        file_truncate_at(&p, 40).unwrap();
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 40);
        file_truncate_at(&p, 80).unwrap(); // never grows
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 40);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn file_torn_tail_shrinks_within_bound() {
        let p = tmpfile("torn", &[9u8; 64]);
        let mut rng = SmallRng::seed_from_u64(11);
        let new_len = file_torn_tail(&p, 16, &mut rng).unwrap();
        assert!((48..64).contains(&new_len));
        assert_eq!(std::fs::metadata(&p).unwrap().len(), new_len);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn file_bit_flip_in_stays_inside_range() {
        let base = vec![0u8; 128];
        let p = tmpfile("flip", &base);
        let mut rng = SmallRng::seed_from_u64(5);
        file_bit_flip_in(&p, 32..64, &mut rng).unwrap();
        let mutated = std::fs::read(&p).unwrap();
        assert_eq!(mutated.len(), 128);
        assert_ne!(mutated, base);
        assert_eq!(&mutated[..32], &base[..32]);
        assert_eq!(&mutated[64..], &base[64..]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn file_duplicate_range_splices_a_copy() {
        let p = tmpfile("dup", &[0, 1, 2, 3, 4, 5, 6, 7]);
        file_duplicate_range(&p, 2, 3).unwrap();
        assert_eq!(
            std::fs::read(&p).unwrap(),
            [0, 1, 2, 3, 4, 2, 3, 4, 5, 6, 7]
        );
        // Out-of-range duplication is a no-op.
        file_duplicate_range(&p, 100, 5).unwrap();
        assert_eq!(std::fs::read(&p).unwrap().len(), 11);
        std::fs::remove_file(&p).ok();
    }
}
