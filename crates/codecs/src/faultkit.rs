//! Deterministic fault injection for compressed payloads.
//!
//! The decode-fuzz harness (`tests/decode_fuzz.rs`) drives every registered
//! codec's decoder with corrupted variants of known-good payloads. The
//! mutations here model the on-device fault classes AdaEdge's best-effort
//! story cares about: single/multi bit flips (bit rot, bus glitches),
//! truncation (torn writes, partial flushes) and extension (appended
//! garbage, misframed reads). All randomness flows through a caller-seeded
//! RNG, so every failure reproduces from its case number alone.

use rand::Rng;

/// The fault classes [`mutate`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// One to four random bits flipped in place.
    BitFlip,
    /// Payload cut short at a random point (possibly to zero bytes).
    Truncate,
    /// One to sixteen random bytes appended.
    Extend,
}

/// Flip 1..=4 random bits of `payload` in place. No-op on an empty payload.
pub fn bit_flip<R: Rng>(payload: &mut [u8], rng: &mut R) {
    if payload.is_empty() {
        return;
    }
    let flips = rng.gen_range(1..=4usize);
    for _ in 0..flips {
        let byte = rng.gen_range(0..payload.len());
        let bit = rng.gen_range(0..8u32);
        if let Some(b) = payload.get_mut(byte) {
            *b ^= 1 << bit;
        }
    }
}

/// Truncate `payload` to a random strictly-shorter length (possibly empty).
/// No-op on an empty payload.
pub fn truncate<R: Rng>(payload: &mut Vec<u8>, rng: &mut R) {
    if payload.is_empty() {
        return;
    }
    let keep = rng.gen_range(0..payload.len());
    payload.truncate(keep);
}

/// Append 1..=16 random bytes to `payload`.
pub fn extend<R: Rng>(payload: &mut Vec<u8>, rng: &mut R) {
    let extra = rng.gen_range(1..=16usize);
    for _ in 0..extra {
        payload.push(rng.gen::<u8>());
    }
}

/// Apply one randomly chosen fault class to `payload` (bit flips weighted
/// highest — they exercise the deepest decode paths) and report which one
/// was injected.
pub fn mutate<R: Rng>(payload: &mut Vec<u8>, rng: &mut R) -> Fault {
    match rng.gen_range(0..4u32) {
        0 | 1 => {
            bit_flip(payload, rng);
            Fault::BitFlip
        }
        2 => {
            truncate(payload, rng);
            Fault::Truncate
        }
        _ => {
            extend(payload, rng);
            Fault::Extend
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base: Vec<u8> = (0..64u8).collect();
        for seed in 0..50u64 {
            let mut a = base.clone();
            let mut b = base.clone();
            let fa = mutate(&mut a, &mut SmallRng::seed_from_u64(seed));
            let fb = mutate(&mut b, &mut SmallRng::seed_from_u64(seed));
            assert_eq!(fa, fb);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn bit_flip_changes_payload_and_keeps_length() {
        let base: Vec<u8> = vec![0xAB; 32];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = base.clone();
        bit_flip(&mut p, &mut rng);
        assert_eq!(p.len(), base.len());
        assert_ne!(p, base);
    }

    #[test]
    fn truncate_shrinks_and_extend_grows() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut p = vec![1u8; 100];
        truncate(&mut p, &mut rng);
        assert!(p.len() < 100);
        let before = p.len();
        extend(&mut p, &mut rng);
        assert!(p.len() > before && p.len() <= before + 16);
    }

    #[test]
    fn empty_payload_is_safe() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p: Vec<u8> = Vec::new();
        bit_flip(&mut p, &mut rng);
        truncate(&mut p, &mut rng);
        assert!(p.is_empty());
        extend(&mut p, &mut rng);
        assert!(!p.is_empty());
    }
}
