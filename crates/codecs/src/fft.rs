//! Truncated Fourier representation (Faloutsos et al., SIGMOD 1994).
//!
//! The segment is transformed with a full complex FFT (radix-2 for
//! power-of-two lengths, Bluestein's chirp-z otherwise — both implemented
//! here) and only the lowest `k` frequency bins are kept, discarding the
//! high-frequency components as the paper describes. The DC bin is stored
//! at full `f64` precision so SUM/AVG queries stay nearly exact (Figure 8);
//! the remaining bins are stored as `f32` pairs.
//!
//! Payload: `dc: f64`, then `(re: f32, im: f32)` for bins `1..k`.
//! Recoding truncates trailing bins — pure payload surgery (§IV-E).

use crate::block::{CodecId, CompressedBlock, POINT_BYTES};
use crate::error::{CodecError, Result};
use crate::traits::{budget_bytes, check_lossy_args, Codec, CodecKind, LossyCodec};

const BIN_BYTES: usize = 8;

/// Minimal complex number for the FFT kernels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// e^{iθ}.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    fn mul(self, o: Self) -> Self {
        Self {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Self) -> Self {
        Self {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Self) -> Self {
        Self {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT. `buf.len()` must be a power
/// of two. Forward transform, no normalization.
fn fft_pow2(buf: &mut [Complex]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2].mul(w);
                buf[start + k] = u.add(v);
                buf[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length via Bluestein's algorithm.
fn fft_bluestein(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let m = (2 * n - 1).next_power_of_two();
    // chirp[k] = e^{-iπk²/n}; k² taken mod 2n to stay accurate for large k.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let kk = (k as u64 * k as u64) % (2 * n as u64);
            Complex::cis(-std::f64::consts::PI * kk as f64 / n as f64)
        })
        .collect();
    let mut a = vec![Complex::default(); m];
    for k in 0..n {
        a[k] = input[k].mul(chirp[k]);
    }
    let mut b = vec![Complex::default(); m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for k in 0..m {
        a[k] = a[k].mul(b[k]);
    }
    // Inverse FFT of size m via conjugation.
    for v in a.iter_mut() {
        *v = v.conj();
    }
    fft_pow2(&mut a);
    let scale = 1.0 / m as f64;
    (0..n)
        .map(|k| a[k].conj().scale(scale).mul(chirp[k]))
        .collect()
}

/// Forward DFT (no normalization) of arbitrary length.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    if input.len().is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf);
        buf
    } else {
        fft_bluestein(input)
    }
}

/// Inverse DFT with 1/n normalization.
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    idft_inplace(&mut buf);
    buf
}

/// [`idft`] in place: conjugate, forward-transform, conjugate-and-scale,
/// all within `buf`. Power-of-two lengths run entirely in the caller's
/// buffer (zero temporaries, vs the three per-call vectors the allocating
/// form used to build); Bluestein lengths still allocate their convolution
/// scratch internally but skip the conjugate/scale copies.
pub fn idft_inplace(buf: &mut [Complex]) {
    let n = buf.len();
    if n == 0 {
        return;
    }
    for c in buf.iter_mut() {
        *c = c.conj();
    }
    if n.is_power_of_two() {
        fft_pow2(buf);
    } else {
        let fwd = fft_bluestein(buf);
        buf.copy_from_slice(&fwd);
    }
    let scale = 1.0 / n as f64;
    for c in buf.iter_mut() {
        *c = c.conj().scale(scale);
    }
}

/// FFT codec. Stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fft;

impl Fft {
    fn bins_for(n: usize, ratio: f64) -> usize {
        let max_bins = (n / 2).max(1);
        (budget_bytes(n, ratio) / BIN_BYTES).min(max_bins)
    }

    fn encode_bins(n: usize, spectrum: &[Complex], k: usize) -> CompressedBlock {
        let mut payload = Vec::with_capacity(k * BIN_BYTES);
        payload.extend_from_slice(&spectrum[0].re.to_le_bytes());
        for bin in spectrum.iter().take(k).skip(1) {
            payload.extend_from_slice(&(bin.re as f32).to_le_bytes());
            payload.extend_from_slice(&(bin.im as f32).to_le_bytes());
        }
        CompressedBlock::new(CodecId::Fft, n, payload)
    }
}

impl Codec for Fft {
    fn id(&self) -> CodecId {
        CodecId::Fft
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossy
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        self.compress_to_ratio(data, 0.25)
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        let payload = &block.payload;
        if n == 0 {
            return Err(CodecError::Corrupt("fft empty block with payload"));
        }
        if payload.len() < 8 || !payload.len().is_multiple_of(BIN_BYTES) {
            return Err(CodecError::Corrupt("fft payload size"));
        }
        let k = payload.len() / BIN_BYTES;
        if k > n / 2 + 1 {
            return Err(CodecError::Corrupt("fft too many bins"));
        }
        let mut spectrum = vec![Complex::default(); n];
        spectrum[0] = Complex::new(
            f64::from_le_bytes(payload[..8].try_into().expect("8 bytes")),
            0.0,
        );
        for (j, c) in payload[8..].chunks_exact(8).enumerate() {
            let bin = j + 1;
            let re = f32::from_le_bytes(c[..4].try_into().expect("4 bytes")) as f64;
            let im = f32::from_le_bytes(c[4..].try_into().expect("4 bytes")) as f64;
            spectrum[bin] = Complex::new(re, im);
            spectrum[n - bin] = Complex::new(re, -im);
        }
        // In-place inverse transform: the spectrum buffer becomes the
        // time-domain signal, so decode costs one allocation, not four.
        idft_inplace(&mut spectrum);
        Ok(spectrum.into_iter().map(|c| c.re).collect())
    }
}

impl LossyCodec for Fft {
    fn compress_to_ratio(&self, data: &[f64], ratio: f64) -> Result<CompressedBlock> {
        check_lossy_args(data.len(), ratio)?;
        let n = data.len();
        let k = Self::bins_for(n, ratio);
        if k == 0 || budget_bytes(n, ratio) < BIN_BYTES {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        for v in data {
            if !v.is_finite() {
                return Err(CodecError::UnsupportedValue("non-finite float"));
            }
        }
        let input: Vec<Complex> = data.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let spectrum = dft(&input);
        Ok(Self::encode_bins(n, &spectrum, k))
    }

    fn min_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        BIN_BYTES as f64 / (n * POINT_BYTES) as f64
    }

    fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        check_lossy_args(n, ratio)?;
        if block.ratio() <= ratio {
            return Err(CodecError::RecodeUnsupported(
                "block already at or below target ratio",
            ));
        }
        let k_new = Self::bins_for(n, ratio);
        if k_new == 0 {
            return Err(CodecError::RatioUnreachable {
                requested: ratio,
                minimum: self.min_ratio(n),
            });
        }
        let k_cur = block.payload.len() / BIN_BYTES;
        if k_new >= k_cur {
            return Err(CodecError::RecodeUnsupported(
                "cannot shrink further at this granularity",
            ));
        }
        // Drop the highest kept frequencies: truncate the payload.
        let mut payload = block.payload.clone();
        payload.truncate(k_new * BIN_BYTES);
        Ok(CompressedBlock::new(CodecId::Fft, n, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn dft_matches_naive_small() {
        for n in [1usize, 2, 3, 5, 8, 12, 16, 17] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let fast = dft(&input);
            for (k, f) in fast.iter().enumerate() {
                let mut acc = Complex::default();
                for (j, x) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::cis(ang)));
                }
                assert!(
                    (f.re - acc.re).abs() < 1e-8 && (f.im - acc.im).abs() < 1e-8,
                    "n={n} k={k}: {f:?} vs {acc:?}"
                );
            }
        }
    }

    #[test]
    fn dft_idft_roundtrip() {
        for n in [4usize, 7, 64, 100, 1000] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sqrt(), -(i as f64) * 0.01))
                .collect();
            let back = idft(&dft(&input));
            for (a, b) in input.iter().zip(&back) {
                assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn idft_inplace_matches_allocating_form() {
        // n=0 (no reference: dft underflows there) is a no-op by the guard.
        idft_inplace(&mut []);
        for n in [1usize, 2, 3, 8, 12, 64, 100, 127] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            // Reference: the pre-change three-vector formulation.
            let conj: Vec<Complex> = input.iter().map(|c| c.conj()).collect();
            let fwd = dft(&conj);
            let reference: Vec<Complex> = fwd
                .iter()
                .map(|c| c.conj().scale(1.0 / (n.max(1)) as f64))
                .collect();
            let mut buf = input.clone();
            idft_inplace(&mut buf);
            for (a, b) in buf.iter().zip(&reference) {
                assert!(
                    (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12,
                    "n={n}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn smooth_signal_reconstructs_well() {
        let data: Vec<f64> = (0..512)
            .map(|i| (i as f64 * 2.0 * std::f64::consts::PI / 512.0).sin() * 3.0 + 5.0)
            .collect();
        let block = Fft.compress_to_ratio(&data, 0.1).unwrap();
        let back = Fft.decompress(&block).unwrap();
        assert!(rmse(&data, &back) < 1e-3, "rmse {}", rmse(&data, &back));
    }

    #[test]
    fn non_power_of_two_segment() {
        let data: Vec<f64> = (0..777)
            .map(|i| (i as f64 * 0.01).sin() + 0.5 * (i as f64 * 0.002).cos())
            .collect();
        let block = Fft.compress_to_ratio(&data, 0.2).unwrap();
        let back = Fft.decompress(&block).unwrap();
        assert_eq!(back.len(), 777);
        assert!(rmse(&data, &back) < 0.05, "rmse {}", rmse(&data, &back));
    }

    #[test]
    fn sum_preserved_via_f64_dc() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.013).sin() * 2.0 + 10.0)
            .collect();
        let block = Fft.compress_to_ratio(&data, 0.05).unwrap();
        let back = Fft.decompress(&block).unwrap();
        let s1: f64 = data.iter().sum();
        let s2: f64 = back.iter().sum();
        assert!((s1 - s2).abs() / s1.abs() < 1e-9, "{s1} vs {s2}");
    }

    #[test]
    fn hits_target_ratio() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin()).collect();
        for target in [0.5, 0.2, 0.05, 0.01] {
            let block = Fft.compress_to_ratio(&data, target).unwrap();
            assert!(
                block.ratio() <= target + 1e-9,
                "{} > {target}",
                block.ratio()
            );
        }
    }

    #[test]
    fn error_grows_as_bins_drop() {
        let data: Vec<f64> = (0..512)
            .map(|i| (i as f64 * 0.05).sin() + 0.3 * (i as f64 * 0.4).sin())
            .collect();
        let fine = Fft.compress_to_ratio(&data, 0.3).unwrap();
        let coarse = Fft.compress_to_ratio(&data, 0.02).unwrap();
        let e_fine = rmse(&data, &Fft.decompress(&fine).unwrap());
        let e_coarse = rmse(&data, &Fft.decompress(&coarse).unwrap());
        assert!(e_fine <= e_coarse + 1e-12);
    }

    #[test]
    fn recode_equals_direct_truncation() {
        let data: Vec<f64> = (0..600).map(|i| (i as f64 * 0.02).sin() * 4.0).collect();
        let block = Fft.compress_to_ratio(&data, 0.2).unwrap();
        let recoded = Fft.recode(&block, 0.05).unwrap();
        let direct = Fft.compress_to_ratio(&data, 0.05).unwrap();
        assert_eq!(recoded.payload, direct.payload);
        assert!(recoded.ratio() <= 0.05 + 1e-9);
    }

    #[test]
    fn recode_direction_and_floor() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let block = Fft.compress_to_ratio(&data, 0.2).unwrap();
        assert!(matches!(
            Fft.recode(&block, 0.9),
            Err(CodecError::RecodeUnsupported(_))
        ));
        assert!(matches!(
            Fft.recode(&block, 0.0001),
            Err(CodecError::RatioUnreachable { .. })
        ));
    }

    #[test]
    fn tiny_segments() {
        let block = Fft.compress_to_ratio(&[3.0, 4.0], 1.0).unwrap();
        let back = Fft.decompress(&block).unwrap();
        // Only DC fits: both points become the mean.
        assert!((back[0] - 3.5).abs() < 1e-9 && (back[1] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(Fft.compress_to_ratio(&[1.0, f64::NAN], 0.5).is_err());
    }
}
