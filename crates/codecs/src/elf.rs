//! Elf: erasing-based lossless floating-point compression (Li et al.,
//! VLDB 2023) — the BUFF-follow-up the paper cites (§III-A1).
//!
//! Elf observes that a double carrying `p` significant decimal digits does
//! not need its full 52-bit mantissa: the low-order bits can be *erased*
//! (zeroed) without changing the value at the declared precision, and a
//! mantissa full of trailing zeros makes the XOR of consecutive values
//! dramatically more compressible. We erase each value to the shortest
//! mantissa that still round-trips at the dataset precision, then encode
//! the erased stream with the Gorilla XOR coder.
//!
//! Payload: `precision: u8`, then the Gorilla payload of the erased values.
//! Decompression re-rounds to the declared precision, the same lossless
//! convention as Sprintz/BUFF.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::bitio::{BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::gorilla::{gorilla_decode_into, gorilla_encode};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};
use crate::util::round_to_precision;

/// Elf codec at a fixed decimal precision.
#[derive(Debug, Clone, Copy)]
pub struct Elf {
    precision: u8,
}

impl Elf {
    /// Create an Elf codec for data with `precision` decimal digits.
    pub fn new(precision: u8) -> Self {
        Self { precision }
    }

    /// The precision this codec erases to.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Zero the most trailing mantissa bits possible while preserving the
    /// value at `precision` decimal digits.
    fn erase(v: f64, precision: u8) -> f64 {
        if !v.is_finite() {
            return v;
        }
        let target = round_to_precision(v, precision);
        let bits = v.to_bits();
        // Keeping more mantissa bits only moves the candidate closer to v,
        // so the round-trip property is monotone in `keep`: binary search
        // the smallest number of kept bits.
        let erased_ok = |keep: u32| -> Option<f64> {
            let mask = if keep >= 52 {
                u64::MAX
            } else {
                !((1u64 << (52 - keep)) - 1)
            };
            let candidate = f64::from_bits(bits & mask);
            (round_to_precision(candidate, precision) == target).then_some(candidate)
        };
        let (mut lo, mut hi) = (0u32, 52u32);
        let mut best = v;
        if let Some(c) = erased_ok(0) {
            return c;
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            match erased_ok(mid) {
                Some(c) => {
                    best = c;
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        // Monotonicity can be violated in rare rounding corner cases; the
        // final verification falls back to the exact value.
        match erased_ok(lo) {
            Some(c) => c,
            None => best,
        }
    }
}

impl Codec for Elf {
    fn id(&self) -> CodecId {
        CodecId::Elf
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        for v in data {
            if !v.is_finite() {
                return Err(CodecError::UnsupportedValue("non-finite float"));
            }
        }
        let CodecScratch { out, f64s, .. } = scratch;
        f64s.clear();
        f64s.reserve(data.len());
        f64s.extend(data.iter().map(|&v| Self::erase(v, self.precision)));
        // Precision byte, then the Gorilla stream: writing the byte through
        // the same writer leaves it byte-aligned, so the payload is
        // identical to a prepended header.
        let mut w = BitWriter::over(std::mem::take(out));
        w.reserve(1 + data.len() * 8);
        w.write_bits(self.precision as u64, 8);
        gorilla_encode(f64s, &mut w);
        *out = w.finish();
        Ok(CompressedBlockRef::new(self.id(), data.len(), out))
    }

    // `payload[0]` / `payload[1..]` are guarded by the emptiness check above them.
    #[allow(clippy::indexing_slicing)]
    fn decompress_into(
        &self,
        block: &CompressedBlock,
        _scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        if block.payload.is_empty() {
            return Err(CodecError::Corrupt("elf payload empty"));
        }
        let precision = block.payload[0];
        let mut r = BitReader::new(&block.payload[1..]);
        gorilla_decode_into(&mut r, block.n_points as usize, out)?;
        for v in out.iter_mut() {
            *v = round_to_precision(*v, precision.min(12));
        }
        Ok(())
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::gorilla::Gorilla;

    fn sample(n: usize, precision: u8) -> Vec<f64> {
        (0..n)
            .map(|i| round_to_precision((i as f64 * 0.0173).sin() * 42.5, precision))
            .collect()
    }

    #[test]
    fn roundtrip_at_precision() {
        for p in [2u8, 4, 6] {
            let data = sample(500, p);
            let elf = Elf::new(p);
            let block = elf.compress(&data).unwrap();
            let back = elf.decompress(&block).unwrap();
            assert_eq!(back.len(), data.len());
            for (a, b) in data.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "p={p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn erasing_preserves_rounded_value() {
        for &v in &[0.0, 1.0, -1.5, 123.456789, 1e-6, -9.87654e4] {
            for p in 0u8..=8 {
                let erased = Elf::erase(v, p);
                assert_eq!(
                    round_to_precision(erased, p),
                    round_to_precision(v, p),
                    "v={v} p={p}"
                );
            }
        }
    }

    #[test]
    fn erased_values_have_more_trailing_zeros() {
        let v = round_to_precision(3.7241, 4);
        let erased = Elf::erase(v, 4);
        assert!(erased.to_bits().trailing_zeros() >= v.to_bits().trailing_zeros());
        assert!(erased.to_bits().trailing_zeros() >= 20, "erasing too weak");
    }

    #[test]
    fn beats_plain_gorilla_on_rounded_data() {
        // The whole point of Elf: erased mantissas XOR to short windows.
        let data = sample(2000, 4);
        let elf_block = Elf::new(4).compress(&data).unwrap();
        let gorilla_block = Gorilla.compress(&data).unwrap();
        assert!(
            elf_block.compressed_bytes() < gorilla_block.compressed_bytes(),
            "elf {} vs gorilla {}",
            elf_block.compressed_bytes(),
            gorilla_block.compressed_bytes()
        );
    }

    #[test]
    fn zero_and_negative_zero() {
        let data = vec![0.0, -0.0, 0.0];
        let elf = Elf::new(4);
        let back = elf.decompress(&elf.compress(&data).unwrap()).unwrap();
        assert!(back.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_non_finite() {
        assert!(Elf::new(4).compress(&[f64::NAN]).is_err());
        assert!(Elf::new(4).compress(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn corrupt_payload_detected() {
        let data = sample(100, 4);
        let block = Elf::new(4).compress(&data).unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(3);
        assert!(Elf::new(4).decompress(&bad).is_err());
        let mut empty = block;
        empty.payload.clear();
        assert!(Elf::new(4).decompress(&empty).is_err());
    }
}
