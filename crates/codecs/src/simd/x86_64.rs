//! x86-64 kernels for the SIMD dispatch layer: hardware CRC-32C (SSE4.2)
//! and 256-bit (AVX2) match extension, bit pack/unpack, fused transforms
//! and dequantize.
//!
//! Every function is `#[target_feature]`-gated and reached only through
//! the guarded arms in [`super::Backend`], which verify the feature at
//! runtime before the (unsafe) call. All kernels are bit-identical to
//! their scalar twins; the per-backend proptests in
//! `tests/kernel_equivalence.rs` pin that over lengths, alignments and
//! ragged tails.

use super::crc_shift::{self, LONG, SHORT};
use crate::bitio;
use crate::lz;
use core::arch::x86_64::*;

#[inline]
fn le_u64(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunk of 8"))
}

/// Hardware CRC-32C over `bytes` extending `crc`
/// ([`crate::crc32c::crc32c_append`] semantics).
///
/// The `crc32` instruction has a 3-cycle latency but single-cycle
/// throughput, so one serial chain leaves two thirds of the unit idle.
/// Large inputs are therefore split into three interleaved streams whose
/// per-block results are folded back together with the compile-time
/// zero-block operators in [`crc_shift`]: `crc(A‖B‖C) =
/// shift(shift(crc_A) ^ crc_B) ^ crc_C`.
#[target_feature(enable = "sse4.2")]
pub(super) fn crc32c_sse42(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    let mut rest = bytes;
    // 3-stream long blocks, then 3-stream short blocks for mid-size
    // tails. Each inner loop carries three independent dependency chains.
    for (block_len, table) in [
        (LONG, &crc_shift::LONG_SHIFT),
        (SHORT, &crc_shift::SHORT_SHIFT),
    ] {
        while rest.len() >= 3 * block_len {
            let (s0, tail) = rest.split_at(block_len);
            let (s1, tail) = tail.split_at(block_len);
            let (s2, tail) = tail.split_at(block_len);
            let (mut c0, mut c1, mut c2) = (c as u64, 0u64, 0u64);
            for ((w0, w1), w2) in s0
                .chunks_exact(8)
                .zip(s1.chunks_exact(8))
                .zip(s2.chunks_exact(8))
            {
                c0 = _mm_crc32_u64(c0, le_u64(w0));
                c1 = _mm_crc32_u64(c1, le_u64(w1));
                c2 = _mm_crc32_u64(c2, le_u64(w2));
            }
            let folded = crc_shift::shift(table, c0 as u32) ^ c1 as u32;
            c = crc_shift::shift(table, folded) ^ c2 as u32;
            rest = tail;
        }
    }
    // Single-stream words, then bytes.
    let mut chunks = rest.chunks_exact(8);
    let mut c64 = c as u64;
    for w in &mut chunks {
        c64 = _mm_crc32_u64(c64, le_u64(w));
    }
    c = c64 as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// 32-bytes-per-step match extension ([`crate::lz::match_len`]
/// semantics): compare/movemask locates the first mismatching byte with
/// one trailing-zeros count; the sub-32-byte tail rides the SWAR kernel.
#[target_feature(enable = "avx2")]
pub(super) fn match_len_avx2(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    debug_assert!(a + max <= data.len() && b + max <= data.len());
    let base = data.as_ptr();
    let mut len = 0;
    while len + 32 <= max {
        // SAFETY: `len + 32 <= max` and the caller-asserted contract
        // `a + max <= data.len()` (checked in the dispatching arm, and
        // re-debug_asserted above) keep both 32-byte loads inside `data`.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(base.add(a + len).cast::<__m256i>()),
                _mm256_loadu_si256(base.add(b + len).cast::<__m256i>()),
            )
        };
        let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
        if eq != u32::MAX {
            return len + (!eq).trailing_zeros() as usize;
        }
        len += 32;
    }
    len + lz::match_len_swar(data, a + len, b + len, max - len)
}

/// AVX2 bulk bit-pack for widths 1..=16 ([`super::Backend::pack_run`]
/// semantics): four values are masked, shifted to their in-chunk bit
/// positions with a per-lane variable shift and OR-folded into one
/// `4*width`-bit chunk, so the serial accumulator is touched once per
/// four values instead of once per value. The ragged tail rides the SWAR
/// kernel.
#[target_feature(enable = "avx2")]
pub(super) fn pack_run_avx2(
    buf: &mut Vec<u8>,
    acc: u64,
    nacc: u32,
    values: &[u64],
    width: u32,
) -> (u64, u32) {
    debug_assert!((1..=16).contains(&width) && nacc < 64);
    let gw = 4 * width; // chunk bits, <= 64
    let mask = (1u64 << width) - 1;
    let vmask = _mm256_set1_epi64x(mask as i64);
    // Lane i holds values[i]; the first value lands highest in the chunk.
    let shifts = _mm256_set_epi64x(0, width as i64, 2 * width as i64, 3 * width as i64);
    let (mut acc, mut nacc) = (acc, nacc);
    let mut groups = values.chunks_exact(4);
    for group in &mut groups {
        // SAFETY: `group` is exactly four u64s from `chunks_exact(4)`.
        let v = unsafe { _mm256_loadu_si256(group.as_ptr().cast::<__m256i>()) };
        let placed = _mm256_sllv_epi64(_mm256_and_si256(v, vmask), shifts);
        // Horizontal OR of the four lanes down to one u64.
        let folded = _mm_or_si128(
            _mm256_castsi256_si128(placed),
            _mm256_extracti128_si256::<1>(placed),
        );
        let folded = _mm_or_si128(folded, _mm_unpackhi_epi64(folded, folded));
        let chunk = _mm_cvtsi128_si64(folded) as u64;
        // Insert the right-aligned `gw`-bit chunk, exactly as
        // `BitWriter::write_bits(chunk, gw)` would.
        if nacc + gw <= 64 {
            acc |= chunk << (64 - nacc - gw);
            nacc += gw;
            if nacc == 64 {
                buf.extend_from_slice(&acc.to_be_bytes());
                acc = 0;
                nacc = 0;
            }
        } else {
            let rem = nacc + gw - 64;
            buf.extend_from_slice(&(acc | (chunk >> rem)).to_be_bytes());
            acc = chunk << (64 - rem);
            nacc = rem;
        }
    }
    bitio::pack_run_swar(buf, acc, nacc, groups.remainder(), width)
}

/// AVX2 bulk bit-unpack for widths 1..=14 ([`super::Backend::unpack_run`]
/// semantics): one 8-byte big-endian window covers four fields plus any
/// intra-byte cursor offset (`7 + 4*14 <= 64`), so each step is a
/// broadcast, a per-lane variable left shift and a uniform right shift.
/// Windows that would read past the buffer, and the ragged tail, ride the
/// SWAR kernel.
#[target_feature(enable = "avx2")]
pub(super) fn unpack_run_avx2(buf: &[u8], pos: usize, out: &mut [u64], width: u32) -> usize {
    debug_assert!((1..=14).contains(&width));
    debug_assert!(pos + out.len() * width as usize <= buf.len() * 8);
    // Lane i extracts the field at bit `offset + i*width` of the window.
    let lane_bits = _mm256_set_epi64x(3 * width as i64, 2 * width as i64, width as i64, 0);
    let rshift = _mm_cvtsi32_si128((64 - width) as i32);
    let mut pos = pos;
    let mut filled = 0;
    while filled + 4 <= out.len() {
        let byte = pos >> 3;
        if byte + 8 > buf.len() {
            break; // window would overrun; finish on the SWAR path
        }
        let window = u64::from_be_bytes(buf[byte..byte + 8].try_into().expect("window of 8"));
        let offsets = _mm256_add_epi64(lane_bits, _mm256_set1_epi64x((pos & 7) as i64));
        let v = _mm256_srl_epi64(
            _mm256_sllv_epi64(_mm256_set1_epi64x(window as i64), offsets),
            rshift,
        );
        // SAFETY: `filled + 4 <= out.len()` leaves room for a 4-lane store.
        unsafe { _mm256_storeu_si256(out.as_mut_ptr().add(filled).cast::<__m256i>(), v) };
        filled += 4;
        pos += 4 * width as usize;
    }
    bitio::unpack_run_swar(buf, pos, &mut out[filled..], width)
}

/// AVX2 fused delta+zigzag ([`super::Backend::delta_zigzag`] semantics):
/// four wrapping differences of offset loads, sign mask via a signed
/// compare against zero (AVX2 has no 64-bit arithmetic right shift), and
/// the `(d << 1) ^ (d >> 63)` fold.
#[target_feature(enable = "avx2")]
pub(super) fn delta_zigzag_avx2(q: &[i64], out: &mut [u64]) {
    debug_assert_eq!(out.len() + 1, q.len());
    let zero = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= out.len() {
        // SAFETY: `i + 4 <= out.len()` and `q.len() == out.len() + 1`
        // keep both offset loads (q[i..i+4], q[i+1..i+5]) and the store
        // in bounds.
        unsafe {
            let a = _mm256_loadu_si256(q.as_ptr().add(i).cast::<__m256i>());
            let b = _mm256_loadu_si256(q.as_ptr().add(i + 1).cast::<__m256i>());
            let d = _mm256_sub_epi64(b, a);
            let sign = _mm256_cmpgt_epi64(zero, d);
            let z = _mm256_xor_si256(_mm256_add_epi64(d, d), sign);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast::<__m256i>(), z);
        }
        i += 4;
    }
    crate::util::delta_zigzag_tail(q, out, i);
}

/// AVX2 inverse transform ([`super::Backend::unzigzag_undelta`]
/// semantics): zigzag-decode four deltas at once, prefix-sum them across
/// the lanes (shift-and-add within 128-bit halves, then a broadcast of
/// the low-half total), and add the running carry. The carry stays in a
/// vector register (lane-3 broadcast via `vpermq`) so the only
/// loop-carried dependency is one add + one permute — no vector→scalar
/// round trip per iteration.
#[target_feature(enable = "avx2")]
pub(super) fn unzigzag_undelta_avx2(prev: i64, zs: &[u64], out: &mut [i64]) -> i64 {
    debug_assert_eq!(zs.len(), out.len());
    let zero = _mm256_setzero_si256();
    let one = _mm256_set1_epi64x(1);
    let mut vprev = _mm256_set1_epi64x(prev);
    let mut i = 0;
    while i + 4 <= zs.len() {
        // SAFETY: `i + 4 <= zs.len() == out.len()` keeps the load and
        // store in bounds.
        unsafe {
            let z = _mm256_loadu_si256(zs.as_ptr().add(i).cast::<__m256i>());
            // zigzag_decode: (z >> 1) ^ -(z & 1)
            let d = _mm256_xor_si256(
                _mm256_srli_epi64::<1>(z),
                _mm256_sub_epi64(zero, _mm256_and_si256(z, one)),
            );
            // Inclusive prefix sum over the four lanes.
            let p = _mm256_add_epi64(d, _mm256_slli_si256::<8>(d));
            let low_total = _mm256_permute4x64_epi64::<0b01_01_01_01>(p);
            let carry_hi = _mm256_blend_epi32::<0b1111_0000>(zero, low_total);
            let p = _mm256_add_epi64(p, carry_hi);
            let p = _mm256_add_epi64(p, vprev);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast::<__m256i>(), p);
            vprev = _mm256_permute4x64_epi64::<0b11_11_11_11>(p);
        }
        i += 4;
    }
    let prev = _mm256_extract_epi64::<0>(vprev);
    crate::util::unzigzag_undelta_scalar(prev, &zs[i..], &mut out[i..])
}

/// AVX2 dequantize ([`super::Backend::dequantize`] semantics): full-range
/// `i64 → f64` conversion via the split high/low magic-constant trick
/// (exact — the only rounding is the final add, which matches the
/// correctly-rounded scalar `as f64`), then an IEEE divide, which rounds
/// identically to the scalar loop.
#[target_feature(enable = "avx2")]
pub(super) fn dequantize_avx2(q: &[i64], scale: f64, out: &mut [f64]) {
    debug_assert_eq!(q.len(), out.len());
    // 2^52, 2^84 + 2^63, and 2^84 + 2^63 + 2^52 as raw f64 bit patterns.
    let magic_lo = _mm256_set1_epi64x(0x4330_0000_0000_0000);
    let magic_hi = _mm256_set1_epi64x(0x4530_0000_8000_0000_u64 as i64);
    let magic_all = _mm256_castsi256_pd(_mm256_set1_epi64x(0x4530_0000_8010_0000_u64 as i64));
    let vscale = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= q.len() {
        // SAFETY: `i + 4 <= q.len() == out.len()` keeps the load and
        // store in bounds.
        unsafe {
            let v = _mm256_loadu_si256(q.as_ptr().add(i).cast::<__m256i>());
            // Low 32 bits as an exact double offset by 2^52; high 32 bits
            // sign-flipped and placed at 2^32 with the 2^84 offset.
            let v_lo = _mm256_blend_epi32::<0b0101_0101>(magic_lo, v);
            let v_hi = _mm256_xor_si256(_mm256_srli_epi64::<32>(v), magic_hi);
            let hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi), magic_all);
            let d = _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_div_pd(d, vscale));
        }
        i += 4;
    }
    crate::util::dequantize_scalar(&q[i..], scale, &mut out[i..]);
}
