//! aarch64 kernels for the SIMD dispatch layer: hardware CRC-32C
//! (FEAT_CRC32) and NEON 128-bit match extension.
//!
//! Reached only through the guarded arms in [`super::Backend`], which
//! verify the feature at runtime before the (unsafe) call. Bit-identity
//! with the scalar twins is pinned by the per-backend proptests in
//! `tests/kernel_equivalence.rs`.

use super::crc_shift::{self, LONG, SHORT};
use crate::lz;
use core::arch::aarch64::*;

#[inline]
fn le_u64(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunk of 8"))
}

/// Hardware CRC-32C over `bytes` extending `crc`
/// ([`crate::crc32c::crc32c_append`] semantics). Same 3-stream
/// interleave + zero-block folding as the x86-64 kernel: `crc32cd` also
/// has multi-cycle latency with single-cycle throughput, so three
/// independent chains keep the unit busy.
#[target_feature(enable = "crc")]
pub(super) fn crc32c_hw(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    let mut rest = bytes;
    for (block_len, table) in [
        (LONG, &crc_shift::LONG_SHIFT),
        (SHORT, &crc_shift::SHORT_SHIFT),
    ] {
        while rest.len() >= 3 * block_len {
            let (s0, tail) = rest.split_at(block_len);
            let (s1, tail) = tail.split_at(block_len);
            let (s2, tail) = tail.split_at(block_len);
            let (mut c0, mut c1, mut c2) = (c, 0u32, 0u32);
            for ((w0, w1), w2) in s0
                .chunks_exact(8)
                .zip(s1.chunks_exact(8))
                .zip(s2.chunks_exact(8))
            {
                c0 = __crc32cd(c0, le_u64(w0));
                c1 = __crc32cd(c1, le_u64(w1));
                c2 = __crc32cd(c2, le_u64(w2));
            }
            let folded = crc_shift::shift(table, c0) ^ c1;
            c = crc_shift::shift(table, folded) ^ c2;
            rest = tail;
        }
    }
    let mut chunks = rest.chunks_exact(8);
    for w in &mut chunks {
        c = __crc32cd(c, le_u64(w));
    }
    for &b in chunks.remainder() {
        c = __crc32cb(c, b);
    }
    !c
}

/// 16-bytes-per-step match extension ([`crate::lz::match_len`]
/// semantics). NEON has no movemask; `vshrn_n_u16::<4>` (shift right by
/// four and narrow) folds the 16-lane compare result to a 64-bit nibble
/// mask — 4 mask bits per byte lane, in lane order — whose
/// trailing-zeros count (÷ 4) locates the first mismatching byte.
#[target_feature(enable = "neon")]
pub(super) fn match_len_neon(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    debug_assert!(a + max <= data.len() && b + max <= data.len());
    let base = data.as_ptr();
    let mut len = 0;
    while len + 16 <= max {
        // SAFETY: `len + 16 <= max` and the caller-asserted contract
        // `a + max <= data.len()` (checked in the dispatching arm, and
        // re-debug_asserted above) keep both 16-byte loads inside `data`.
        let nibbles = unsafe {
            let va = vld1q_u8(base.add(a + len));
            let vb = vld1q_u8(base.add(b + len));
            let eq = vceqq_u8(va, vb);
            vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(vreinterpretq_u16_u8(
                eq,
            ))))
        };
        if nibbles != u64::MAX {
            return len + (!nibbles).trailing_zeros() as usize / 4;
        }
        len += 16;
    }
    len + lz::match_len_swar(data, a + len, b + len, max - len)
}
