//! Runtime-dispatched SIMD kernel layer for the codec hot loops.
//!
//! Every byte-crunching kernel under `bitio`, `crc32c`, `lz`, `snappy` and
//! `util` is published here as a method on [`Backend`], a ladder of
//! implementations of the same bit-identical contract:
//!
//! | tier       | what it is                                              |
//! |------------|---------------------------------------------------------|
//! | `Scalar`   | naive per-element reference (byte/bit loops)            |
//! | `Swar`     | portable word-at-a-time kernels (the PR 1–4 hot loops)  |
//! | `Sse42`    | x86-64 hardware CRC-32C (3-stream `crc32` interleave)   |
//! | `Avx2`     | x86-64 256-bit kernels (match, pack/unpack, transforms) |
//! | `Neon`     | aarch64 hardware CRC-32C + 128-bit match extension      |
//!
//! # Dispatch
//!
//! CPU feature detection runs **once**: [`active`] caches the chosen
//! backend in a `OnceLock` on first use, so steady-state dispatch is one
//! atomic load plus a predictable jump. The hot wrappers
//! (`crc32c::crc32c_append`, `lz::match_len`, `BitWriter::write_run`,
//! `BitReader::read_run`, `util::dequantize_into`, …) all route through
//! it; no call site does its own detection.
//!
//! Tiers degrade, never fail: a backend that lacks a kernel for the
//! current ISA, width or length falls down the ladder (`Avx2 → Sse42 →
//! Swar`, `Neon → Swar`), and `Swar` — plain portable Rust — is the
//! universal fallback on every architecture. `Scalar` is the frozen
//! reference formulation used by differential tests and benchmark
//! baselines; detection never selects it.
//!
//! # Forcing a backend
//!
//! Set `ADAEDGE_SIMD` to `scalar`, `swar`, `sse42`, `avx2`, `neon` or
//! `auto` (the default) before the process first touches a codec. A
//! request above what the host supports clamps down the ladder, so
//! `ADAEDGE_SIMD=avx2` on a NEON box degrades to `swar` instead of
//! crashing; CI uses `ADAEDGE_SIMD=scalar` to run the whole test suite
//! through the reference kernels on any machine. [`active`] reports the
//! resolved choice and [`supported`] lists every tier the host can run,
//! which is how the differential proptests in
//! `tests/kernel_equivalence.rs` iterate the whole ladder in-process.
//!
//! # Wire-format safety
//!
//! Every kernel here is a drop-in for its scalar twin: CRC-32C digests,
//! packed bit streams and decoded floats are **bit-identical** across
//! backends (the wire polynomial is already CRC-32C, so hardware CRC
//! changes nothing on the wire). This is pinned three ways: per-backend
//! proptests over lengths/alignments/ragged tails, the golden
//! wire-format fixtures, and forced-`scalar` vs detected-backend runs of
//! the full suite in CI and `scripts/verify.sh`.
//!
//! # Adding a kernel
//!
//! 1. Land the `Swar` (portable) form in its home module as a
//!    `pub(crate)` free function, plus a naive `Scalar` reference.
//! 2. Add a `Backend` method here that matches the tier ladder, with the
//!    SIMD arms guarded on [`caps`] so an out-of-ladder `Backend` value
//!    degrades instead of hitting undefined behaviour.
//! 3. Put the intrinsics in `simd::x86_64` / `simd::aarch64` behind
//!    `#[target_feature]`, with a `debug_assert!` precondition at entry
//!    and a `SAFETY:` comment on every unsafe block.
//! 4. Extend the per-backend proptests in `tests/kernel_equivalence.rs`
//!    and the per-backend rows in the `kernels` bench.

use std::sync::OnceLock;

#[cfg(target_arch = "aarch64")]
mod aarch64;
#[cfg(target_arch = "x86_64")]
mod x86_64;

use crate::{bitio, crc32c, lz, util};

/// One tier of the kernel ladder. See the [module docs](self) for the
/// table; obtain values from [`active`], [`supported`] or
/// [`Backend::from_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Naive per-element reference kernels (byte/bit loops).
    Scalar,
    /// Portable word-at-a-time kernels; the universal fallback.
    Swar,
    /// x86-64 SSE4.2: hardware CRC-32C with 3-stream interleaving.
    Sse42,
    /// x86-64 AVX2: 256-bit match extension, bit pack/unpack, fused
    /// transforms and dequantize (CRC rides the SSE4.2 kernel).
    Avx2,
    /// aarch64: hardware CRC-32C and NEON match extension.
    Neon,
}

/// Host capability flags, detected once.
#[derive(Debug, Default, Clone, Copy)]
struct Caps {
    sse42: bool,
    avx2: bool,
    neon: bool,
    /// aarch64 CRC extension (FEAT_CRC32); independent of NEON.
    crc: bool,
}

fn caps() -> Caps {
    static CAPS: OnceLock<Caps> = OnceLock::new();
    *CAPS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            Caps {
                sse42: is_x86_feature_detected!("sse4.2"),
                avx2: is_x86_feature_detected!("avx2"),
                ..Caps::default()
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            Caps {
                neon: std::arch::is_aarch64_feature_detected!("neon"),
                crc: std::arch::is_aarch64_feature_detected!("crc"),
                ..Caps::default()
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            Caps::default()
        }
    })
}

fn detect_best() -> Backend {
    let c = caps();
    if c.avx2 {
        Backend::Avx2
    } else if c.sse42 {
        Backend::Sse42
    } else if c.neon || c.crc {
        Backend::Neon
    } else {
        Backend::Swar
    }
}

/// The backend every hot-path wrapper dispatches to: the best tier the
/// host supports, or the `ADAEDGE_SIMD` override clamped to what the
/// host supports. Detection and the environment read happen once; the
/// result is cached for the life of the process.
#[inline]
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("ADAEDGE_SIMD") {
        Ok(name) => match Backend::from_name(name.trim()) {
            Some(requested) => requested.clamp_supported(),
            // Unknown names (and "auto") defer to detection.
            None => detect_best(),
        },
        Err(_) => detect_best(),
    })
}

/// Every backend this host can execute, in ladder order (always starts
/// `[Scalar, Swar, ..]`). Differential tests iterate this to compare
/// tiers in-process.
pub fn supported() -> &'static [Backend] {
    static SUPPORTED: OnceLock<Vec<Backend>> = OnceLock::new();
    SUPPORTED.get_or_init(|| {
        let mut tiers = vec![Backend::Scalar, Backend::Swar];
        for t in [Backend::Sse42, Backend::Avx2, Backend::Neon] {
            if t.is_supported() {
                tiers.push(t);
            }
        }
        tiers
    })
}

impl Backend {
    /// The backend's lower-case name (`"scalar"`, `"swar"`, `"sse42"`,
    /// `"avx2"`, `"neon"`), as accepted by `ADAEDGE_SIMD`.
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Sse42 => "sse42",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parse a backend name (case-sensitive, as documented for
    /// `ADAEDGE_SIMD`). `"auto"` and unknown strings return `None`.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "swar" => Some(Backend::Swar),
            "sse42" => Some(Backend::Sse42),
            "avx2" => Some(Backend::Avx2),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// Whether this host can execute the tier. `Scalar` and `Swar` are
    /// portable Rust and always supported.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar | Backend::Swar => true,
            Backend::Sse42 => caps().sse42,
            Backend::Avx2 => caps().avx2,
            Backend::Neon => caps().neon || caps().crc,
        }
    }

    /// One step down the ladder.
    fn fallback(self) -> Backend {
        match self {
            Backend::Scalar | Backend::Swar => Backend::Swar,
            Backend::Sse42 | Backend::Neon => Backend::Swar,
            Backend::Avx2 => Backend::Sse42,
        }
    }

    /// Clamp to the nearest supported tier at or below `self`.
    fn clamp_supported(self) -> Backend {
        let mut b = self;
        while !b.is_supported() {
            b = b.fallback();
        }
        b
    }

    // ---- kernels --------------------------------------------------------
    //
    // Every method is safe and total: SIMD arms are guarded on `caps()`,
    // so calling a tier the host cannot execute degrades down the ladder
    // instead of reaching an intrinsic the CPU lacks.

    /// Extend a CRC-32C with `bytes` ([`crate::crc32c::crc32c_append`]
    /// semantics). All tiers produce identical digests.
    #[inline]
    pub fn crc32c_append(self, crc: u32, bytes: &[u8]) -> u32 {
        match self {
            Backend::Scalar => crc32c::append_scalar(crc, bytes),
            #[cfg(target_arch = "x86_64")]
            Backend::Sse42 | Backend::Avx2 if caps().sse42 => {
                // SAFETY: `caps().sse42` was detected at runtime, so the
                // CPU executes the SSE4.2 `crc32` instructions the kernel
                // is compiled with.
                unsafe { x86_64::crc32c_sse42(crc, bytes) }
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon if caps().crc => {
                // SAFETY: `caps().crc` was detected at runtime, so the
                // CPU executes the FEAT_CRC32 instructions.
                unsafe { aarch64::crc32c_hw(crc, bytes) }
            }
            _ => crc32c::append_swar(crc, bytes),
        }
    }

    /// Length of the common prefix of `data[a..]` and `data[b..]`, capped
    /// at `max` (the LZ/snappy match-extension kernel).
    ///
    /// # Panics
    ///
    /// If `a + max` or `b + max` runs past `data.len()` (the same
    /// contract [`crate::lz::match_len`] documents; the SIMD tiers check
    /// it eagerly because they read through raw pointers).
    #[inline]
    pub fn match_len(self, data: &[u8], a: usize, b: usize, max: usize) -> usize {
        match self {
            Backend::Scalar => lz::match_len_scalar(data, a, b, max),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if caps().avx2 => {
                // The bounds assert makes the kernel's unaligned loads
                // sound even if a caller violates the documented contract.
                assert!(
                    a + max <= data.len() && b + max <= data.len(),
                    "match_len: max runs past data"
                );
                // SAFETY: AVX2 detected at runtime; bounds asserted above.
                unsafe { x86_64::match_len_avx2(data, a, b, max) }
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon if caps().neon => {
                assert!(
                    a + max <= data.len() && b + max <= data.len(),
                    "match_len: max runs past data"
                );
                // SAFETY: NEON detected at runtime; bounds asserted above.
                unsafe { aarch64::match_len_neon(data, a, b, max) }
            }
            _ => lz::match_len_swar(data, a, b, max),
        }
    }

    /// Append `values` at fixed `width` (1..=64) to a bit stream staged
    /// as `(acc, nacc)` over `buf`, MSB-first; returns the new staging
    /// state. Bit-identical to one [`crate::bitio::BitWriter::write_bits`]
    /// call per value. `nacc` must be `< 64`.
    #[inline]
    pub fn pack_run(
        self,
        buf: &mut Vec<u8>,
        acc: u64,
        nacc: u32,
        values: &[u64],
        width: u32,
    ) -> (u64, u32) {
        debug_assert!((1..=64).contains(&width) && nacc < 64);
        match self {
            Backend::Scalar => bitio::pack_run_scalar(buf, acc, nacc, values, width),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if caps().avx2 && (1..=16).contains(&width) && values.len() >= 8 => {
                // SAFETY: AVX2 detected at runtime.
                unsafe { x86_64::pack_run_avx2(buf, acc, nacc, values, width) }
            }
            _ => bitio::pack_run_swar(buf, acc, nacc, values, width),
        }
    }

    /// Fill `out` with consecutive `width`-bit (1..=64) fields read from
    /// absolute bit `pos` of `buf`, MSB-first; returns the new bit
    /// cursor. The caller guarantees
    /// `pos + out.len() * width <= buf.len() * 8` (asserted).
    #[inline]
    pub fn unpack_run(self, buf: &[u8], pos: usize, out: &mut [u64], width: u32) -> usize {
        debug_assert!((1..=64).contains(&width));
        // This bound is what makes the SIMD tiers' reads sound; enforce it
        // for every tier so the contract cannot drift.
        assert!(
            pos + out.len() * width as usize <= buf.len() * 8,
            "unpack_run: run exceeds buffer"
        );
        match self {
            Backend::Scalar => bitio::unpack_run_scalar(buf, pos, out, width),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if caps().avx2 && (1..=14).contains(&width) && out.len() >= 8 => {
                // SAFETY: AVX2 detected at runtime; run bounds asserted
                // above.
                unsafe { x86_64::unpack_run_avx2(buf, pos, out, width) }
            }
            _ => bitio::unpack_run_swar(buf, pos, out, width),
        }
    }

    /// Zigzagged consecutive deltas: `out[i] = zigzag(q[i+1] - q[i])`
    /// (wrapping). Requires `out.len() + 1 == q.len()` (asserted).
    #[inline]
    pub fn delta_zigzag(self, q: &[i64], out: &mut [u64]) {
        assert_eq!(out.len() + 1, q.len(), "delta_zigzag: length mismatch");
        match self {
            Backend::Scalar => util::delta_zigzag_scalar(q, out),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if caps().avx2 && out.len() >= 8 => {
                // SAFETY: AVX2 detected at runtime; lengths asserted above.
                unsafe { x86_64::delta_zigzag_avx2(q, out) }
            }
            _ => util::delta_zigzag_swar(q, out),
        }
    }

    /// Inverse of [`delta_zigzag`](Self::delta_zigzag): starting from
    /// `prev`, accumulate zigzag-decoded deltas into `out` (`out[i]` is
    /// the running value after applying `zs[i]`, wrapping) and return the
    /// final value. Requires `zs.len() == out.len()` (asserted).
    #[inline]
    pub fn unzigzag_undelta(self, prev: i64, zs: &[u64], out: &mut [i64]) -> i64 {
        assert_eq!(zs.len(), out.len(), "unzigzag_undelta: length mismatch");
        match self {
            Backend::Scalar => util::unzigzag_undelta_scalar(prev, zs, out),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if caps().avx2 && zs.len() >= 8 => {
                // SAFETY: AVX2 detected at runtime; lengths asserted above.
                unsafe { x86_64::unzigzag_undelta_avx2(prev, zs, out) }
            }
            _ => util::unzigzag_undelta_swar(prev, zs, out),
        }
    }

    /// Fixed-point to float: `out[i] = q[i] as f64 / scale`, bit-exact
    /// against the scalar loop (the division is kept; SIMD tiers use the
    /// same correctly-rounded IEEE divide). Requires
    /// `q.len() == out.len()` (asserted).
    #[inline]
    pub fn dequantize(self, q: &[i64], scale: f64, out: &mut [f64]) {
        assert_eq!(q.len(), out.len(), "dequantize: length mismatch");
        match self {
            Backend::Scalar => util::dequantize_scalar(q, scale, out),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if caps().avx2 && q.len() >= 8 => {
                // SAFETY: AVX2 detected at runtime; lengths asserted above.
                unsafe { x86_64::dequantize_avx2(q, scale, out) }
            }
            _ => util::dequantize_swar(q, scale, out),
        }
    }
}

/// CRC-32C zero-block combine operators for the multi-stream hardware
/// kernels: advancing a (reflected, non-inverted) CRC register by a fixed
/// count of zero bytes is linear over GF(2), so it is a 32×32 bit-matrix
/// apply, tabulated as four 256-entry lookups. Built at compile time from
/// the wire polynomial; shared by the x86-64 and aarch64 tiers.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64", test))]
pub(crate) mod crc_shift {
    use crate::crc32c::POLY;

    /// Bytes per stream in the long 3-way interleaved CRC blocks.
    pub(crate) const LONG: usize = 1024;
    /// Bytes per stream in the short 3-way interleaved CRC blocks.
    pub(crate) const SHORT: usize = 64;

    const fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
        let mut sum = 0u32;
        let mut i = 0;
        while vec != 0 {
            if vec & 1 != 0 {
                sum ^= mat[i];
            }
            vec >>= 1;
            i += 1;
        }
        sum
    }

    const fn gf2_square(mat: &[u32; 32]) -> [u32; 32] {
        let mut out = [0u32; 32];
        let mut i = 0;
        while i < 32 {
            out[i] = gf2_times(mat, mat[i]);
            i += 1;
        }
        out
    }

    /// Operator advancing the reflected CRC register by `2^log2_bits`
    /// zero bits: the one-zero-bit operator (`crc' = (crc >> 1) ^ (POLY
    /// if crc & 1)`) squared `log2_bits` times.
    const fn zeros_operator(log2_bits: u32) -> [u32; 32] {
        let mut m = [0u32; 32];
        m[0] = POLY;
        let mut i = 1;
        while i < 32 {
            m[i] = 1 << (i - 1);
            i += 1;
        }
        let mut k = 0;
        while k < log2_bits {
            m = gf2_square(&m);
            k += 1;
        }
        m
    }

    /// Tabulate a matrix as four byte-indexed lookup tables
    /// (`t[k][b] = M · (b << 8k)`), so an apply is four loads and xors.
    const fn shift_table(mat: &[u32; 32]) -> [[u32; 256]; 4] {
        let mut t = [[0u32; 256]; 4];
        let mut k = 0;
        while k < 4 {
            let mut b = 0;
            while b < 256 {
                t[k][b] = gf2_times(mat, (b as u32) << (8 * k));
                b += 1;
            }
            k += 1;
        }
        t
    }

    /// Advance-by-`LONG`-zero-bytes tables (8192 bits = 2^13).
    pub(crate) static LONG_SHIFT: [[u32; 256]; 4] = shift_table(&zeros_operator(13));
    /// Advance-by-`SHORT`-zero-bytes tables (512 bits = 2^9).
    pub(crate) static SHORT_SHIFT: [[u32; 256]; 4] = shift_table(&zeros_operator(9));

    /// Apply a tabulated zero-block operator to a CRC register.
    #[inline]
    pub(crate) fn shift(t: &[[u32; 256]; 4], crc: u32) -> u32 {
        t[0][(crc & 0xFF) as usize]
            ^ t[1][((crc >> 8) & 0xFF) as usize]
            ^ t[2][((crc >> 16) & 0xFF) as usize]
            ^ t[3][(crc >> 24) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in [
            Backend::Scalar,
            Backend::Swar,
            Backend::Sse42,
            Backend::Avx2,
            Backend::Neon,
        ] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("auto"), None);
        assert_eq!(Backend::from_name("AVX2"), None);
    }

    #[test]
    fn ladder_always_reaches_portable_ground() {
        for b in [
            Backend::Scalar,
            Backend::Swar,
            Backend::Sse42,
            Backend::Avx2,
            Backend::Neon,
        ] {
            assert!(b.clamp_supported().is_supported());
        }
    }

    #[test]
    fn active_is_supported_and_listed() {
        let a = active();
        assert!(a.is_supported());
        assert!(supported().contains(&a));
        assert_eq!(supported()[0], Backend::Scalar);
        assert_eq!(supported()[1], Backend::Swar);
    }

    #[test]
    fn unsupported_tier_degrades_to_identical_results() {
        // Even a tier the host lacks must produce correct results through
        // its guarded fallback (soundness of the public enum).
        let data: Vec<u8> = (0..300u32).map(|i| (i * 37) as u8).collect();
        let want = Backend::Scalar.crc32c_append(0, &data);
        for b in [Backend::Sse42, Backend::Avx2, Backend::Neon] {
            assert_eq!(b.crc32c_append(0, &data), want, "{}", b.name());
        }
    }

    #[test]
    fn zero_shift_tables_match_streamed_zeros() {
        // Folding N zero bytes through the byte-at-a-time kernel must
        // equal the tabulated matrix apply, for arbitrary start states.
        // The tables act on the working (inverted) register, so unwrap
        // the API's pre/post inversion.
        for seed in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x1234_5678] {
            let working = !seed;
            let long_zeros = vec![0u8; crc_shift::LONG];
            let short_zeros = vec![0u8; crc_shift::SHORT];
            let streamed_long = !Backend::Scalar.crc32c_append(seed, &long_zeros);
            let streamed_short = !Backend::Scalar.crc32c_append(seed, &short_zeros);
            assert_eq!(
                crc_shift::shift(&crc_shift::LONG_SHIFT, working),
                streamed_long,
                "long shift, seed {seed:#x}"
            );
            assert_eq!(
                crc_shift::shift(&crc_shift::SHORT_SHIFT, working),
                streamed_short,
                "short shift, seed {seed:#x}"
            );
        }
    }
}
