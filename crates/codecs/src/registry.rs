//! Codec registry: builds every codec at a dataset precision and exposes
//! the candidate sets the selection framework draws its MAB arms from.

use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::buff::{Buff, BuffLossy};
use crate::chimp::Chimp;
use crate::deflate::Deflate;
use crate::dict::Dict;
use crate::elf::Elf;
use crate::error::{CodecError, Result};
use crate::fft::Fft;
use crate::gorilla::Gorilla;
use crate::lttb::Lttb;
use crate::paa::Paa;
use crate::pla::Pla;
use crate::raw::Raw;
use crate::rle::Rle;
use crate::rrd::RrdSample;
use crate::scratch::CodecScratch;
use crate::snappy::Snappy;
use crate::sprintz::Sprintz;
use crate::traits::{Codec, LossyCodec};

/// Owns one instance of every codec, parameterized by the dataset's decimal
/// precision (4 digits for CBF, 5 for UCR, 6 for UCI in the paper).
pub struct CodecRegistry {
    precision: u8,
    /// Fault-injection hook: compressing with this codec panics. See
    /// [`CodecRegistry::inject_compress_panic`].
    panic_on: Option<CodecId>,
    gzip: Deflate,
    snappy: Snappy,
    zlib1: Deflate,
    zlib6: Deflate,
    zlib9: Deflate,
    dict: Dict,
    rle: Rle,
    gorilla: Gorilla,
    chimp: Chimp,
    sprintz: Sprintz,
    elf: Elf,
    buff: Buff,
    buff_lossy: BuffLossy,
    paa: Paa,
    pla: Pla,
    fft: Fft,
    rrd: RrdSample,
    lttb: Lttb,
    raw: Raw,
}

impl std::fmt::Debug for CodecRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecRegistry")
            .field("precision", &self.precision)
            .finish()
    }
}

impl CodecRegistry {
    /// Build a registry for data with `precision` decimal digits.
    pub fn new(precision: u8) -> Self {
        Self {
            precision,
            panic_on: None,
            gzip: Deflate::gzip(),
            snappy: Snappy,
            zlib1: Deflate::zlib1(),
            zlib6: Deflate::zlib6(),
            zlib9: Deflate::zlib9(),
            dict: Dict,
            rle: Rle,
            gorilla: Gorilla,
            chimp: Chimp,
            sprintz: Sprintz::new(precision),
            elf: Elf::new(precision),
            buff: Buff::new(precision),
            buff_lossy: BuffLossy::new(precision),
            paa: Paa,
            pla: Pla,
            fft: Fft,
            rrd: RrdSample,
            lttb: Lttb,
            raw: Raw,
        }
    }

    /// The decimal precision the quantizing codecs use.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Deterministic fault injection: every subsequent
    /// [`CodecRegistry::compress_into`] call for `id` panics.
    ///
    /// This is the seam the fault-containment tests (and chaos
    /// experiments) use to prove the engine survives a misbehaving codec;
    /// production configurations never set it.
    pub fn inject_compress_panic(&mut self, id: CodecId) {
        self.panic_on = Some(id);
    }

    /// Look up a codec by id.
    pub fn get(&self, id: CodecId) -> &dyn Codec {
        match id {
            CodecId::Gzip => &self.gzip,
            CodecId::Snappy => &self.snappy,
            CodecId::Zlib1 => &self.zlib1,
            CodecId::Zlib6 => &self.zlib6,
            CodecId::Zlib9 => &self.zlib9,
            CodecId::Dict => &self.dict,
            CodecId::Rle => &self.rle,
            CodecId::Gorilla => &self.gorilla,
            CodecId::Chimp => &self.chimp,
            CodecId::Sprintz => &self.sprintz,
            CodecId::Elf => &self.elf,
            CodecId::Buff => &self.buff,
            CodecId::BuffLossy => &self.buff_lossy,
            CodecId::Paa => &self.paa,
            CodecId::Pla => &self.pla,
            CodecId::Fft => &self.fft,
            CodecId::RrdSample => &self.rrd,
            CodecId::Lttb => &self.lttb,
            CodecId::Raw => &self.raw,
        }
    }

    /// Look up a lossy codec by id, or `None` for lossless ids.
    pub fn get_lossy(&self, id: CodecId) -> Option<&dyn LossyCodec> {
        Some(match id {
            CodecId::BuffLossy => &self.buff_lossy,
            CodecId::Paa => &self.paa,
            CodecId::Pla => &self.pla,
            CodecId::Fft => &self.fft,
            CodecId::RrdSample => &self.rrd,
            CodecId::Lttb => &self.lttb,
            _ => return None,
        })
    }

    /// Decompress any block by dispatching on its codec id.
    pub fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.get(block.codec).decompress(block)
    }

    /// Compress with a caller-owned scratch arena (no per-call allocation
    /// in steady state). See [`Codec::compress_into`].
    pub fn compress_into<'a>(
        &self,
        id: CodecId,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if self.panic_on == Some(id) {
            panic!("injected codec fault: {id} compress");
        }
        self.get(id).compress_into(data, scratch)
    }

    /// Decompress any block into a caller-owned buffer, dispatching on its
    /// codec id. See [`Codec::decompress_into`].
    pub fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.get(block.codec).decompress_into(block, scratch, out)
    }

    /// Recode a block of a lossy (or BUFF) codec to a tighter ratio.
    pub fn recode(&self, block: &CompressedBlock, ratio: f64) -> Result<CompressedBlock> {
        // BUFF (lossless) blocks recode through the BUFF-lossy path.
        let id = if block.codec == CodecId::Buff {
            CodecId::BuffLossy
        } else {
            block.codec
        };
        let lossy = self
            .get_lossy(id)
            .ok_or(CodecError::RecodeUnsupported("codec has no lossy recode"))?;
        lossy.recode(block, ratio)
    }

    /// The default lossless candidate set (§V: Gzip, Snappy, Gorilla, Zlib,
    /// BUFF, Sprintz — we expose zlib-6 as "the" zlib arm by default).
    pub fn lossless_candidates() -> Vec<CodecId> {
        vec![
            CodecId::Gzip,
            CodecId::Snappy,
            CodecId::Gorilla,
            CodecId::Zlib6,
            CodecId::Buff,
            CodecId::Sprintz,
        ]
    }

    /// The default lossy candidate set (§V: PAA, PLA, FFT, BUFF-lossy,
    /// RRD-sample).
    pub fn lossy_candidates() -> Vec<CodecId> {
        vec![
            CodecId::Paa,
            CodecId::Pla,
            CodecId::Fft,
            CodecId::BuffLossy,
            CodecId::RrdSample,
        ]
    }

    /// The enlarged decision space of the data-shift experiment
    /// (Figure 15a): the full zlib ladder plus dictionary, Chimp and the
    /// rest of the lossless arms.
    pub fn extended_lossless_candidates() -> Vec<CodecId> {
        vec![
            CodecId::Gzip,
            CodecId::Snappy,
            CodecId::Zlib1,
            CodecId::Zlib6,
            CodecId::Zlib9,
            CodecId::Dict,
            CodecId::Rle,
            CodecId::Gorilla,
            CodecId::Chimp,
            CodecId::Elf,
            CodecId::Buff,
            CodecId::Sprintz,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::CodecKind;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.021).sin() * 2.0).collect()
    }

    #[test]
    fn every_id_resolves_and_matches() {
        let reg = CodecRegistry::new(4);
        for id in CodecId::ALL {
            assert_eq!(reg.get(id).id(), id);
        }
    }

    #[test]
    fn lossless_arms_roundtrip_exactly_at_precision() {
        let reg = CodecRegistry::new(4);
        let data: Vec<f64> = sample(400)
            .iter()
            .map(|v| crate::util::round_to_precision(*v, 4))
            .collect();
        for id in CodecRegistry::extended_lossless_candidates() {
            let codec = reg.get(id);
            assert_eq!(codec.kind(), CodecKind::Lossless, "{id}");
            let block = codec.compress(&data).unwrap();
            let back = reg.decompress(&block).unwrap();
            for (a, b) in data.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{id}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn lossy_arms_hit_targets() {
        let reg = CodecRegistry::new(4);
        let data = sample(1000);
        for id in CodecRegistry::lossy_candidates() {
            let lossy = reg.get_lossy(id).unwrap();
            let block = lossy.compress_to_ratio(&data, 0.2).unwrap();
            assert!(block.ratio() <= 0.2 + 1e-9, "{id}: {}", block.ratio());
            assert_eq!(reg.decompress(&block).unwrap().len(), 1000);
        }
    }

    #[test]
    fn lossy_lookup_excludes_lossless() {
        let reg = CodecRegistry::new(4);
        assert!(reg.get_lossy(CodecId::Gzip).is_none());
        assert!(reg.get_lossy(CodecId::Sprintz).is_none());
        assert!(reg.get_lossy(CodecId::Paa).is_some());
    }

    #[test]
    fn recode_dispatch_works_per_codec() {
        let reg = CodecRegistry::new(4);
        let data = sample(1000);
        for id in CodecRegistry::lossy_candidates() {
            let lossy = reg.get_lossy(id).unwrap();
            let block = lossy.compress_to_ratio(&data, 0.4).unwrap();
            // 0.2 is above every codec's floor (BUFF-lossy's is ≈0.126).
            let recoded = reg.recode(&block, 0.2).unwrap();
            assert!(recoded.ratio() <= 0.2 + 1e-9, "{id}");
        }
    }

    #[test]
    fn recode_buff_block_goes_lossy() {
        let reg = CodecRegistry::new(4);
        let data = sample(500);
        let block = reg.get(CodecId::Buff).compress(&data).unwrap();
        let recoded = reg.recode(&block, 0.15).unwrap();
        assert_eq!(recoded.codec, CodecId::BuffLossy);
    }

    #[test]
    fn recode_lossless_rejected() {
        let reg = CodecRegistry::new(4);
        let data = sample(100);
        let block = reg.get(CodecId::Gorilla).compress(&data).unwrap();
        assert!(reg.recode(&block, 0.1).is_err());
    }
}
