//! # adaedge-codecs
//!
//! Every compression scheme AdaEdge selects between, implemented from
//! scratch: lossless byte compression (a DEFLATE-style LZ77+Huffman engine
//! backing the gzip/zlib/snappy arms), lightweight float encodings
//! (Gorilla, CHIMP, Sprintz, BUFF, dictionary) and tunable lossy
//! representations (PAA, PLA, FFT, BUFF-lossy, RRD-sample, LTTB).
//!
//! All codecs implement [`Codec`]; the lossy ones additionally implement
//! [`LossyCodec`], which adds ratio targeting and "virtual decompression"
//! recoding (shrinking an already-compressed block without reconstructing
//! the original floats — §IV-E of the paper).
//!
//! ```
//! use adaedge_codecs::{CodecRegistry, CodecId, LossyCodec};
//!
//! let reg = CodecRegistry::new(4); // 4 decimal digits (CBF dataset)
//! let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
//!
//! // Lossless arm:
//! let block = reg.get(CodecId::Sprintz).compress(&data).unwrap();
//! assert!(block.ratio() < 1.0);
//!
//! // Lossy arm tuned to a 10% budget, then recoded to 5%:
//! let paa = reg.get_lossy(CodecId::Paa).unwrap();
//! let block = paa.compress_to_ratio(&data, 0.10).unwrap();
//! let tighter = reg.recode(&block, 0.05).unwrap();
//! assert!(tighter.ratio() <= 0.05);
//! ```

#![warn(missing_docs)]
// The SIMD dispatch layer is the only source of `unsafe` in the crate;
// make every operation inside an unsafe fn carry its own unsafe block +
// SAFETY comment instead of inheriting the fn-level contract.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitio;
pub mod block;
pub mod buff;
pub mod chimp;
pub mod crc32c;
pub mod deflate;
pub mod dict;
pub mod direct;
pub mod elf;
pub mod error;
pub mod faultkit;
pub mod fft;
pub mod gorilla;
pub mod huffman;
pub mod lttb;
pub mod lz;
pub mod paa;
pub mod pla;
pub mod raw;
pub mod registry;
pub mod rle;
pub mod rrd;
pub mod scratch;
pub mod simd;
pub mod snappy;
pub mod sprintz;
pub mod traits;
pub mod util;

pub use block::{CodecId, CompressedBlock, CompressedBlockRef, POINT_BYTES};
pub use crc32c::crc32c;
pub use direct::{agg_with_fallback, direct_agg, AggOp};
pub use error::{CodecError, Result};
pub use registry::CodecRegistry;
pub use scratch::CodecScratch;
pub use simd::Backend;
pub use traits::{Codec, CodecKind, LossyCodec};
