//! Canonical Huffman coding with a 15-bit length limit, used by the
//! DEFLATE-style byte compressor.
//!
//! Code lengths are derived from symbol frequencies with a heap-built
//! Huffman tree, then clamped to `MAX_CODE_LEN` with a Kraft-sum repair
//! pass, and finally turned into canonical codes (shorter codes first,
//! ties by symbol index) so only the lengths need to be transmitted.

use crate::bitio::{BitReader, BitWriter};
use crate::error::{CodecError, Result};

/// DEFLATE's maximum code length.
pub const MAX_CODE_LEN: u32 = 15;

/// Reusable workspace for [`code_lengths_into`]: the Huffman tree build's
/// per-call vectors, recycled across segments.
#[derive(Debug, Default)]
pub struct HuffWork {
    used: Vec<usize>,
    parent: Vec<usize>,
    /// Leaves as `(freq, node)` pairs sorted ascending — the tree build's
    /// first merge queue.
    leaves: Vec<(u64, u32)>,
    /// Internal-node freqs in creation order — the second merge queue.
    internal: Vec<u64>,
    depths: Vec<u32>,
    order: Vec<(u32, u64, u32)>,
}

/// Compute code lengths (0 = unused symbol) for the given frequencies.
///
/// Guarantees: every symbol with nonzero frequency gets a length in
/// `1..=MAX_CODE_LEN`, and the lengths satisfy Kraft equality when two or
/// more symbols are used. A single used symbol gets length 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut lens = Vec::new();
    code_lengths_into(freqs, &mut lens, &mut HuffWork::default());
    lens
}

/// [`code_lengths`] into a reused output vector and workspace.
///
/// The tree is built with the two-queue merge: leaves sorted by
/// `(freq, node)` form one queue, internal nodes (whose freqs are
/// non-decreasing in creation order, the classic invariant) the other, and
/// each step combines the two smallest heads. Because internal node ids
/// always exceed leaf ids, "leaf wins frequency ties" reproduces the exact
/// pop order of a `(freq, node)` min-heap — same trees, same bytes — at
/// O(n log n) for one flat sort instead of 2n heap operations.
pub fn code_lengths_into(freqs: &[u64], lens: &mut Vec<u32>, work: &mut HuffWork) {
    let n = freqs.len();
    lens.clear();
    lens.resize(n, 0);
    let HuffWork {
        used,
        parent,
        leaves,
        internal,
        depths,
        order,
    } = work;
    used.clear();
    used.extend((0..n).filter(|&i| freqs[i] > 0));
    match used.len() {
        0 => return,
        1 => {
            lens[used[0]] = 1;
            return;
        }
        _ => {}
    }

    let n_used = used.len();
    leaves.clear();
    leaves.extend(
        used.iter()
            .enumerate()
            .map(|(leaf, &sym)| (freqs[sym], leaf as u32)),
    );
    leaves.sort_unstable();
    // Nodes are numbered leaves-first (position in `used`), then internal
    // nodes in creation order; `parent` spans all 2n-1 of them.
    parent.clear();
    parent.resize(2 * n_used - 1, usize::MAX);
    internal.clear();
    let mut li = 0usize; // next unconsumed sorted leaf
    let mut ii = 0usize; // next unconsumed internal node
    for step in 0..n_used - 1 {
        let node = n_used + step;
        let mut pick = || {
            // Leaf wins ties: its node id is smaller than any internal's.
            if li < n_used && (ii >= internal.len() || leaves[li].0 <= internal[ii]) {
                li += 1;
                (leaves[li - 1].0, leaves[li - 1].1 as usize)
            } else {
                ii += 1;
                (internal[ii - 1], n_used + ii - 1)
            }
        };
        let (fa, a) = pick();
        let (fb, b) = pick();
        parent[a] = node;
        parent[b] = node;
        internal.push(fa.saturating_add(fb));
    }

    // Depths top-down: a parent is always created after its children, so a
    // reverse walk over node ids resolves every depth in one pass.
    let root = 2 * n_used - 2;
    depths.clear();
    depths.resize(2 * n_used - 1, 0);
    for node in (0..root).rev() {
        depths[node] = depths[parent[node]] + 1;
    }
    let mut counts = [0u64; (MAX_CODE_LEN + 1) as usize];
    for leaf in 0..n_used {
        depths[leaf] = depths[leaf].min(MAX_CODE_LEN);
        counts[depths[leaf] as usize] += 1;
    }

    // Kraft repair: clamping may have pushed the sum above 1. While the sum
    // exceeds capacity, deepen the shallowest over-populated level.
    let kraft = |counts: &[u64]| -> u64 {
        // Scaled by 2^MAX_CODE_LEN.
        counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(len, &c)| c << (MAX_CODE_LEN - len as u32))
            .sum()
    };
    let capacity = 1u64 << MAX_CODE_LEN;
    while kraft(&counts) > capacity {
        // Find a leaf at the deepest level below MAX and push it deeper...
        // Standard trick: take one code from the longest non-max level and
        // give it one extra bit (splitting a max-length pair upward).
        let mut moved = false;
        for len in (1..MAX_CODE_LEN).rev() {
            if counts[len as usize] > 0 {
                counts[len as usize] -= 1;
                counts[(len + 1) as usize] += 1;
                moved = true;
                break;
            }
        }
        if !moved {
            break; // All at max length already; cannot happen with n <= 2^15.
        }
    }
    // Re-assign depths canonically: sort leaves by original depth (ties by
    // frequency then symbol — a total order, so the unstable sort is
    // deterministic and allocation-free) and hand out the repaired level
    // populations. Keys are inline `(depth, !freq, leaf)` tuples — bitwise
    // NOT reverses the frequency order, and ascending leaf index equals
    // ascending symbol — so the sort never chases pointers to compare.
    order.clear();
    order.extend((0..n_used).map(|leaf| (depths[leaf], !freqs[used[leaf]], leaf as u32)));
    order.sort_unstable();
    let mut level = 1usize;
    for &(_, _, leaf) in order.iter() {
        while counts[level] == 0 {
            level += 1;
        }
        counts[level] -= 1;
        lens[used[leaf as usize]] = level as u32;
    }
}

/// Assign canonical codes to lengths. Returns `codes[i]` valid when
/// `lens[i] > 0`.
pub fn canonical_codes(lens: &[u32]) -> Vec<u32> {
    let mut codes = Vec::new();
    canonical_codes_into(lens, &mut codes);
    codes
}

/// [`canonical_codes`] into a reused output vector (cleared, capacity kept).
pub fn canonical_codes_into(lens: &[u32], codes: &mut Vec<u32>) {
    let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
    for &l in lens {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = [0u32; (MAX_CODE_LEN + 2) as usize];
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    codes.clear();
    codes.resize(lens.len(), 0);
    for (i, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[i] = next[l as usize];
            next[l as usize] += 1;
        }
    }
}

/// Encoder: symbol → (code, length).
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    codes: Vec<u32>,
    lens: Vec<u32>,
}

impl Encoder {
    /// Build an encoder from symbol frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        let lens = code_lengths(freqs);
        let codes = canonical_codes(&lens);
        Self { codes, lens }
    }

    /// Build from explicit code lengths.
    pub fn from_lens(lens: Vec<u32>) -> Self {
        let codes = canonical_codes(&lens);
        Self { codes, lens }
    }

    /// Rebuild this encoder in place from symbol frequencies, reusing its
    /// code/length vectors and the supplied tree workspace.
    pub fn rebuild_from_freqs(&mut self, freqs: &[u64], work: &mut HuffWork) {
        code_lengths_into(freqs, &mut self.lens, work);
        canonical_codes_into(&self.lens, &mut self.codes);
    }

    /// Rebuild this encoder in place from explicit code lengths.
    pub fn rebuild_from_lens(&mut self, lens: &[u32]) {
        self.lens.clear();
        self.lens.extend_from_slice(lens);
        canonical_codes_into(&self.lens, &mut self.codes);
    }

    /// The code lengths (what gets transmitted).
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// Emit the code for `symbol`.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, symbol: usize) -> Result<()> {
        let len = self.lens[symbol];
        if len == 0 {
            return Err(CodecError::Corrupt("encoding symbol with no code"));
        }
        w.write_bits(self.codes[symbol] as u64, len);
        Ok(())
    }
}

/// Canonical decoder driven by per-length first-code tables.
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    /// For each length: (first code, first index into `symbols`).
    first_code: [u32; (MAX_CODE_LEN + 1) as usize],
    first_index: [u32; (MAX_CODE_LEN + 1) as usize],
    count: [u32; (MAX_CODE_LEN + 1) as usize],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
}

impl Decoder {
    /// Build a decoder from code lengths.
    pub fn from_lens(lens: &[u32]) -> Result<Self> {
        let mut dec = Self::default();
        dec.rebuild_from_lens(lens)?;
        Ok(dec)
    }

    /// Rebuild this decoder in place from code lengths, reusing its symbol
    /// vector's capacity.
    pub fn rebuild_from_lens(&mut self, lens: &[u32]) -> Result<()> {
        let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
        for &l in lens {
            if l as usize >= count.len() {
                return Err(CodecError::Corrupt("code length exceeds limit"));
            }
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        self.symbols.clear();
        self.symbols.reserve(lens.len());
        for len in 1..=MAX_CODE_LEN {
            for (sym, &l) in lens.iter().enumerate() {
                if l == len {
                    self.symbols.push(sym as u32);
                }
            }
        }
        let mut first_code = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut first_index = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        self.first_code = first_code;
        self.first_index = first_index;
        self.count = count;
        Ok(())
    }

    /// Decode one symbol.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | (r.read_bit()? as u32);
            let c = self.count[len];
            if c > 0 {
                let first = self.first_code[len];
                if code < first + c {
                    if code < first {
                        return Err(CodecError::Corrupt("invalid huffman code"));
                    }
                    let idx = self.first_index[len] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(CodecError::Corrupt("huffman code too long"))
    }
}

/// Reusable Huffman state for the DEFLATE-family codecs: frequency tables,
/// canonical encoders/decoders rebuilt in place per block, transmitted
/// length buffers and the shared tree-build workspace.
#[derive(Debug, Default)]
pub struct HuffScratch {
    pub(crate) lit_freq: Vec<u64>,
    pub(crate) dist_freq: Vec<u64>,
    pub(crate) lit_enc: Encoder,
    pub(crate) dist_enc: Encoder,
    pub(crate) lit_dec: Decoder,
    pub(crate) dist_dec: Decoder,
    pub(crate) lit_lens: Vec<u32>,
    pub(crate) dist_lens: Vec<u32>,
    pub(crate) work: HuffWork,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[usize]) {
        let enc = Encoder::from_freqs(freqs);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.write(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let dec = Decoder::from_lens(enc.lens()).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.read(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn kraft_equality_holds() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lens = code_lengths(&freqs);
        let sum: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12, "kraft sum {sum}");
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let mut freqs = vec![1u64; 16];
        freqs[3] = 10_000;
        let lens = code_lengths(&freqs);
        assert!(lens[3] < lens[0]);
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freqs = vec![0u64; 10];
        freqs[7] = 42;
        let lens = code_lengths(&freqs);
        assert_eq!(lens[7], 1);
        roundtrip_symbols(&freqs, &[7, 7, 7]);
    }

    #[test]
    fn two_symbols() {
        let freqs = vec![5, 0, 3];
        roundtrip_symbols(&freqs, &[0, 2, 0, 0, 2]);
    }

    #[test]
    fn full_byte_alphabet_roundtrip() {
        let mut freqs = vec![0u64; 286];
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + i * i) % 286).collect();
        for &s in &stream {
            freqs[s] += 1;
        }
        roundtrip_symbols(&freqs, &stream);
    }

    #[test]
    fn skewed_distribution_respects_length_limit() {
        // Fibonacci-like frequencies produce degenerate depths without the
        // length limit; assert we clamp to 15 and still decode.
        let mut freqs = vec![0u64; 40];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
        let stream: Vec<usize> = (0..40).collect();
        roundtrip_symbols(&freqs, &stream);
    }

    #[test]
    fn decoder_rejects_garbage() {
        let freqs = vec![10, 10, 1];
        let enc = Encoder::from_freqs(&freqs);
        let dec = Decoder::from_lens(enc.lens()).unwrap();
        // All-ones stream eventually hits an invalid code or runs out.
        let bytes = vec![0xFFu8; 1];
        let mut r = BitReader::new(&bytes);
        let mut failed = false;
        for _ in 0..10 {
            if dec.read(&mut r).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }

    #[test]
    fn empty_freqs_yield_empty_code() {
        let lens = code_lengths(&[0, 0, 0]);
        assert!(lens.iter().all(|&l| l == 0));
    }
}
