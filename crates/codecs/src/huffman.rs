//! Canonical Huffman coding with a 15-bit length limit, used by the
//! DEFLATE-style byte compressor.
//!
//! Code lengths are derived from symbol frequencies with a heap-built
//! Huffman tree, then clamped to `MAX_CODE_LEN` with a Kraft-sum repair
//! pass, and finally turned into canonical codes (shorter codes first,
//! ties by symbol index) so only the lengths need to be transmitted.

use crate::bitio::{BitReader, BitWriter};
use crate::error::{CodecError, Result};
use std::collections::BinaryHeap;

/// DEFLATE's maximum code length.
pub const MAX_CODE_LEN: u32 = 15;

/// Compute code lengths (0 = unused symbol) for the given frequencies.
///
/// Guarantees: every symbol with nonzero frequency gets a length in
/// `1..=MAX_CODE_LEN`, and the lengths satisfy Kraft equality when two or
/// more symbols are used. A single used symbol gets length 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u32; n];
    match used.len() {
        0 => return lens,
        1 => {
            lens[used[0]] = 1;
            return lens;
        }
        _ => {}
    }

    // Heap of (Reverse(freq), node index). Internal nodes appended after leaves.
    #[derive(PartialEq, Eq)]
    struct Item {
        freq: u64,
        node: usize,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on node index for determinism.
            other.freq.cmp(&self.freq).then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut parent: Vec<usize> = vec![usize::MAX; used.len()];
    let mut heap: BinaryHeap<Item> = used
        .iter()
        .enumerate()
        .map(|(leaf, &sym)| Item {
            freq: freqs[sym],
            node: leaf,
        })
        .collect();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let node = parent.len();
        parent.push(usize::MAX);
        parent[a.node] = node;
        parent[b.node] = node;
        heap.push(Item {
            freq: a.freq.saturating_add(b.freq),
            node,
        });
    }
    let root = heap.pop().expect("one root").node;

    // Depth of each leaf = walk to root.
    let mut counts = vec![0u64; (MAX_CODE_LEN + 1) as usize];
    let mut leaf_depths = vec![0u32; used.len()];
    for (leaf, depth_slot) in leaf_depths.iter_mut().enumerate() {
        let mut d = 0u32;
        let mut cur = leaf;
        while cur != root {
            cur = parent[cur];
            d += 1;
        }
        let d = d.min(MAX_CODE_LEN);
        *depth_slot = d;
        counts[d as usize] += 1;
    }

    // Kraft repair: clamping may have pushed the sum above 1. While the sum
    // exceeds capacity, deepen the shallowest over-populated level.
    let kraft = |counts: &[u64]| -> u64 {
        // Scaled by 2^MAX_CODE_LEN.
        counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(len, &c)| c << (MAX_CODE_LEN - len as u32))
            .sum()
    };
    let capacity = 1u64 << MAX_CODE_LEN;
    while kraft(&counts) > capacity {
        // Find a leaf at the deepest level below MAX and push it deeper...
        // Standard trick: take one code from the longest non-max level and
        // give it one extra bit (splitting a max-length pair upward).
        let mut moved = false;
        for len in (1..MAX_CODE_LEN).rev() {
            if counts[len as usize] > 0 {
                counts[len as usize] -= 1;
                counts[(len + 1) as usize] += 1;
                moved = true;
                break;
            }
        }
        if !moved {
            break; // All at max length already; cannot happen with n <= 2^15.
        }
    }
    // Re-assign depths canonically: sort leaves by original depth (stable by
    // frequency) and hand out the repaired level populations.
    let mut order: Vec<usize> = (0..used.len()).collect();
    order.sort_by(|&a, &b| {
        leaf_depths[a]
            .cmp(&leaf_depths[b])
            .then(freqs[used[b]].cmp(&freqs[used[a]]))
            .then(used[a].cmp(&used[b]))
    });
    let mut level = 1usize;
    for leaf in order {
        while counts[level] == 0 {
            level += 1;
        }
        counts[level] -= 1;
        lens[used[leaf]] = level as u32;
    }
    lens
}

/// Assign canonical codes to lengths. Returns `codes[i]` valid when
/// `lens[i] > 0`.
pub fn canonical_codes(lens: &[u32]) -> Vec<u32> {
    let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
    for &l in lens {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = [0u32; (MAX_CODE_LEN + 2) as usize];
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    let mut codes = vec![0u32; lens.len()];
    for (i, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[i] = next[l as usize];
            next[l as usize] += 1;
        }
    }
    codes
}

/// Encoder: symbol → (code, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lens: Vec<u32>,
}

impl Encoder {
    /// Build an encoder from symbol frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        let lens = code_lengths(freqs);
        let codes = canonical_codes(&lens);
        Self { codes, lens }
    }

    /// Build from explicit code lengths.
    pub fn from_lens(lens: Vec<u32>) -> Self {
        let codes = canonical_codes(&lens);
        Self { codes, lens }
    }

    /// The code lengths (what gets transmitted).
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// Emit the code for `symbol`.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, symbol: usize) -> Result<()> {
        let len = self.lens[symbol];
        if len == 0 {
            return Err(CodecError::Corrupt("encoding symbol with no code"));
        }
        w.write_bits(self.codes[symbol] as u64, len);
        Ok(())
    }
}

/// Canonical decoder driven by per-length first-code tables.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// For each length: (first code, first index into `symbols`).
    first_code: [u32; (MAX_CODE_LEN + 1) as usize],
    first_index: [u32; (MAX_CODE_LEN + 1) as usize],
    count: [u32; (MAX_CODE_LEN + 1) as usize],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
}

impl Decoder {
    /// Build a decoder from code lengths.
    pub fn from_lens(lens: &[u32]) -> Result<Self> {
        let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
        for &l in lens {
            if l as usize >= count.len() {
                return Err(CodecError::Corrupt("code length exceeds limit"));
            }
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut symbols = Vec::with_capacity(lens.len());
        for len in 1..=MAX_CODE_LEN {
            for (sym, &l) in lens.iter().enumerate() {
                if l == len {
                    symbols.push(sym as u32);
                }
            }
        }
        let mut first_code = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut first_index = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        Ok(Self {
            first_code,
            first_index,
            count,
            symbols,
        })
    }

    /// Decode one symbol.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | (r.read_bit()? as u32);
            let c = self.count[len];
            if c > 0 {
                let first = self.first_code[len];
                if code < first + c {
                    if code < first {
                        return Err(CodecError::Corrupt("invalid huffman code"));
                    }
                    let idx = self.first_index[len] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(CodecError::Corrupt("huffman code too long"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[usize]) {
        let enc = Encoder::from_freqs(freqs);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.write(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let dec = Decoder::from_lens(enc.lens()).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.read(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn kraft_equality_holds() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lens = code_lengths(&freqs);
        let sum: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12, "kraft sum {sum}");
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let mut freqs = vec![1u64; 16];
        freqs[3] = 10_000;
        let lens = code_lengths(&freqs);
        assert!(lens[3] < lens[0]);
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freqs = vec![0u64; 10];
        freqs[7] = 42;
        let lens = code_lengths(&freqs);
        assert_eq!(lens[7], 1);
        roundtrip_symbols(&freqs, &[7, 7, 7]);
    }

    #[test]
    fn two_symbols() {
        let freqs = vec![5, 0, 3];
        roundtrip_symbols(&freqs, &[0, 2, 0, 0, 2]);
    }

    #[test]
    fn full_byte_alphabet_roundtrip() {
        let mut freqs = vec![0u64; 286];
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + i * i) % 286).collect();
        for &s in &stream {
            freqs[s] += 1;
        }
        roundtrip_symbols(&freqs, &stream);
    }

    #[test]
    fn skewed_distribution_respects_length_limit() {
        // Fibonacci-like frequencies produce degenerate depths without the
        // length limit; assert we clamp to 15 and still decode.
        let mut freqs = vec![0u64; 40];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
        let stream: Vec<usize> = (0..40).collect();
        roundtrip_symbols(&freqs, &stream);
    }

    #[test]
    fn decoder_rejects_garbage() {
        let freqs = vec![10, 10, 1];
        let enc = Encoder::from_freqs(&freqs);
        let dec = Decoder::from_lens(enc.lens()).unwrap();
        // All-ones stream eventually hits an invalid code or runs out.
        let bytes = vec![0xFFu8; 1];
        let mut r = BitReader::new(&bytes);
        let mut failed = false;
        for _ in 0..10 {
            if dec.read(&mut r).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }

    #[test]
    fn empty_freqs_yield_empty_code() {
        let lens = code_lengths(&[0, 0, 0]);
        assert!(lens.iter().all(|&l| l == 0));
    }
}
