//! The compressed-block container and codec identifiers.

use serde::{Deserialize, Serialize};

/// Bytes a single uncompressed `f64` data point occupies.
pub const POINT_BYTES: usize = 8;

/// Identifier for every compression scheme AdaEdge knows about.
///
/// Each identifier is one MAB arm. The zlib levels are separate arms (the
/// paper's Figure 15 candidate set includes `zlib-9` explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CodecId {
    // --- lossless byte compression (our DEFLATE-style engine) ---
    /// Strongest/slowest LZ77 + Huffman configuration (gzip-class).
    Gzip,
    /// Fast greedy LZ with byte-oriented output (snappy-class).
    Snappy,
    /// LZ77 + Huffman at effort level 1 (fastest zlib setting).
    Zlib1,
    /// LZ77 + Huffman at effort level 6 (default zlib setting).
    Zlib6,
    /// LZ77 + Huffman at effort level 9 (strongest zlib setting).
    Zlib9,
    // --- lossless lightweight encodings ---
    /// Distinct-value dictionary with bit-packed codes.
    Dict,
    /// Run-length encoding of repeated values.
    Rle,
    /// Facebook Gorilla XOR float compression.
    Gorilla,
    /// CHIMP, the optimized Gorilla variant.
    Chimp,
    /// Sprintz: quantize + delta + zigzag + block bit-packing.
    Sprintz,
    /// Elf: mantissa erasing + XOR coding (lossless at declared precision).
    Elf,
    /// BUFF: bounded-precision fixed-point byte-sliced floats.
    Buff,
    // --- lossy representations ---
    /// BUFF with low-order bits discarded.
    BuffLossy,
    /// Piecewise Aggregate Approximation (window means).
    Paa,
    /// Piecewise Linear Approximation (selected knots, linear interpolation).
    Pla,
    /// Truncated Fourier transform (low-frequency coefficients kept).
    Fft,
    /// RRDTool-style random sample per bucket.
    RrdSample,
    /// Largest-Triangle-Three-Buckets downsampling.
    Lttb,
    /// No compression: raw little-endian doubles (control arm).
    Raw,
}

impl CodecId {
    /// Stable short name used in experiment output and figure legends.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Gzip => "gzip",
            CodecId::Snappy => "snappy",
            CodecId::Zlib1 => "zlib-1",
            CodecId::Zlib6 => "zlib-6",
            CodecId::Zlib9 => "zlib-9",
            CodecId::Dict => "dict",
            CodecId::Rle => "rle",
            CodecId::Gorilla => "gorilla",
            CodecId::Chimp => "chimp",
            CodecId::Sprintz => "sprintz",
            CodecId::Elf => "elf",
            CodecId::Buff => "buff",
            CodecId::BuffLossy => "buff-lossy",
            CodecId::Paa => "paa",
            CodecId::Pla => "pla",
            CodecId::Fft => "fft",
            CodecId::RrdSample => "rrd-sample",
            CodecId::Lttb => "lttb",
            CodecId::Raw => "raw",
        }
    }

    /// Parse the short name produced by [`CodecId::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "gzip" => CodecId::Gzip,
            "snappy" => CodecId::Snappy,
            "zlib-1" => CodecId::Zlib1,
            "zlib-6" => CodecId::Zlib6,
            "zlib-9" => CodecId::Zlib9,
            "dict" => CodecId::Dict,
            "rle" => CodecId::Rle,
            "gorilla" => CodecId::Gorilla,
            "chimp" => CodecId::Chimp,
            "sprintz" => CodecId::Sprintz,
            "elf" => CodecId::Elf,
            "buff" => CodecId::Buff,
            "buff-lossy" => CodecId::BuffLossy,
            "paa" => CodecId::Paa,
            "pla" => CodecId::Pla,
            "fft" => CodecId::Fft,
            "rrd-sample" => CodecId::RrdSample,
            "lttb" => CodecId::Lttb,
            "raw" => CodecId::Raw,
            _ => return None,
        })
    }

    /// Whether decompression restores the input exactly (up to the declared
    /// dataset precision for the quantizing codecs).
    pub fn is_lossless(self) -> bool {
        !matches!(
            self,
            CodecId::BuffLossy
                | CodecId::Paa
                | CodecId::Pla
                | CodecId::Fft
                | CodecId::RrdSample
                | CodecId::Lttb
        )
    }

    /// All identifiers, in registry order.
    pub const ALL: [CodecId; 19] = [
        CodecId::Gzip,
        CodecId::Snappy,
        CodecId::Zlib1,
        CodecId::Zlib6,
        CodecId::Zlib9,
        CodecId::Dict,
        CodecId::Rle,
        CodecId::Gorilla,
        CodecId::Chimp,
        CodecId::Sprintz,
        CodecId::Elf,
        CodecId::Buff,
        CodecId::BuffLossy,
        CodecId::Paa,
        CodecId::Pla,
        CodecId::Fft,
        CodecId::RrdSample,
        CodecId::Lttb,
        CodecId::Raw,
    ];
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A compressed segment: the unit AdaEdge stores, ships and recodes.
///
/// The payload layout is codec-specific; `codec` identifies the decoder. The
/// block also remembers how many points the original segment held so the
/// compression ratio can be computed without the original data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedBlock {
    /// Which codec produced the payload.
    pub codec: CodecId,
    /// Number of `f64` points in the original segment.
    pub n_points: u32,
    /// Codec-specific encoded bytes.
    pub payload: Vec<u8>,
}

impl CompressedBlock {
    /// Construct a block.
    pub fn new(codec: CodecId, n_points: usize, payload: Vec<u8>) -> Self {
        Self {
            codec,
            n_points: n_points as u32,
            payload,
        }
    }

    /// Borrow this block as a [`CompressedBlockRef`].
    pub fn as_ref(&self) -> CompressedBlockRef<'_> {
        CompressedBlockRef {
            codec: self.codec,
            n_points: self.n_points,
            payload: &self.payload,
        }
    }

    /// Size of the stored payload in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Size of the original segment in bytes.
    pub fn original_bytes(&self) -> usize {
        self.n_points as usize * POINT_BYTES
    }

    /// Compression ratio = compressed / original (smaller is better; 1.0
    /// means no reduction). Matches the paper's convention.
    pub fn ratio(&self) -> f64 {
        if self.n_points == 0 {
            return 1.0;
        }
        self.compressed_bytes() as f64 / self.original_bytes() as f64
    }

    /// CRC-32C over the block's framing and payload (codec name, point
    /// count, payload bytes). The storage layer records this at put time
    /// and re-verifies on reads, so bit rot in any of the three fields is
    /// detected before a corrupted block reaches a decoder.
    pub fn checksum(&self) -> u32 {
        let crc = crate::crc32c::crc32c(self.codec.name().as_bytes());
        let crc = crate::crc32c::crc32c_append(crc, &self.n_points.to_le_bytes());
        crate::crc32c::crc32c_append(crc, &self.payload)
    }
}

/// A compressed segment whose payload borrows a scratch arena.
///
/// Returned by [`Codec::compress_into`]: the payload lives in the arena's
/// output buffer and is valid until the arena's next use. Callers that only
/// need the size/ratio (the steady-state online ingest loop) never touch the
/// heap; callers that must keep the block call [`CompressedBlockRef::to_block`].
///
/// [`Codec::compress_into`]: crate::traits::Codec::compress_into
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressedBlockRef<'a> {
    /// Which codec produced the payload.
    pub codec: CodecId,
    /// Number of `f64` points in the original segment.
    pub n_points: u32,
    /// Codec-specific encoded bytes, borrowed from a [`CodecScratch`].
    ///
    /// [`CodecScratch`]: crate::scratch::CodecScratch
    pub payload: &'a [u8],
}

impl<'a> CompressedBlockRef<'a> {
    /// Construct a borrowed block.
    pub fn new(codec: CodecId, n_points: usize, payload: &'a [u8]) -> Self {
        Self {
            codec,
            n_points: n_points as u32,
            payload,
        }
    }

    /// Size of the payload in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Size of the original segment in bytes.
    pub fn original_bytes(&self) -> usize {
        self.n_points as usize * POINT_BYTES
    }

    /// Compression ratio = compressed / original (smaller is better).
    pub fn ratio(&self) -> f64 {
        if self.n_points == 0 {
            return 1.0;
        }
        self.compressed_bytes() as f64 / self.original_bytes() as f64
    }

    /// Copy into an owned [`CompressedBlock`].
    pub fn to_block(&self) -> CompressedBlock {
        CompressedBlock {
            codec: self.codec,
            n_points: self.n_points,
            payload: self.payload.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for id in CodecId::ALL {
            assert_eq!(CodecId::from_name(id.name()), Some(id));
        }
        assert_eq!(CodecId::from_name("nope"), None);
    }

    #[test]
    fn lossless_classification() {
        assert!(CodecId::Gzip.is_lossless());
        assert!(CodecId::Sprintz.is_lossless());
        assert!(CodecId::Buff.is_lossless());
        assert!(!CodecId::BuffLossy.is_lossless());
        assert!(!CodecId::Paa.is_lossless());
        assert!(!CodecId::Fft.is_lossless());
    }

    #[test]
    fn ratio_math() {
        let b = CompressedBlock::new(CodecId::Raw, 100, vec![0; 200]);
        assert!((b.ratio() - 0.25).abs() < 1e-12);
        assert_eq!(b.original_bytes(), 800);
        let empty = CompressedBlock::new(CodecId::Raw, 0, vec![]);
        assert_eq!(empty.ratio(), 1.0);
    }

    #[test]
    fn all_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in CodecId::ALL {
            assert!(seen.insert(id.name()));
        }
    }
}
