//! Sprintz-style compression (Blalock et al., IMWUT 2018) for quantized
//! time series: delta prediction + zigzag + per-block bit-packing.
//!
//! The codec quantizes doubles to fixed-point integers at the dataset's
//! declared decimal precision (the paper tailors precision per dataset:
//! 4 digits for CBF, 5 for UCR, 6 for UCI), then encodes the first value
//! raw and the rest as zigzagged deltas packed in blocks of 128 with an
//! 8-bit width header each. Decompression restores the quantized values
//! exactly, which is the paper's definition of lossless for these codecs.

use crate::bitio::{bits_needed, zigzag_decode, zigzag_encode, BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock};
use crate::error::{CodecError, Result};
use crate::traits::{Codec, CodecKind};
use crate::util::{dequantize, quantize};

/// Deltas per bit-packed block.
const BLOCK: usize = 128;

/// Sprintz codec at a fixed decimal precision.
#[derive(Debug, Clone, Copy)]
pub struct Sprintz {
    precision: u8,
}

impl Sprintz {
    /// Create a Sprintz codec for data with `precision` significant decimal
    /// digits after the point (must be ≤ 12).
    pub fn new(precision: u8) -> Self {
        Self { precision }
    }

    /// The precision this codec quantizes to.
    pub fn precision(&self) -> u8 {
        self.precision
    }
}

impl Codec for Sprintz {
    fn id(&self) -> CodecId {
        CodecId::Sprintz
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let q = quantize(data, self.precision)?;
        let mut prev = q[0];
        let deltas: Vec<u64> = q[1..]
            .iter()
            .map(|&v| {
                let d = v.wrapping_sub(prev);
                prev = v;
                zigzag_encode(d)
            })
            .collect();
        // Size estimate: header + per-block width bytes + the worst block
        // width observed, so smooth signals allocate once.
        let max_width = deltas.iter().map(|&d| bits_needed(d)).max().unwrap_or(0);
        let estimate =
            9 + deltas.len().div_ceil(BLOCK) + (deltas.len() * max_width as usize).div_ceil(8);
        let mut w = BitWriter::with_capacity(estimate);
        // Header: precision byte, then the first value raw.
        w.write_bits(self.precision as u64, 8);
        w.write_bits(q[0] as u64, 64);
        for chunk in deltas.chunks(BLOCK) {
            let width = chunk.iter().map(|&d| bits_needed(d)).max().unwrap_or(0);
            w.write_bits(width as u64, 8);
            w.write_run(chunk, width);
        }
        Ok(CompressedBlock::new(self.id(), data.len(), w.finish()))
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut r = BitReader::new(&block.payload);
        let precision = r.read_bits(8)? as u8;
        let first = r.read_bits(64)? as i64;
        let mut q = Vec::with_capacity(n);
        q.push(first);
        let mut remaining = n - 1;
        let mut prev = first;
        let mut lane = [0u64; BLOCK];
        while remaining > 0 {
            let width = r.read_bits(8)? as u32;
            if width > 64 {
                return Err(CodecError::Corrupt("sprintz width > 64"));
            }
            let take = remaining.min(BLOCK);
            r.read_run(&mut lane[..take], width)?;
            for &z in &lane[..take] {
                prev = prev.wrapping_add(zigzag_decode(z));
                q.push(prev);
            }
            remaining -= take;
        }
        dequantize(&q, precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::round_to_precision;

    fn roundtrip(data: &[f64], precision: u8) {
        let s = Sprintz::new(precision);
        let block = s.compress(data).unwrap();
        let back = s.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            let expected = round_to_precision(*a, precision);
            assert!(
                (expected - b).abs() < 1e-9,
                "expected {expected}, got {b} (orig {a})"
            );
        }
    }

    #[test]
    fn roundtrip_smooth() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.013).sin() * 3.0).collect();
        roundtrip(&data, 4);
    }

    #[test]
    fn roundtrip_various_precisions() {
        let data: Vec<f64> = (0..300).map(|i| i as f64 * 0.111 - 15.0).collect();
        for p in [0, 2, 4, 5, 6] {
            roundtrip(&data, p);
        }
    }

    #[test]
    fn roundtrip_single_and_pair() {
        roundtrip(&[42.4242], 4);
        roundtrip(&[1.0, -1.0], 4);
    }

    #[test]
    fn roundtrip_exact_block_boundaries() {
        // n-1 deltas exactly at 128 and around it.
        for n in [128, 129, 130, 256, 257] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            roundtrip(&data, 5);
        }
    }

    #[test]
    fn constant_series_compresses_hard() {
        let data = vec![41.25; 1024];
        let block = Sprintz::new(4).compress(&data).unwrap();
        // First value + per-block zero widths only: tiny.
        assert!(block.ratio() < 0.01, "ratio {}", block.ratio());
    }

    #[test]
    fn smooth_series_beats_raw() {
        let data: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.002).sin()).collect();
        let block = Sprintz::new(4).compress(&data).unwrap();
        assert!(block.ratio() < 0.30, "ratio {}", block.ratio());
    }

    #[test]
    fn rejects_nan_and_huge() {
        assert!(Sprintz::new(4).compress(&[f64::NAN]).is_err());
        assert!(Sprintz::new(6).compress(&[1e18]).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Sprintz::new(4).compress(&[]), Err(CodecError::EmptyInput));
    }

    #[test]
    fn negative_jumps_roundtrip() {
        let data = vec![1000.0, -1000.0, 999.9999, -999.9999, 0.0001, -0.0001];
        roundtrip(&data, 4);
    }

    #[test]
    fn truncated_payload_detected() {
        let data: Vec<f64> = (0..200).map(|i| i as f64 * 1.5).collect();
        let block = Sprintz::new(4).compress(&data).unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(10);
        assert!(Sprintz::new(4).decompress(&bad).is_err());
    }
}
