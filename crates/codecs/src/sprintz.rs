//! Sprintz-style compression (Blalock et al., IMWUT 2018) for quantized
//! time series: delta prediction + zigzag + per-block bit-packing.
//!
//! The codec quantizes doubles to fixed-point integers at the dataset's
//! declared decimal precision (the paper tailors precision per dataset:
//! 4 digits for CBF, 5 for UCR, 6 for UCI), then encodes the first value
//! raw and the rest as zigzagged deltas packed in blocks of 128 with an
//! 8-bit width header each. Decompression restores the quantized values
//! exactly, which is the paper's definition of lossless for these codecs.

// Decode paths must survive arbitrary corrupted payloads; surface any
// unchecked indexing so new sites get an explicit justification.
#![warn(clippy::indexing_slicing)]

use crate::bitio::{bits_needed, BitReader, BitWriter};
use crate::block::{CodecId, CompressedBlock, CompressedBlockRef};
use crate::error::{CodecError, Result};
use crate::scratch::CodecScratch;
use crate::traits::{Codec, CodecKind};
use crate::util::{delta_zigzag_into, dequantize_into, quantize_into};

/// Deltas per bit-packed block.
const BLOCK: usize = 128;

/// Sprintz codec at a fixed decimal precision.
#[derive(Debug, Clone, Copy)]
pub struct Sprintz {
    precision: u8,
}

impl Sprintz {
    /// Create a Sprintz codec for data with `precision` significant decimal
    /// digits after the point (must be ≤ 12).
    pub fn new(precision: u8) -> Self {
        Self { precision }
    }

    /// The precision this codec quantizes to.
    pub fn precision(&self) -> u8 {
        self.precision
    }
}

impl Codec for Sprintz {
    fn id(&self) -> CodecId {
        CodecId::Sprintz
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Lossless
    }

    fn compress(&self, data: &[f64]) -> Result<CompressedBlock> {
        let mut scratch = CodecScratch::new();
        let n = self.compress_into(data, &mut scratch)?.n_points;
        Ok(CompressedBlock {
            codec: self.id(),
            n_points: n,
            payload: scratch.take_out(),
        })
    }

    fn decompress(&self, block: &CompressedBlock) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.decompress_into(block, &mut CodecScratch::new(), &mut out)?;
        Ok(out)
    }

    // `q[0]` is in bounds: `quantize_into` fills one slot per input point and
    // `data` is checked non-empty below.
    #[allow(clippy::indexing_slicing)]
    fn compress_into<'a>(
        &self,
        data: &[f64],
        scratch: &'a mut CodecScratch,
    ) -> Result<CompressedBlockRef<'a>> {
        if data.is_empty() {
            return Err(CodecError::EmptyInput);
        }
        let CodecScratch {
            out, u64s, i64s, ..
        } = scratch;
        quantize_into(data, self.precision, i64s)?;
        let q = &*i64s;
        delta_zigzag_into(q, u64s);
        let deltas = &*u64s;
        // Size estimate: header + per-block width bytes + two bytes per
        // delta, generous enough that smooth signals never regrow (and the
        // buffer's capacity persists across calls anyway).
        let estimate = 9 + deltas.len().div_ceil(BLOCK) + deltas.len() * 2;
        let mut w = BitWriter::over(std::mem::take(out));
        w.reserve(estimate);
        // Header: precision byte, then the first value raw.
        w.write_bits(self.precision as u64, 8);
        w.write_bits(q[0] as u64, 64);
        for chunk in deltas.chunks(BLOCK) {
            // OR-folding the deltas finds the block width with one
            // `bits_needed` instead of one per element (same MSB).
            let width = bits_needed(chunk.iter().fold(0, |acc, &d| acc | d));
            w.write_bits(width as u64, 8);
            w.write_run(chunk, width);
        }
        *out = w.finish();
        Ok(CompressedBlockRef::new(self.id(), data.len(), out))
    }

    // `take = (n - filled).min(BLOCK)` caps the `lane` slice at the array
    // length and `filled + take <= n == q.len()` bounds the output window.
    #[allow(clippy::indexing_slicing)]
    fn decompress_into(
        &self,
        block: &CompressedBlock,
        scratch: &mut CodecScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.check_block(block)?;
        let n = block.n_points as usize;
        out.clear();
        if n == 0 {
            return Ok(());
        }
        let mut r = BitReader::new(&block.payload);
        let precision = r.read_bits(8)? as u8;
        let first = r.read_bits(64)? as i64;
        let q = &mut scratch.i64s;
        q.clear();
        q.resize(n, 0);
        q[0] = first;
        let mut filled = 1usize;
        let mut prev = first;
        let mut lane = [0u64; BLOCK];
        let backend = crate::simd::active();
        while filled < n {
            let width = r.read_bits(8)? as u32;
            if width > 64 {
                return Err(CodecError::Corrupt("sprintz width > 64"));
            }
            let take = (n - filled).min(BLOCK);
            r.read_run(&mut lane[..take], width)?;
            // Bulk inverse transform: the backend unzigzags the lane and
            // accumulates it onto `prev` in one pass (AVX2 hosts break the
            // serial carry with a 4-lane prefix sum).
            prev = backend.unzigzag_undelta(prev, &lane[..take], &mut q[filled..filled + take]);
            filled += take;
        }
        dequantize_into(q, precision, out)
    }
}

#[allow(clippy::indexing_slicing)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::round_to_precision;

    fn roundtrip(data: &[f64], precision: u8) {
        let s = Sprintz::new(precision);
        let block = s.compress(data).unwrap();
        let back = s.decompress(&block).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            let expected = round_to_precision(*a, precision);
            assert!(
                (expected - b).abs() < 1e-9,
                "expected {expected}, got {b} (orig {a})"
            );
        }
    }

    #[test]
    fn roundtrip_smooth() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.013).sin() * 3.0).collect();
        roundtrip(&data, 4);
    }

    #[test]
    fn roundtrip_various_precisions() {
        let data: Vec<f64> = (0..300).map(|i| i as f64 * 0.111 - 15.0).collect();
        for p in [0, 2, 4, 5, 6] {
            roundtrip(&data, p);
        }
    }

    #[test]
    fn roundtrip_single_and_pair() {
        roundtrip(&[42.4242], 4);
        roundtrip(&[1.0, -1.0], 4);
    }

    #[test]
    fn roundtrip_exact_block_boundaries() {
        // n-1 deltas exactly at 128 and around it.
        for n in [128, 129, 130, 256, 257] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            roundtrip(&data, 5);
        }
    }

    #[test]
    fn constant_series_compresses_hard() {
        let data = vec![41.25; 1024];
        let block = Sprintz::new(4).compress(&data).unwrap();
        // First value + per-block zero widths only: tiny.
        assert!(block.ratio() < 0.01, "ratio {}", block.ratio());
    }

    #[test]
    fn smooth_series_beats_raw() {
        let data: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.002).sin()).collect();
        let block = Sprintz::new(4).compress(&data).unwrap();
        assert!(block.ratio() < 0.30, "ratio {}", block.ratio());
    }

    #[test]
    fn rejects_nan_and_huge() {
        assert!(Sprintz::new(4).compress(&[f64::NAN]).is_err());
        assert!(Sprintz::new(6).compress(&[1e18]).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Sprintz::new(4).compress(&[]), Err(CodecError::EmptyInput));
    }

    #[test]
    fn negative_jumps_roundtrip() {
        let data = vec![1000.0, -1000.0, 999.9999, -999.9999, 0.0001, -0.0001];
        roundtrip(&data, 4);
    }

    #[test]
    fn truncated_payload_detected() {
        let data: Vec<f64> = (0..200).map(|i| i as f64 * 1.5).collect();
        let block = Sprintz::new(4).compress(&data).unwrap();
        let mut bad = block.clone();
        bad.payload.truncate(10);
        assert!(Sprintz::new(4).decompress(&bad).is_err());
    }
}
