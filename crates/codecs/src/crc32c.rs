//! CRC-32C (Castagnoli) checksums for block framing.
//!
//! Software implementation of the iSCSI/ext4 polynomial (reflected
//! 0x82F63B78). The storage layer uses it to detect payload corruption on
//! store reads and in the v2 persist format, and the checksum now sits on
//! the segment framing path, so the default kernel is slicing-by-8: eight
//! input bytes are folded per iteration through eight precomputed tables,
//! turning the classic one-table byte loop's serial dependency chain into
//! eight independent lookups per load. [`crc32c_scalar_append`] keeps the
//! table-driven byte-at-a-time kernel as the reference implementation; the
//! two are equivalence-tested here and property-tested in
//! `tests/kernel_equivalence.rs`.

const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// `TABLES[k][b]` is the CRC contribution of byte `b` positioned `k` bytes
/// before the end of an 8-byte group: `TABLES[0]` is the classic table and
/// `TABLES[k+1][b] = TABLES[0][TABLES[k][b] & 0xFF] ^ (TABLES[k][b] >> 8)`
/// (one extra zero byte folded through).
const fn make_tables() -> [[u32; 256]; 8] {
    let t0 = make_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = t0[(prev & 0xFF) as usize] ^ (prev >> 8);
            b += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC-32C of `bytes` (the standard check value: `crc32c(b"123456789")`
/// is `0xE306_9283`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Extend a previously computed CRC-32C with more bytes, as if the two
/// byte runs had been hashed in one call. Start from `0`.
///
/// Slicing-by-8 kernel: each iteration XORs the running CRC into the low
/// half of an unaligned little-endian `u64` load and folds all eight bytes
/// through the eight tables at once.
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunk of 8")) ^ c as u64;
        c = TABLES[7][(w & 0xFF) as usize]
            ^ TABLES[6][((w >> 8) & 0xFF) as usize]
            ^ TABLES[5][((w >> 16) & 0xFF) as usize]
            ^ TABLES[4][((w >> 24) & 0xFF) as usize]
            ^ TABLES[3][((w >> 32) & 0xFF) as usize]
            ^ TABLES[2][((w >> 40) & 0xFF) as usize]
            ^ TABLES[1][((w >> 48) & 0xFF) as usize]
            ^ TABLES[0][(w >> 56) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Reference byte-at-a-time kernel ([`crc32c`] semantics). Kept for
/// equivalence tests and the `kernels` benchmark baseline; not used on any
/// hot path.
pub fn crc32c_scalar(bytes: &[u8]) -> u32 {
    crc32c_scalar_append(0, bytes)
}

/// Reference byte-at-a-time kernel ([`crc32c_append`] semantics).
pub fn crc32c_scalar_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from RFC 3720 / the iSCSI test suite.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn scalar_known_vectors() {
        assert_eq!(crc32c_scalar(b""), 0);
        assert_eq!(crc32c_scalar(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_scalar(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c_scalar(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn sliced_matches_scalar_all_lengths() {
        // Every length 0..64 crosses a different chunk/remainder split.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(151) >> 2) as u8)
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_scalar(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn append_composes() {
        let whole = crc32c(b"hello, world");
        let split = crc32c_append(crc32c(b"hello,"), b" world");
        assert_eq!(whole, split);
        // Composition also holds across a mid-word split and between kernels.
        let data = b"0123456789abcdef0123";
        for cut in 0..data.len() {
            let sliced = crc32c_append(crc32c(&data[..cut]), &data[cut..]);
            let scalar = crc32c_scalar_append(crc32c_scalar(&data[..cut]), &data[cut..]);
            assert_eq!(sliced, crc32c(data), "cut {cut}");
            assert_eq!(sliced, scalar, "cut {cut}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"adaedge segment payload".to_vec();
        let crc = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), crc, "byte {byte} bit {bit}");
            }
        }
    }
}
