//! CRC-32C (Castagnoli) checksums for block framing.
//!
//! Software table-driven implementation of the iSCSI/ext4 polynomial
//! (reflected 0x82F63B78). The storage layer uses it to detect payload
//! corruption on store reads and in the v2 persist format; the engine's
//! hot compression path never touches it, so a simple byte-at-a-time
//! kernel is plenty.

const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32C of `bytes` (the standard check value: `crc32c(b"123456789")`
/// is `0xE306_9283`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Extend a previously computed CRC-32C with more bytes, as if the two
/// byte runs had been hashed in one call. Start from `0`.
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from RFC 3720 / the iSCSI test suite.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_composes() {
        let whole = crc32c(b"hello, world");
        let split = crc32c_append(crc32c(b"hello,"), b" world");
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"adaedge segment payload".to_vec();
        let crc = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), crc, "byte {byte} bit {bit}");
            }
        }
    }
}
