//! CRC-32C (Castagnoli) checksums for block framing.
//!
//! The iSCSI/ext4 polynomial (reflected 0x82F63B78). The storage layer
//! uses it to detect payload corruption on store reads and in the v2
//! persist format, and the checksum sits on the segment framing path, so
//! the public entry points ([`crc32c`], [`crc32c_append`]) dispatch
//! through [`crate::simd::active`]: hosts with hardware CRC instructions
//! (SSE4.2 `crc32`, aarch64 FEAT_CRC32) run a 3-stream interleaved
//! hardware kernel, and everything else takes the portable slicing-by-8
//! kernel ([`append_swar`]) — eight input bytes folded per iteration
//! through eight precomputed tables, turning the classic one-table byte
//! loop's serial dependency chain into eight independent lookups per
//! load. [`append_scalar`] keeps the table-driven byte-at-a-time kernel
//! as the reference implementation. All tiers produce identical digests;
//! they are equivalence-tested here and property-tested per backend in
//! `tests/kernel_equivalence.rs`.

/// The reflected CRC-32C polynomial; also feeds the compile-time
/// zero-block combine operators in `simd::crc_shift`.
pub(crate) const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// `TABLES[k][b]` is the CRC contribution of byte `b` positioned `k` bytes
/// before the end of an 8-byte group: `TABLES[0]` is the classic table and
/// `TABLES[k+1][b] = TABLES[0][TABLES[k][b] & 0xFF] ^ (TABLES[k][b] >> 8)`
/// (one extra zero byte folded through).
const fn make_tables() -> [[u32; 256]; 8] {
    let t0 = make_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = t0[(prev & 0xFF) as usize] ^ (prev >> 8);
            b += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC-32C of `bytes` (the standard check value: `crc32c(b"123456789")`
/// is `0xE306_9283`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Extend a previously computed CRC-32C with more bytes, as if the two
/// byte runs had been hashed in one call. Start from `0`.
///
/// Dispatches to the best kernel the host supports (see
/// [`crate::simd`]); every tier produces identical digests.
#[inline]
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    crate::simd::active().crc32c_append(crc, bytes)
}

/// Portable slicing-by-8 kernel ([`crc32c_append`] semantics): each
/// iteration XORs the running CRC into the low half of an unaligned
/// little-endian `u64` load and folds all eight bytes through the eight
/// tables at once. The universal fallback tier.
pub(crate) fn append_swar(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunk of 8")) ^ c as u64;
        c = TABLES[7][(w & 0xFF) as usize]
            ^ TABLES[6][((w >> 8) & 0xFF) as usize]
            ^ TABLES[5][((w >> 16) & 0xFF) as usize]
            ^ TABLES[4][((w >> 24) & 0xFF) as usize]
            ^ TABLES[3][((w >> 32) & 0xFF) as usize]
            ^ TABLES[2][((w >> 40) & 0xFF) as usize]
            ^ TABLES[1][((w >> 48) & 0xFF) as usize]
            ^ TABLES[0][(w >> 56) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Reference byte-at-a-time kernel ([`crc32c_append`] semantics). The
/// `Backend::Scalar` tier: differential baseline for tests and benches,
/// never selected by detection.
pub(crate) fn append_scalar(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd;

    #[test]
    fn known_vectors() {
        // Check values from RFC 3720 / the iSCSI test suite, for the
        // dispatched entry point and every tier the host supports.
        for &b in simd::supported() {
            assert_eq!(b.crc32c_append(0, b""), 0, "{}", b.name());
            assert_eq!(
                b.crc32c_append(0, b"123456789"),
                0xE306_9283,
                "{}",
                b.name()
            );
            assert_eq!(b.crc32c_append(0, &[0u8; 32]), 0x8A91_36AA, "{}", b.name());
            assert_eq!(
                b.crc32c_append(0, &[0xFFu8; 32]),
                0x62A8_AB43,
                "{}",
                b.name()
            );
        }
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn all_tiers_match_scalar_all_lengths() {
        // Every length 0..=400 crosses a different chunk/remainder split
        // (and, for the hardware tiers, different word-tail mixes).
        let data: Vec<u8> = (0..400u32)
            .map(|i| (i.wrapping_mul(151) >> 2) as u8)
            .collect();
        for len in 0..=data.len() {
            let want = append_scalar(0, &data[..len]);
            for &b in simd::supported() {
                assert_eq!(
                    b.crc32c_append(0, &data[..len]),
                    want,
                    "{} len {len}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn append_composes() {
        let whole = crc32c(b"hello, world");
        let split = crc32c_append(crc32c(b"hello,"), b" world");
        assert_eq!(whole, split);
        // Composition also holds across a mid-word split and between tiers.
        let data = b"0123456789abcdef0123";
        for cut in 0..data.len() {
            let scalar = append_scalar(append_scalar(0, &data[..cut]), &data[cut..]);
            assert_eq!(scalar, crc32c(data), "cut {cut}");
            for &b in simd::supported() {
                let tier = b.crc32c_append(b.crc32c_append(0, &data[..cut]), &data[cut..]);
                assert_eq!(tier, scalar, "{} cut {cut}", b.name());
            }
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"adaedge segment payload".to_vec();
        let crc = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), crc, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn multi_stream_blocks_match_scalar() {
        // Lengths that exercise the 3-stream long/short block paths of the
        // hardware kernels: around 3*64, 3*1024, and mixed tails.
        let data: Vec<u8> = (0..4000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        for len in [
            191, 192, 193, 200, 383, 384, 576, 1000, 3071, 3072, 3073, 3264, 3999, 4000,
        ] {
            let want = append_scalar(0, &data[..len]);
            for &b in simd::supported() {
                assert_eq!(
                    b.crc32c_append(0, &data[..len]),
                    want,
                    "{} len {len}",
                    b.name()
                );
            }
        }
    }
}
