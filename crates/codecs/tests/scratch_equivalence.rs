//! Equivalence between the allocating codec API and the buffer-reuse API.
//!
//! For every codec and a spread of data profiles, `compress_into` must be
//! byte-for-byte identical to `compress`, and `decompress_into` must be
//! value-for-value (bit-exact) identical to `decompress` — including when
//! the same `CodecScratch` arena is reused across codecs and calls, and
//! for blocks produced by the lossy `compress_to_ratio` path.

use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch, CompressedBlock};
use proptest::prelude::*;

const PRECISION: u8 = 4;

/// Deterministic pseudo-random stream for data generation.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut x = seed | 1;
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn round(v: f64) -> f64 {
    let p = 10f64.powi(PRECISION as i32);
    (v * p).round() / p
}

/// One of several data profiles chosen by `profile % 5`.
fn generate(profile: u8, seed: u64, len: usize) -> Vec<f64> {
    let mut next = lcg(seed);
    match profile % 5 {
        // Smooth rounded signal (the quantizing codecs' home turf).
        0 => (0..len)
            .map(|i| round((i as f64 * 0.013).sin() * 3.0))
            .collect(),
        // Step/plateau signal (RLE/dict territory).
        1 => (0..len).map(|i| (i / 17) as f64).collect(),
        // Small value alphabet, shuffled.
        2 => {
            let alphabet: Vec<f64> = (0..4).map(|_| round(next() * 10.0)).collect();
            (0..len)
                .map(|_| alphabet[(next() * 4.0) as usize % 4])
                .collect()
        }
        // Rounded noise.
        3 => (0..len).map(|_| round(next() * 7.0 - 3.5)).collect(),
        // Constant.
        _ => vec![round(seed as f64 * 1e-3); len],
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Assert both API paths agree for one codec on one input, reusing the
/// caller's arena (so cross-call contamination would be caught too).
fn check_codec(
    reg: &CodecRegistry,
    id: CodecId,
    data: &[f64],
    scratch: &mut CodecScratch,
    out: &mut Vec<f64>,
) {
    let alloc = reg.get(id).compress(data);
    let reused = reg.compress_into(id, data, scratch);
    match (alloc, reused) {
        (Ok(block), Ok(blk_ref)) => {
            assert_eq!(blk_ref.codec, block.codec, "{id}: codec id");
            assert_eq!(blk_ref.n_points, block.n_points, "{id}: n_points");
            assert_eq!(blk_ref.payload, &block.payload[..], "{id}: payload bytes");
            check_decompress(reg, &block, scratch, out);
        }
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{id}: paths disagree on success: alloc {a:?} vs into {b:?}"),
    }
}

/// Assert both decompression paths reconstruct the same values.
fn check_decompress(
    reg: &CodecRegistry,
    block: &CompressedBlock,
    scratch: &mut CodecScratch,
    out: &mut Vec<f64>,
) {
    let alloc = reg.decompress(block).expect("allocating decompress");
    reg.decompress_into(block, scratch, out)
        .expect("buffer-reuse decompress");
    assert_eq!(
        bits(out),
        bits(&alloc),
        "{}: reconstruction mismatch",
        block.codec
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec, every profile: the two compression paths emit identical
    /// bytes and the two decompression paths identical values, through one
    /// shared arena.
    #[test]
    fn all_codecs_agree(profile in 0u8..5, seed in any::<u64>(), len in 1usize..400) {
        let reg = CodecRegistry::new(PRECISION);
        let data = generate(profile, seed, len);
        let mut scratch = CodecScratch::new();
        let mut out = Vec::new();
        for id in CodecId::ALL {
            check_codec(&reg, id, &data, &mut scratch, &mut out);
        }
    }

    /// Blocks produced by the lossy `compress_to_ratio` path decompress
    /// identically through both APIs.
    #[test]
    fn lossy_ratio_blocks_agree(profile in 0u8..5, seed in any::<u64>(), len in 64usize..512) {
        let reg = CodecRegistry::new(PRECISION);
        let data = generate(profile, seed, len);
        let mut scratch = CodecScratch::new();
        let mut out = Vec::new();
        for id in CodecRegistry::lossy_candidates() {
            let lossy = reg.get_lossy(id).expect("lossy candidate");
            for ratio in [0.5, 0.3] {
                if let Ok(block) = lossy.compress_to_ratio(&data, ratio) {
                    check_decompress(&reg, &block, &mut scratch, &mut out);
                }
            }
        }
    }
}

/// A dirty arena (left over from a different codec on different data) must
/// not leak into the next compression.
#[test]
fn scratch_reuse_across_codecs_is_clean() {
    let reg = CodecRegistry::new(PRECISION);
    let mut scratch = CodecScratch::new();
    let mut out = Vec::new();
    let long = generate(3, 99, 900);
    let short = generate(1, 7, 33);
    // Interleave codecs and inputs of very different sizes.
    for round in 0..3 {
        for id in CodecId::ALL {
            let data = if (round + id as usize).is_multiple_of(2) {
                &long
            } else {
                &short
            };
            check_codec(&reg, id, data, &mut scratch, &mut out);
        }
    }
}

/// Special values (NaN payloads, signed zero, infinities) roundtrip
/// bit-exactly through both paths on the bit-pattern codecs.
#[test]
fn special_values_agree() {
    let reg = CodecRegistry::new(PRECISION);
    let mut scratch = CodecScratch::new();
    let mut out = Vec::new();
    let data = [
        f64::NAN,
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1.5,
        f64::NAN,
        1.5,
    ];
    for id in [
        CodecId::Raw,
        CodecId::Rle,
        CodecId::Dict,
        CodecId::Gorilla,
        CodecId::Chimp,
        CodecId::Snappy,
        CodecId::Gzip,
        CodecId::Zlib6,
    ] {
        check_codec(&reg, id, &data, &mut scratch, &mut out);
    }
    // Codecs that reject non-finite input must do so on both paths.
    for id in [CodecId::Elf, CodecId::Sprintz, CodecId::Buff] {
        assert!(reg.get(id).compress(&data).is_err(), "{id}");
        assert!(reg.compress_into(id, &data, &mut scratch).is_err(), "{id}");
    }
}

/// Empty input errors on both paths for every codec.
#[test]
fn empty_input_agrees() {
    let reg = CodecRegistry::new(PRECISION);
    let mut scratch = CodecScratch::new();
    for id in CodecId::ALL {
        assert!(reg.get(id).compress(&[]).is_err(), "{id}: alloc path");
        assert!(
            reg.compress_into(id, &[], &mut scratch).is_err(),
            "{id}: into path"
        );
    }
}
