//! Property tests pinning every hot-loop kernel tier to the naive scalar
//! reference, across the whole backend ladder the host supports.
//!
//! `adaedge_codecs::simd::supported()` lists every runnable tier
//! (`[Scalar, Swar, ..]` plus whichever of SSE4.2/AVX2/NEON the CPU has),
//! and each property compares every tier against `Backend::Scalar` — so
//! on an AVX2 box one `cargo test` differentially validates scalar vs
//! SWAR vs SSE4.2 vs AVX2 in-process, over random lengths, alignments
//! (sub-slicing at random offsets), staging states, and ragged tails.
//! The fused quantize / float-serialization loops (no SIMD tier) keep
//! their naive per-element references written out here in the most
//! obvious way.

use adaedge_codecs::bitio::zigzag_encode;
use adaedge_codecs::crc32c::crc32c;
use adaedge_codecs::simd::{self, Backend};
use adaedge_codecs::util::{
    bytes_to_f64s, delta_zigzag_into, dequantize, f64s_to_bytes, pow10, quantize,
};
use proptest::prelude::*;

/// Naive per-element quantization: the pre-optimization formulation.
fn quantize_naive(data: &[f64], precision: u8) -> Option<Vec<i64>> {
    let scale = pow10(precision).ok()?;
    let mut out = Vec::with_capacity(data.len());
    for &v in data {
        if !v.is_finite() {
            return None;
        }
        let x = v * scale;
        if x.abs() >= 4.5e15 {
            return None;
        }
        out.push(x.round() as i64);
    }
    Some(out)
}

/// The ladder above `Scalar`; every tier must agree with the reference.
fn tiers() -> impl Iterator<Item = Backend> {
    simd::supported().iter().copied().skip(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn crc_tiers_match_scalar_at_every_length_and_offset(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        offset in 0usize..32,
    ) {
        // Sub-slicing at a random offset exercises every alignment of the
        // unaligned 8-byte loads.
        let s = &bytes[offset.min(bytes.len())..];
        let want = Backend::Scalar.crc32c_append(0, s);
        prop_assert_eq!(crc32c(s), want);
        for b in tiers() {
            prop_assert_eq!(b.crc32c_append(0, s), want, "{}", b.name());
        }
    }

    #[test]
    fn crc_tiers_compose_across_random_splits(
        bytes in prop::collection::vec(any::<u8>(), 0..4000),
        split in any::<usize>(),
        seed in any::<u32>(),
    ) {
        // Lengths up to 4000 cross the hardware kernels' 3-stream short
        // (3*64) and long (3*1024) block thresholds mid-stream.
        let mid = if bytes.is_empty() { 0 } else { split % bytes.len() };
        let (head, tail) = bytes.split_at(mid);
        // Streaming from an arbitrary prior state must agree between the
        // tiers, and composing append over a split must equal one shot.
        let want_head = Backend::Scalar.crc32c_append(seed, head);
        let want_all = Backend::Scalar.crc32c_append(want_head, tail);
        for b in tiers() {
            let h = b.crc32c_append(seed, head);
            prop_assert_eq!(h, want_head, "head {}", b.name());
            prop_assert_eq!(b.crc32c_append(h, tail), want_all, "tail {}", b.name());
        }
    }

    #[test]
    fn match_extension_tiers_match_byte_loop(
        mut data in prop::collection::vec(any::<u8>(), 2..512),
        a_idx in any::<usize>(),
        b_idx in any::<usize>(),
        max_idx in any::<usize>(),
        copy_back in any::<bool>(),
    ) {
        let len = data.len();
        let (mut a, mut b) = (a_idx % len, b_idx % len);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if copy_back && a < b {
            // Plant a genuine match so long extensions are exercised, not
            // just immediate mismatches of random bytes.
            let n = (len - b).min(b - a);
            let (head, tail) = data.split_at_mut(b);
            tail[..n].copy_from_slice(&head[a..a + n]);
        }
        let max = max_idx % (len - b + 1);
        let want = Backend::Scalar.match_len(&data, a, b, max);
        for t in tiers() {
            prop_assert_eq!(t.match_len(&data, a, b, max), want, "{}", t.name());
        }
    }

    #[test]
    fn pack_run_tiers_match_bit_by_bit_reference(
        values in prop::collection::vec(any::<u64>(), 0..200),
        offset in 0usize..8,
        width in 1u32..=64,
        nacc in 0u32..64,
        stage in any::<u64>(),
    ) {
        // Random staging state: `nacc` bits already latched in the high end
        // of the accumulator (as after any partial write), random `values`
        // sub-slice alignment via `offset`.
        let acc = if nacc == 0 { 0 } else { stage & !((1u64 << (64 - nacc)) - 1) };
        let vals = &values[offset.min(values.len())..];
        let mut want_buf = Vec::new();
        let want = Backend::Scalar.pack_run(&mut want_buf, acc, nacc, vals, width);
        for b in tiers() {
            let mut buf = Vec::new();
            let got = b.pack_run(&mut buf, acc, nacc, vals, width);
            prop_assert_eq!(got, want, "state {}", b.name());
            prop_assert_eq!(&buf, &want_buf, "bytes {}", b.name());
        }
    }

    #[test]
    fn unpack_run_tiers_match_bit_by_bit_reference(
        buf in prop::collection::vec(any::<u8>(), 1..400),
        pos_idx in any::<usize>(),
        width in 1u32..=64,
        take_idx in any::<usize>(),
    ) {
        // Random bit cursor (any intra-byte phase) and the largest-minus-
        // random run that still fits, so ragged tails of every residue
        // against the 4-lane step are produced.
        let total_bits = buf.len() * 8;
        let pos = pos_idx % total_bits;
        let fit = (total_bits - pos) / width as usize;
        let take = if fit == 0 { 0 } else { take_idx % (fit + 1) };
        let mut want = vec![0u64; take];
        let want_pos = Backend::Scalar.unpack_run(&buf, pos, &mut want, width);
        for b in tiers() {
            let mut out = vec![0u64; take];
            let got_pos = b.unpack_run(&buf, pos, &mut out, width);
            prop_assert_eq!(got_pos, want_pos, "cursor {}", b.name());
            prop_assert_eq!(&out, &want, "fields {}", b.name());
        }
    }

    #[test]
    fn pack_then_unpack_roundtrips_across_tiers(
        values in prop::collection::vec(any::<u64>(), 1..150),
        width in 1u32..=64,
    ) {
        // Cross-tier wire compatibility: bytes packed by any tier must
        // unpack identically on any other tier.
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        for packer in simd::supported() {
            let mut buf = Vec::new();
            let (acc, nacc) = packer.pack_run(&mut buf, 0, 0, &values, width);
            if nacc > 0 {
                buf.extend_from_slice(&acc.to_be_bytes()[..(nacc as usize).div_ceil(8)]);
            }
            for unpacker in simd::supported() {
                let mut out = vec![0u64; values.len()];
                unpacker.unpack_run(&buf, 0, &mut out, width);
                prop_assert_eq!(&out, &masked, "{} -> {}", packer.name(), unpacker.name());
            }
        }
    }

    #[test]
    fn delta_zigzag_tiers_match_windows_loop(
        q in prop::collection::vec(any::<i64>(), 0..300),
    ) {
        let naive: Vec<u64> = q
            .windows(2)
            .map(|w| zigzag_encode(w[1].wrapping_sub(w[0])))
            .collect();
        let mut fused = Vec::new();
        delta_zigzag_into(&q, &mut fused);
        prop_assert_eq!(&fused, &naive);
        if q.len() >= 2 {
            for b in tiers() {
                let mut out = vec![0u64; q.len() - 1];
                b.delta_zigzag(&q, &mut out);
                prop_assert_eq!(&out, &naive, "{}", b.name());
            }
        }
    }

    #[test]
    fn unzigzag_undelta_tiers_invert_delta_zigzag(
        q in prop::collection::vec(any::<i64>(), 2..300),
    ) {
        // Forward-transform with the scalar tier, invert with every tier:
        // must reproduce the original series and final value exactly
        // (wrapping arithmetic end to end).
        let mut zs = vec![0u64; q.len() - 1];
        Backend::Scalar.delta_zigzag(&q, &mut zs);
        for b in simd::supported() {
            let mut out = vec![0i64; zs.len()];
            let last = b.unzigzag_undelta(q[0], &zs, &mut out);
            prop_assert_eq!(&out, &q[1..], "series {}", b.name());
            prop_assert_eq!(last, *q.last().unwrap(), "final {}", b.name());
        }
    }

    #[test]
    fn dequantize_tiers_are_bit_exact(
        q in prop::collection::vec(any::<i64>(), 0..300),
        precision in 0u8..=6,
    ) {
        // Bit-exact, not approximately equal: every tier must keep the
        // correctly-rounded IEEE division (a reciprocal multiply would
        // round differently), including the extreme-magnitude quadrants of
        // the full i64 range that the AVX2 conversion trick must cover.
        let scale = pow10(precision).unwrap();
        let naive: Vec<u64> = q.iter().map(|&x| (x as f64 / scale).to_bits()).collect();
        let fused = dequantize(&q, precision).unwrap();
        prop_assert_eq!(fused.len(), naive.len());
        for (f, n) in fused.iter().zip(&naive) {
            prop_assert_eq!(f.to_bits(), *n);
        }
        for b in tiers() {
            let mut out = vec![0.0f64; q.len()];
            b.dequantize(&q, scale, &mut out);
            for (f, n) in out.iter().zip(&naive) {
                prop_assert_eq!(f.to_bits(), *n, "{}", b.name());
            }
        }
    }

    #[test]
    fn fused_quantize_matches_naive_reference(
        data in prop::collection::vec(-1.0e8f64..1.0e8, 0..300),
        precision in 0u8..=6,
    ) {
        prop_assert_eq!(quantize(&data, precision).ok(), quantize_naive(&data, precision));
    }

    #[test]
    fn fused_quantize_rejects_what_the_naive_loop_rejects(
        mut data in prop::collection::vec(any::<f64>(), 1..130),
        poison in any::<usize>(),
        kind in 0u8..3,
    ) {
        // Guarantee at least one rejecting value at a random position (the
        // rest of the vector is arbitrary bit-pattern floats).
        let i = poison % data.len();
        data[i] = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => 1.0e18,
        };
        prop_assert!(quantize(&data, 4).is_err());
        prop_assert!(quantize_naive(&data, 4).is_none());
    }

    #[test]
    fn bulk_float_serialization_matches_per_element(
        data in prop::collection::vec(any::<f64>(), 0..200),
    ) {
        let mut naive = Vec::new();
        for v in &data {
            naive.extend_from_slice(&v.to_le_bytes());
        }
        let bulk = f64s_to_bytes(&data);
        prop_assert_eq!(&bulk, &naive);
        let back = bytes_to_f64s(&bulk).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (b, d) in back.iter().zip(&data) {
            prop_assert_eq!(b.to_bits(), d.to_bits());
        }
    }
}

/// The boundary tails proptest sampling can miss: exact 4-lane multiples,
/// one-off residues, and the width limits of the AVX2 pack (16) and
/// unpack (14) fast paths.
#[test]
fn run_kernels_cover_width_and_tail_boundaries() {
    let values: Vec<u64> = (0..70u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    for width in [1u32, 7, 8, 13, 14, 15, 16, 17, 63, 64] {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 16, 64, 65, 70] {
            let vals = &values[..n];
            let mut want_buf = Vec::new();
            let want = Backend::Scalar.pack_run(&mut want_buf, 0, 0, vals, width);
            for b in simd::supported().iter().skip(1) {
                let mut buf = Vec::new();
                let got = b.pack_run(&mut buf, 0, 0, vals, width);
                assert_eq!((got, &buf), (want, &want_buf), "{} w{width} n{n}", b.name());
            }
            // Unpack the scalar bytes (flushed) back on every tier.
            let mut flushed = want_buf.clone();
            if want.1 > 0 {
                flushed.extend_from_slice(&want.0.to_be_bytes()[..(want.1 as usize).div_ceil(8)]);
            }
            let mut expect = vec![0u64; n];
            Backend::Scalar.unpack_run(&flushed, 0, &mut expect, width);
            for b in simd::supported().iter().skip(1) {
                let mut out = vec![0u64; n];
                b.unpack_run(&flushed, 0, &mut out, width);
                assert_eq!(out, expect, "unpack {} w{width} n{n}", b.name());
            }
        }
    }
}

/// The forced-backend seam: `ADAEDGE_SIMD` is read once per process, so
/// this test (run with and without the env var by CI) just pins that the
/// resolved backend is executable and listed.
#[test]
fn active_backend_is_always_supported() {
    let active = simd::active();
    assert!(active.is_supported(), "{}", active.name());
    assert!(simd::supported().contains(&active));
    if let Ok(name) = std::env::var("ADAEDGE_SIMD") {
        if let Some(requested) = Backend::from_name(name.trim()) {
            if requested.is_supported() {
                assert_eq!(
                    active, requested,
                    "supported forced backend must be honored"
                );
            }
        }
    }
}
