//! Property tests pinning every SWAR/fused hot-loop kernel to a naive
//! scalar reference: slicing-by-8 CRC-32C vs the table-driven byte loop,
//! word-at-a-time match extension vs byte comparison, and the fused
//! quantize / dequantize / delta-zigzag / float-serialization loops vs
//! per-element formulations written out here in the most obvious way.

use adaedge_codecs::bitio::zigzag_encode;
use adaedge_codecs::crc32c::{crc32c, crc32c_append, crc32c_scalar, crc32c_scalar_append};
use adaedge_codecs::lz::{match_len, match_len_scalar};
use adaedge_codecs::util::{
    bytes_to_f64s, delta_zigzag_into, dequantize, f64s_to_bytes, pow10, quantize,
};
use proptest::prelude::*;

/// Naive per-element quantization: the pre-optimization formulation.
fn quantize_naive(data: &[f64], precision: u8) -> Option<Vec<i64>> {
    let scale = pow10(precision).ok()?;
    let mut out = Vec::with_capacity(data.len());
    for &v in data {
        if !v.is_finite() {
            return None;
        }
        let x = v * scale;
        if x.abs() >= 4.5e15 {
            return None;
        }
        out.push(x.round() as i64);
    }
    Some(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sliced_crc_matches_scalar_at_every_length_and_offset(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        offset in 0usize..32,
    ) {
        // Sub-slicing at a random offset exercises every alignment of the
        // unaligned 8-byte loads.
        let s = &bytes[offset.min(bytes.len())..];
        prop_assert_eq!(crc32c(s), crc32c_scalar(s));
    }

    #[test]
    fn sliced_crc_composes_across_random_splits(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        split in any::<usize>(),
        seed in any::<u32>(),
    ) {
        let mid = if bytes.is_empty() { 0 } else { split % bytes.len() };
        let (head, tail) = bytes.split_at(mid);
        // Streaming from an arbitrary prior state must agree between the
        // kernels, and composing append over a split must equal one shot.
        let a = crc32c_append(seed, head);
        let b = crc32c_scalar_append(seed, head);
        prop_assert_eq!(a, b);
        prop_assert_eq!(crc32c_append(a, tail), crc32c_scalar_append(b, tail));
        prop_assert_eq!(crc32c_append(crc32c_append(0, head), tail), crc32c(&bytes));
    }

    #[test]
    fn swar_match_extension_matches_byte_loop(
        mut data in prop::collection::vec(any::<u8>(), 2..512),
        a_idx in any::<usize>(),
        b_idx in any::<usize>(),
        max_idx in any::<usize>(),
        copy_back in any::<bool>(),
    ) {
        let len = data.len();
        let (mut a, mut b) = (a_idx % len, b_idx % len);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if copy_back && a < b {
            // Plant a genuine match so long extensions are exercised, not
            // just immediate mismatches of random bytes.
            let n = (len - b).min(b - a);
            let (head, tail) = data.split_at_mut(b);
            tail[..n].copy_from_slice(&head[a..a + n]);
        }
        let max = max_idx % (len - b + 1);
        prop_assert_eq!(
            match_len(&data, a, b, max),
            match_len_scalar(&data, a, b, max)
        );
    }

    #[test]
    fn fused_quantize_matches_naive_reference(
        data in prop::collection::vec(-1.0e8f64..1.0e8, 0..300),
        precision in 0u8..=6,
    ) {
        prop_assert_eq!(quantize(&data, precision).ok(), quantize_naive(&data, precision));
    }

    #[test]
    fn fused_quantize_rejects_what_the_naive_loop_rejects(
        mut data in prop::collection::vec(any::<f64>(), 1..130),
        poison in any::<usize>(),
        kind in 0u8..3,
    ) {
        // Guarantee at least one rejecting value at a random position (the
        // rest of the vector is arbitrary bit-pattern floats).
        let i = poison % data.len();
        data[i] = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => 1.0e18,
        };
        prop_assert!(quantize(&data, 4).is_err());
        prop_assert!(quantize_naive(&data, 4).is_none());
    }

    #[test]
    fn fused_dequantize_matches_naive_division(
        q in prop::collection::vec(-4_000_000_000_000i64..4_000_000_000_000, 0..300),
        precision in 0u8..=6,
    ) {
        let scale = pow10(precision).unwrap();
        let naive: Vec<f64> = q.iter().map(|&x| x as f64 / scale).collect();
        let fused = dequantize(&q, precision).unwrap();
        // Bit-exact, not approximately equal: the fused loop must keep the
        // division (a reciprocal multiply would round differently).
        prop_assert_eq!(fused.len(), naive.len());
        for (f, n) in fused.iter().zip(&naive) {
            prop_assert_eq!(f.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn fused_delta_zigzag_matches_windows_loop(
        q in prop::collection::vec(any::<i64>(), 0..300),
    ) {
        let naive: Vec<u64> = q
            .windows(2)
            .map(|w| zigzag_encode(w[1].wrapping_sub(w[0])))
            .collect();
        let mut fused = Vec::new();
        delta_zigzag_into(&q, &mut fused);
        prop_assert_eq!(fused, naive);
    }

    #[test]
    fn bulk_float_serialization_matches_per_element(
        data in prop::collection::vec(any::<f64>(), 0..200),
    ) {
        let mut naive = Vec::new();
        for v in &data {
            naive.extend_from_slice(&v.to_le_bytes());
        }
        let bulk = f64s_to_bytes(&data);
        prop_assert_eq!(&bulk, &naive);
        let back = bytes_to_f64s(&bulk).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (b, d) in back.iter().zip(&data) {
            prop_assert_eq!(b.to_bits(), d.to_bits());
        }
    }
}
