//! Property tests for the word-at-a-time bit I/O layer.
//!
//! Each case generates a random script of mixed `write_bit` / `write_bits` /
//! `write_run` ops at widths 0..=64 and replays it at all 8 starting bit
//! alignments. The emitted bytes are checked against a naive bit-vector
//! model of the MSB-first wire format, and the stream is read back with the
//! mirrored `read_bit` / `read_bits` / `read_run` ops.

use adaedge_codecs::bitio::{BitReader, BitWriter};
use proptest::prelude::*;

/// One scripted operation: `(kind, seed, width, run_len)`.
///
/// `kind % 3` selects the op; `seed` feeds the value (or, for `write_run`,
/// an LCG that expands it into `run_len` values).
type Op = (u8, u64, u32, usize);

fn mask(width: u32) -> u64 {
    if width == 0 {
        0
    } else if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Expand an op's seed into the values a `write_run` call packs.
fn run_values(seed: u64, width: u32, len: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x & mask(width)
        })
        .collect()
}

/// Append `width` bits of `value` (MSB-first) to the reference bit vector.
fn model_push(bits: &mut Vec<bool>, value: u64, width: u32) {
    for i in (0..width).rev() {
        bits.push((value >> i) & 1 == 1);
    }
}

/// Pack the reference bit vector into bytes, zero-padding the final byte.
fn model_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out
}

/// Run one script at one starting alignment; returns the packed stream.
fn check_script(ops: &[Op], lead: u32) -> Result<(), TestCaseError> {
    let mut w = BitWriter::new();
    let mut bits: Vec<bool> = Vec::new();
    for i in 0..lead {
        let bit = i % 2 == 0;
        w.write_bit(bit);
        bits.push(bit);
    }
    for &(kind, seed, width, run_len) in ops {
        match kind % 3 {
            0 => {
                w.write_bit(seed & 1 == 1);
                bits.push(seed & 1 == 1);
            }
            1 => {
                w.write_bits(seed, width);
                model_push(&mut bits, seed & mask(width), width);
            }
            _ => {
                let values = run_values(seed, width, run_len);
                w.write_run(&values, width);
                for &v in &values {
                    model_push(&mut bits, v, width);
                }
            }
        }
    }
    let bytes = w.finish();
    prop_assert_eq!(
        &bytes,
        &model_bytes(&bits),
        "packed bytes diverge from model at lead {}",
        lead
    );

    // Read the stream back with the mirrored ops.
    let mut r = BitReader::new(&bytes);
    for i in 0..lead {
        prop_assert_eq!(r.read_bit().unwrap(), i % 2 == 0);
    }
    for &(kind, seed, width, run_len) in ops {
        match kind % 3 {
            0 => prop_assert_eq!(r.read_bit().unwrap(), seed & 1 == 1),
            1 => prop_assert_eq!(r.read_bits(width).unwrap(), seed & mask(width)),
            _ => {
                let expected = run_values(seed, width, run_len);
                let mut got = vec![0u64; run_len];
                r.read_run(&mut got, width).unwrap();
                prop_assert_eq!(got, expected);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mixed_ops_roundtrip_at_every_alignment(
        ops in prop::collection::vec(
            (any::<u8>(), any::<u64>(), 0u32..=64, 0usize..9),
            1..60,
        ),
    ) {
        for lead in 0..8 {
            check_script(&ops, lead)?;
        }
    }

    #[test]
    fn pure_runs_roundtrip(
        seed in any::<u64>(),
        width in 0u32..=64,
        len in 0usize..400,
        lead in 0u32..8,
    ) {
        let ops = [(2u8, seed, width, len)];
        check_script(&ops, lead)?;
    }

    #[test]
    fn byte_aligned_runs_roundtrip(
        seed in any::<u64>(),
        width_bytes in 1u32..=8,
        len in 0usize..200,
    ) {
        // Exercises the memcpy fast path (cursor and width byte-aligned).
        let ops = [(2u8, seed, width_bytes * 8, len)];
        check_script(&ops, 0)?;
    }
}
