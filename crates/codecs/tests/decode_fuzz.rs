//! Deterministic decode fault-injection harness.
//!
//! Every registered codec's decoder is fed thousands of seeded mutations
//! (bit flips, truncations, extensions) of a golden compressed block, plus
//! degenerate payloads, and must uphold the corruption contract:
//!
//! * never panic — corrupted input returns `Err(CodecError::…)`;
//! * never produce more than `n_points` values on a successful decode
//!   (which bounds allocation by the header's claim, not the payload's).
//!
//! Seeds are fixed, so a failure reproduces exactly; the failing codec,
//! case index, and fault kind are in the assertion message.

use adaedge_codecs::faultkit;
use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch, CompressedBlock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Seeded mutation cases per codec (ISSUE floor: 2000).
const CASES_PER_CODEC: usize = 2500;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.013).sin() * 3.0 * 1e4).round() / 1e4)
        .collect()
}

fn golden_block(reg: &CodecRegistry, id: CodecId) -> CompressedBlock {
    reg.get(id)
        .compress(&signal(512))
        .unwrap_or_else(|e| panic!("{id}: golden fixture must compress: {e}"))
}

/// Decode `block` under `catch_unwind`, asserting error-not-panic and the
/// `n_points` output cap. `label` identifies the case in failures.
fn assert_contained(reg: &CodecRegistry, block: &CompressedBlock, via_into: bool, label: &str) {
    let cap = block.n_points as usize;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if via_into {
            let mut scratch = CodecScratch::new();
            let mut out = Vec::new();
            reg.decompress_into(block, &mut scratch, &mut out)
                .map(|()| out.len())
        } else {
            reg.decompress(block).map(|v| v.len())
        }
    }));
    match outcome {
        Ok(Ok(len)) => assert!(
            len <= cap,
            "{label}: decode produced {len} points, header claimed {cap}"
        ),
        Ok(Err(_)) => {} // clean rejection — the contract
        Err(_) => panic!("{label}: decoder panicked on corrupted input"),
    }
}

#[test]
fn mutated_payloads_error_instead_of_panicking() {
    let reg = CodecRegistry::new(4);
    for (idx, id) in CodecId::ALL.into_iter().enumerate() {
        let golden = golden_block(&reg, id);
        let mut rng = SmallRng::seed_from_u64(0xADAE_D6E0 + idx as u64);
        for case in 0..CASES_PER_CODEC {
            let mut block = golden.clone();
            let fault = faultkit::mutate(&mut block.payload, &mut rng);
            // A quarter of the cases also lie about the point count, so
            // header/payload disagreement is exercised (the fft-class bug).
            if rng.gen_bool(0.25) {
                block.n_points = rng.gen_range(0..=1024u32);
            }
            let label = format!("{id} case {case} ({fault:?}, n_points={})", block.n_points);
            assert_contained(&reg, &block, case % 2 == 1, &label);
        }
    }
}

#[test]
fn degenerate_payloads_error_instead_of_panicking() {
    let reg = CodecRegistry::new(4);
    let payloads: [Vec<u8>; 6] = [
        vec![],
        vec![0x00],
        vec![0xFF],
        vec![0x00; 64],
        vec![0xFF; 64],
        vec![0xA5; 7],
    ];
    for id in CodecId::ALL {
        for (p, payload) in payloads.iter().enumerate() {
            for n_points in [0u32, 1, 512, 1 << 20] {
                let block = CompressedBlock {
                    codec: id,
                    n_points,
                    payload: payload.clone(),
                };
                // The 1<<20 case claims a million points backed by < 65
                // payload bytes: decoders must reject the mismatch rather
                // than trust the header.
                let label = format!("{id} degenerate payload #{p}, n_points={n_points}");
                assert_contained(&reg, &block, p % 2 == 1, &label);
            }
        }
    }
}

#[test]
fn truncation_ladder_is_contained_for_every_codec() {
    // Walk every prefix length of the golden payload: catches decoders
    // that read headers or trailing state without bounds checks.
    let reg = CodecRegistry::new(4);
    for id in CodecId::ALL {
        let golden = golden_block(&reg, id);
        let step = (golden.payload.len() / 64).max(1);
        for len in (0..golden.payload.len()).step_by(step) {
            let block = CompressedBlock {
                codec: id,
                n_points: golden.n_points,
                payload: golden.payload[..len].to_vec(),
            };
            let label = format!("{id} truncated to {len}/{} bytes", golden.payload.len());
            assert_contained(&reg, &block, len % 2 == 1, &label);
        }
    }
}
