//! Golden-bytes tests pinning the MSB-first wire format.
//!
//! The fixtures below were captured from the original byte-at-a-time
//! `BitWriter` / `BitReader` implementation. Any change to the bit I/O layer
//! (such as the word-at-a-time rewrite) must keep every codec's compressed
//! output byte-identical, and these tests prove it: a scripted mixed-op
//! writer sequence is pinned literally, and each bit-oriented codec's payload
//! over a fixed signal is pinned by length + FNV-1a hash.

use adaedge_codecs::bitio::BitWriter;
use adaedge_codecs::{CodecId, CodecRegistry};

/// FNV-1a 64-bit hash, enough to detect any byte-level change.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic signal: a rounded sine sweep with enough structure for
/// every codec (smooth for XOR codecs, low-precision for BUFF/Sprintz).
fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.013).sin() * 3.0 * 1e4).round() / 1e4)
        .collect()
}

/// Scripted mixed-op writer sequence: single bits, multi-bit writes at every
/// width 0..=64, alignment padding, and byte-slice appends, driven by a
/// fixed-seed LCG so every alignment state is visited.
fn scripted_sequence() -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut state: u64 = 0x243F_6A88_85A3_08D3;
    for _ in 0..2000 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        match state % 8 {
            0 => w.write_bit(state & 0x100 != 0),
            1 | 2 => {
                let width = ((state >> 8) % 65) as u32;
                w.write_bits(state >> 16, width);
            }
            3 => {
                let width = ((state >> 8) % 33) as u32;
                w.write_bits(state >> 16, width);
            }
            4 => w.align_to_byte(),
            5 => {
                let n = ((state >> 9) % 5) as usize;
                w.write_bytes(&state.to_le_bytes()[..n]);
            }
            _ => w.write_bit(state & 1 != 0),
        }
    }
    w.finish()
}

/// Expected (length, fnv1a) of the scripted sequence.
const SCRIPTED_GOLDEN: (usize, u64) = (3260, 0x1996_dd87_05be_3ebb);

/// A short scripted prefix pinned literally, so a failure shows the exact
/// diverging byte instead of just a hash mismatch.
const PREFIX_GOLDEN: [u8; 23] = [
    0xbd, 0xea, 0xdb, 0xee, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf9, 0x18, 0xab, 0xcd,
    0xfe, 0x0f, 0x0f, 0xf0, 0xf0, 0x7f, 0xfe,
];

fn prefix_sequence() -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(0b101, 3);
    w.write_bit(true);
    w.write_bits(0xDEAD_BEEF, 32);
    w.write_bits(u64::MAX, 64);
    w.write_bits(0x123, 9);
    w.align_to_byte();
    w.write_bytes(&[0xAB, 0xCD]);
    w.write_bits(0x7F, 7);
    w.write_bits(0, 0);
    w.write_bits(0x0F0F_F0F0, 33);
    w.write_bit(false);
    w.write_bits(0x3FFF, 14);
    w.finish()
}

/// Expected (length, fnv1a) per codec payload for `signal(512)`. The two
/// `BuffLossy` rows are the ratio-0.3 payload and its ratio-0.15 recode.
const CODEC_GOLDENS: &[(CodecId, usize, u64)] = &[
    (CodecId::Gorilla, 4183, 0x2d85_ac5d_9efd_444a),
    (CodecId::Chimp, 3419, 0xf3e1_5004_2f8c_c132),
    (CodecId::Sprintz, 652, 0xb008_21cf_109b_71fc),
    (CodecId::Buff, 1035, 0xcff2_ded8_fe54_cb47),
    (CodecId::Dict, 4628, 0xed5f_5205_2510_d69d),
    (CodecId::Rle, 6132, 0xef78_25c4_4037_cf3c),
    (CodecId::Elf, 1276, 0x7321_5340_c736_b6cf),
    (CodecId::Zlib1, 2977, 0x0c0b_2dc7_6530_57ec),
    (CodecId::Zlib6, 2956, 0xdbb0_6c91_2524_43c2),
    (CodecId::Zlib9, 2956, 0xdbb0_6c91_2524_43c2),
    (CodecId::Gzip, 2956, 0xdbb0_6c91_2524_43c2),
    (CodecId::BuffLossy, 1035, 0xcff2_ded8_fe54_cb47),
    (CodecId::BuffLossy, 587, 0x0703_7bb8_5740_bdb1),
];

fn codec_payloads() -> Vec<(CodecId, Vec<u8>)> {
    let reg = CodecRegistry::new(4);
    let data = signal(512);
    let mut out = Vec::new();
    for id in [
        CodecId::Gorilla,
        CodecId::Chimp,
        CodecId::Sprintz,
        CodecId::Buff,
        CodecId::Dict,
        CodecId::Rle,
        CodecId::Elf,
        CodecId::Zlib1,
        CodecId::Zlib6,
        CodecId::Zlib9,
        CodecId::Gzip,
    ] {
        let block = reg.get(id).compress(&data).unwrap();
        out.push((id, block.payload));
    }
    // The lossy BUFF path plus its virtual-decompression recode exercise the
    // truncate-bits read/write lanes.
    let lossy = reg.get_lossy(CodecId::BuffLossy).unwrap();
    let block = lossy.compress_to_ratio(&data, 0.3).unwrap();
    let recoded = lossy.recode(&block, 0.15).unwrap();
    out.push((CodecId::BuffLossy, block.payload));
    out.push((CodecId::BuffLossy, recoded.payload));
    out
}

#[test]
fn golden_scripted_writer_sequence() {
    let bytes = scripted_sequence();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "SCRIPTED_GOLDEN: ({}, 0x{:016x})",
            bytes.len(),
            fnv1a(&bytes)
        );
        return;
    }
    assert_eq!(
        (bytes.len(), fnv1a(&bytes)),
        SCRIPTED_GOLDEN,
        "scripted writer sequence diverged from the golden wire format"
    );
}

#[test]
fn golden_literal_prefix() {
    let bytes = prefix_sequence();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("PREFIX_GOLDEN: {bytes:#04x?}");
        return;
    }
    assert_eq!(
        bytes, PREFIX_GOLDEN,
        "literal prefix sequence diverged from the golden wire format"
    );
}

#[test]
fn golden_codec_payloads() {
    let payloads = codec_payloads();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (id, payload) in &payloads {
            println!(
                "(CodecId::{id:?}, {}, 0x{:016x}),",
                payload.len(),
                fnv1a(payload)
            );
        }
        return;
    }
    assert_eq!(payloads.len(), CODEC_GOLDENS.len());
    for ((id, payload), (gid, glen, ghash)) in payloads.iter().zip(CODEC_GOLDENS) {
        assert_eq!(id, gid);
        assert_eq!(
            (payload.len(), fnv1a(payload)),
            (*glen, *ghash),
            "{id:?}: compressed payload diverged from the golden wire format"
        );
    }
}
