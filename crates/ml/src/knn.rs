//! K-nearest-neighbours classifier (Euclidean distance, majority vote,
//! distance tie-break toward the nearest neighbour's label).

use crate::data::{sq_dist, Dataset};
use serde::{Deserialize, Serialize};

/// A trained (memorized) KNN classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Knn {
    k: usize,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
    dim: usize,
}

impl Knn {
    /// "Train" KNN by memorizing the dataset. `k` must be ≥ 1.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert!(k >= 1, "k must be >= 1");
        Self {
            k: k.min(data.len()),
            rows: data.rows.clone(),
            labels: data.labels.clone(),
            n_classes: data.n_classes(),
            dim: data.dim(),
        }
    }

    /// Predict by majority vote among the `k` nearest training rows.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "feature dimension mismatch");
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &l)| (sq_dist(r, row), l))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for &(_, l) in dists.iter().take(self.k) {
            votes[l] += 1;
        }
        let best = votes.iter().max().copied().unwrap_or(0);
        // Tie-break: among max-vote classes pick the one whose nearest
        // representative is closest.
        dists
            .iter()
            .take(self.k)
            .find(|&&(_, l)| votes[l] == best)
            .map(|&(_, l)| l)
            .unwrap_or(0)
    }

    /// The `k` in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Expected feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes seen at training time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.1],
                vec![0.2, 0.0],
                vec![5.0, 5.0],
                vec![5.1, 4.9],
                vec![4.9, 5.1],
            ],
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn nearest_cluster_wins() {
        let knn = Knn::fit(&data(), 3);
        assert_eq!(knn.predict(&[0.05, 0.05]), 0);
        assert_eq!(knn.predict(&[5.05, 5.0]), 1);
    }

    #[test]
    fn k_one_memorizes() {
        let d = data();
        let knn = Knn::fit(&d, 1);
        for (row, &label) in d.rows.iter().zip(&d.labels) {
            assert_eq!(knn.predict(row), label);
        }
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let knn = Knn::fit(&data(), 100);
        assert_eq!(knn.k(), 6);
        // All six vote: tie 3-3, nearest representative breaks it.
        assert_eq!(knn.predict(&[0.0, 0.1]), 0);
    }

    #[test]
    fn tie_breaks_toward_nearest() {
        let d = Dataset::new(vec![vec![0.0], vec![10.0]], vec![0, 1]);
        let knn = Knn::fit(&d, 2);
        assert_eq!(knn.predict(&[1.0]), 0);
        assert_eq!(knn.predict(&[9.0]), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let knn = Knn::fit(&data(), 3);
        let json = serde_json::to_string(&knn).unwrap();
        let back: Knn = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(&[0.0, 0.0]), 0);
    }
}
