//! The unified model container plus the serialization module the paper
//! describes (§IV-D1): AdaEdge loads a pre-trained model from bytes and
//! treats its predictions on raw data as ground truth.

use crate::data::Dataset;
use crate::dtree::{DecisionTree, TreeConfig};
use crate::forest::{ForestConfig, RandomForest};
use crate::kmeans::{KMeans, KMeansConfig};
use crate::knn::Knn;
use serde::{Deserialize, Serialize};

/// Which task family a model belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Supervised classification (label agreement metric).
    Classification,
    /// Unsupervised clustering (assignment agreement metric).
    Clustering,
}

/// A frozen, pre-trained model: the "given input model" of §IV-D1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Model {
    /// CART decision tree.
    DecisionTree(DecisionTree),
    /// Random forest.
    RandomForest(RandomForest),
    /// K-nearest neighbours.
    Knn(Knn),
    /// K-means clustering.
    KMeans(KMeans),
}

impl Model {
    /// Predict a label (classification) or cluster id (clustering).
    pub fn predict(&self, row: &[f64]) -> usize {
        match self {
            Model::DecisionTree(m) => m.predict(row),
            Model::RandomForest(m) => m.predict(row),
            Model::Knn(m) => m.predict(row),
            Model::KMeans(m) => m.predict(row),
        }
    }

    /// Predict every row.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Task family.
    pub fn task_kind(&self) -> TaskKind {
        match self {
            Model::KMeans(_) => TaskKind::Clustering,
            _ => TaskKind::Classification,
        }
    }

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Model::DecisionTree(_) => "dtree",
            Model::RandomForest(_) => "rforest",
            Model::Knn(_) => "knn",
            Model::KMeans(_) => "kmeans",
        }
    }

    /// Expected feature dimension.
    pub fn dim(&self) -> usize {
        match self {
            Model::DecisionTree(m) => m.dim(),
            Model::RandomForest(m) => m.dim(),
            Model::Knn(m) => m.dim(),
            Model::KMeans(m) => m.dim(),
        }
    }

    /// Serialize to the binary-ish interchange form (JSON bytes): the
    /// serialization half of the paper's model management module.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("model serialization cannot fail")
    }

    /// Deserialize a model previously produced by [`Model::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// Train a decision tree and freeze it.
    pub fn train_dtree(data: &Dataset, config: TreeConfig) -> Self {
        Model::DecisionTree(DecisionTree::fit(data, config))
    }

    /// Train a random forest and freeze it.
    pub fn train_rforest(data: &Dataset, config: ForestConfig) -> Self {
        Model::RandomForest(RandomForest::fit(data, config))
    }

    /// Memorize a KNN model.
    pub fn train_knn(data: &Dataset, k: usize) -> Self {
        Model::Knn(Knn::fit(data, k))
    }

    /// Train k-means and freeze the centroids.
    pub fn train_kmeans(data: &Dataset, config: KMeansConfig) -> Self {
        Model::KMeans(KMeans::fit(data, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let j = (i as f64 * 0.37).sin() * 0.2;
            rows.push(vec![j, 1.0 + j]);
            labels.push(0);
            rows.push(vec![4.0 + j, 5.0 - j]);
            labels.push(1);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn all_variants_predict() {
        let d = data();
        let models = [
            Model::train_dtree(&d, TreeConfig::default()),
            Model::train_rforest(
                &d,
                ForestConfig {
                    n_trees: 5,
                    ..Default::default()
                },
            ),
            Model::train_knn(&d, 3),
            Model::train_kmeans(
                &d,
                KMeansConfig {
                    k: 2,
                    ..Default::default()
                },
            ),
        ];
        for m in &models {
            let preds = m.predict_batch(&d.rows);
            assert_eq!(preds.len(), d.len());
        }
    }

    #[test]
    fn task_kinds() {
        let d = data();
        assert_eq!(
            Model::train_knn(&d, 1).task_kind(),
            TaskKind::Classification
        );
        assert_eq!(
            Model::train_kmeans(&d, KMeansConfig::default()).task_kind(),
            TaskKind::Clustering
        );
    }

    #[test]
    fn bytes_roundtrip_preserves_predictions() {
        let d = data();
        for m in [
            Model::train_dtree(&d, TreeConfig::default()),
            Model::train_knn(&d, 3),
            Model::train_kmeans(
                &d,
                KMeansConfig {
                    k: 2,
                    ..Default::default()
                },
            ),
        ] {
            let bytes = m.to_bytes();
            let back = Model::from_bytes(&bytes).unwrap();
            assert_eq!(back.name(), m.name());
            for row in &d.rows {
                assert_eq!(m.predict(row), back.predict(row));
            }
        }
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert!(Model::from_bytes(b"not a model").is_err());
    }
}
