//! K-means clustering (k-means++ seeding, Lloyd iterations).
//!
//! In AdaEdge the trained centroids act as a frozen clustering "model":
//! the cluster assignment of a raw segment is ground truth, and the
//! assignment of its lossy reconstruction is compared against it (the
//! KMeans accuracy-loss curves of Figures 12–14).

use crate::data::{sq_dist, Dataset};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// K-means training parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 3,
            max_iter: 100,
            tol: 1e-9,
            seed: 0,
        }
    }
}

/// A trained k-means model: the centroids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    dim: usize,
}

impl KMeans {
    /// Fit centroids to the dataset rows (labels are ignored).
    pub fn fit(data: &Dataset, config: KMeansConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert!(config.k >= 1, "k must be >= 1");
        let k = config.k.min(data.len());
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut centroids = kmeanspp_init(&data.rows, k, &mut rng);
        let mut assign = vec![0usize; data.len()];
        for _ in 0..config.max_iter {
            // Assignment step.
            for (i, row) in data.rows.iter().enumerate() {
                assign[i] = nearest(&centroids, row).0;
            }
            // Update step.
            let dim = data.dim();
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in data.rows.iter().enumerate() {
                counts[assign[i]] += 1;
                for (s, v) in sums[assign[i]].iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    continue; // Empty cluster keeps its centroid.
                }
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += sq_dist(&centroids[c], &new).sqrt();
                centroids[c] = new;
            }
            if movement < config.tol {
                break;
            }
        }
        Self {
            centroids,
            dim: data.dim(),
        }
    }

    /// Assign a row to its nearest centroid.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "feature dimension mismatch");
        nearest(&self.centroids, row).0
    }

    /// The trained centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Expected feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total within-cluster sum of squares on a dataset.
    pub fn inertia(&self, data: &Dataset) -> f64 {
        data.rows
            .iter()
            .map(|row| nearest(&self.centroids, row).1)
            .sum()
    }
}

fn nearest(centroids: &[Vec<f64>], row: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(c, row);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn kmeanspp_init(rows: &[Vec<f64>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(rows[rng.gen_range(0..rows.len())].clone());
    let mut d2: Vec<f64> = rows.iter().map(|r| sq_dist(r, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rows[rng.gen_range(0..rows.len())].clone()
        } else {
            let mut u = rng.gen::<f64>() * total;
            let mut pick = rows.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if u < d {
                    pick = i;
                    break;
                }
                u -= d;
            }
            rows[pick].clone()
        };
        for (i, r) in rows.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(r, &next));
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..30 {
            let j = (i as f64 * 0.61).sin() * 0.2;
            rows.push(vec![0.0 + j, 0.0 - j]);
            rows.push(vec![10.0 + j, 0.0 + j]);
            rows.push(vec![5.0 - j, 8.0 + j]);
        }
        Dataset::unlabeled(rows)
    }

    #[test]
    fn finds_three_blobs() {
        let data = three_blobs();
        let km = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        // Each blob center should be near one centroid.
        for target in [[0.0, 0.0], [10.0, 0.0], [5.0, 8.0]] {
            let min_d = km
                .centroids()
                .iter()
                .map(|c| sq_dist(c, &target))
                .fold(f64::INFINITY, f64::min);
            assert!(min_d < 0.5, "no centroid near {target:?}: {min_d}");
        }
    }

    #[test]
    fn assignments_are_consistent_with_centroids() {
        let data = three_blobs();
        let km = KMeans::fit(&data, KMeansConfig::default());
        for row in &data.rows {
            let c = km.predict(row);
            let d_assigned = sq_dist(&km.centroids()[c], row);
            for other in km.centroids() {
                assert!(d_assigned <= sq_dist(other, row) + 1e-12);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = three_blobs();
        let a = KMeans::fit(&data, KMeansConfig::default());
        let b = KMeans::fit(&data, KMeansConfig::default());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let data = Dataset::unlabeled(vec![vec![1.0], vec![2.0]]);
        let km = KMeans::fit(
            &data,
            KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = three_blobs();
        let i1 = KMeans::fit(
            &data,
            KMeansConfig {
                k: 1,
                ..Default::default()
            },
        )
        .inertia(&data);
        let i3 = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .inertia(&data);
        assert!(i3 < i1, "k=3 inertia {i3} vs k=1 {i1}");
    }

    #[test]
    fn identical_points_degenerate_ok() {
        let data = Dataset::unlabeled(vec![vec![2.0, 2.0]; 10]);
        let km = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(km.predict(&[2.0, 2.0]), km.predict(&[2.0, 2.0]));
    }

    #[test]
    fn serialization_roundtrip() {
        let data = three_blobs();
        let km = KMeans::fit(&data, KMeansConfig::default());
        let json = serde_json::to_string(&km).unwrap();
        let back: KMeans = serde_json::from_str(&json).unwrap();
        assert_eq!(km.centroids(), back.centroids());
    }
}
