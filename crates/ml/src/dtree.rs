//! CART decision tree (Gini impurity, axis-aligned splits).
//!
//! Trees branch on exact feature thresholds learned from the raw data, so
//! even small lossy perturbations can flip a comparison and change the
//! predicted label — the sensitivity the paper demonstrates in Figure 5.

use crate::data::Dataset;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Tree-construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of random features considered per node; `0` means all
    /// (set to √d by random forests).
    pub feature_subset: usize,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            feature_subset: 0,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained decision tree classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    dim: usize,
}

fn majority(labels: impl Iterator<Item = usize>, n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes.max(1)];
    for l in labels {
        counts[l] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(l, _)| l)
        .unwrap_or(0)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

struct Builder<'a> {
    data: &'a Dataset,
    config: TreeConfig,
    n_classes: usize,
    rng: SmallRng,
}

impl<'a> Builder<'a> {
    /// Best (feature, threshold, weighted gini) over the candidate features.
    fn best_split(&mut self, idx: &[usize]) -> Option<(usize, f64, f64)> {
        let dim = self.data.dim();
        let mut features: Vec<usize> = (0..dim).collect();
        if self.config.feature_subset > 0 && self.config.feature_subset < dim {
            features.shuffle(&mut self.rng);
            features.truncate(self.config.feature_subset);
        }
        let mut best: Option<(usize, f64, f64)> = None;
        let total = idx.len();
        for &f in &features {
            // Sort row indices by this feature's value.
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| {
                self.data.rows[a][f]
                    .partial_cmp(&self.data.rows[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left = vec![0usize; self.n_classes];
            let mut right = vec![0usize; self.n_classes];
            for &i in &order {
                right[self.data.labels[i]] += 1;
            }
            for cut in 1..total {
                let moved = order[cut - 1];
                left[self.data.labels[moved]] += 1;
                right[self.data.labels[moved]] -= 1;
                let lo = self.data.rows[moved][f];
                let hi = self.data.rows[order[cut]][f];
                if lo == hi {
                    continue; // No threshold separates equal values.
                }
                let score = (cut as f64 * gini(&left, cut)
                    + (total - cut) as f64 * gini(&right, total - cut))
                    / total as f64;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, (lo + hi) * 0.5, score));
                }
            }
        }
        best
    }

    fn build(&mut self, idx: &[usize], depth: usize) -> Node {
        let first_label = self.data.labels[idx[0]];
        let pure = idx.iter().all(|&i| self.data.labels[i] == first_label);
        if pure || depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return Node::Leaf {
                label: majority(idx.iter().map(|&i| self.data.labels[i]), self.n_classes),
            };
        }
        let parent_gini = {
            let mut counts = vec![0usize; self.n_classes];
            for &i in idx {
                counts[self.data.labels[i]] += 1;
            }
            gini(&counts, idx.len())
        };
        // Zero-gain splits are allowed (XOR-style targets need them); the
        // weighted child impurity never exceeds the parent's, and recursion
        // is bounded by depth and the strict partition below.
        match self.best_split(idx) {
            Some((feature, threshold, score)) if score <= parent_gini + 1e-12 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| self.data.rows[i][feature] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return Node::Leaf {
                        label: majority(idx.iter().map(|&i| self.data.labels[i]), self.n_classes),
                    };
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(&left_idx, depth + 1)),
                    right: Box::new(self.build(&right_idx, depth + 1)),
                }
            }
            _ => Node::Leaf {
                label: majority(idx.iter().map(|&i| self.data.labels[i]), self.n_classes),
            },
        }
    }
}

impl DecisionTree {
    /// Train a tree on a labeled dataset.
    pub fn fit(data: &Dataset, config: TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert_eq!(
            data.rows.len(),
            data.labels.len(),
            "dataset must be labeled"
        );
        let n_classes = data.n_classes();
        let mut builder = Builder {
            data,
            config,
            n_classes,
            rng: SmallRng::seed_from_u64(config.seed),
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        let root = builder.build(&idx, 0);
        Self {
            root,
            n_classes,
            dim: data.dim(),
        }
    }

    /// Train a tree on a bootstrap sample given by `idx`.
    pub(crate) fn fit_on_indices(data: &Dataset, idx: &[usize], config: TreeConfig) -> Self {
        assert!(!idx.is_empty());
        let n_classes = data.n_classes();
        let mut builder = Builder {
            data,
            config,
            n_classes,
            rng: SmallRng::seed_from_u64(config.seed),
        };
        let root = builder.build(idx, 0);
        Self {
            root,
            n_classes,
            dim: data.dim(),
        }
    }

    /// Predict the class of one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "feature dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of classes seen at training time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Expected feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Depth of the trained tree (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D blobs.
    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let jitter = (i as f64 * 0.37).sin() * 0.3;
            rows.push(vec![1.0 + jitter, 1.0 - jitter]);
            labels.push(0);
            rows.push(vec![5.0 + jitter, 5.0 - jitter]);
            labels.push(1);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn separable_data_is_learned_perfectly() {
        let data = blobs();
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        for (row, &label) in data.rows.iter().zip(&data.labels) {
            assert_eq!(tree.predict(row), label);
        }
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = blobs();
        let tree = DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn constant_labels_produce_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1]);
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        let data = Dataset::new(rows.clone(), labels.clone());
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        for (row, &label) in rows.iter().zip(&labels) {
            assert_eq!(tree.predict(row), label, "row {row:?}");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn small_perturbations_can_flip_predictions() {
        // The Figure-5 effect: a value near a threshold flips the branch.
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![0, 0, 1, 1],
        );
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        assert_eq!(tree.predict(&[2.4]), 0);
        assert_eq!(tree.predict(&[2.6]), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let data = blobs();
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for row in &data.rows {
            assert_eq!(tree.predict(row), back.predict(row));
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_rejected() {
        let data = blobs();
        let tree = DecisionTree::fit(&data, TreeConfig::default());
        tree.predict(&[1.0]);
    }
}
