//! # adaedge-ml
//!
//! The machine-learning substrate AdaEdge evaluates lossy compression
//! against: CART decision trees, random forests, KNN and k-means —
//! implemented from scratch — plus the §IV-D accuracy metrics and the
//! model (de)serialization module. Models are trained once on raw data,
//! frozen, and their predictions on raw data serve as ground truth when
//! scoring lossy reconstructions.
//!
//! ```
//! use adaedge_ml::{Dataset, Model, TreeConfig, metrics};
//!
//! let data = Dataset::new(
//!     vec![vec![1.0], vec![2.0], vec![5.0], vec![6.0]],
//!     vec![0, 0, 1, 1],
//! );
//! let model = Model::train_dtree(&data, TreeConfig::default());
//!
//! // A mild reconstruction keeps every prediction intact:
//! let lossy = vec![vec![1.01], vec![2.01], vec![4.99], vec![6.01]];
//! assert_eq!(metrics::ml_accuracy(&model, &data.rows, &lossy), 1.0);
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod dtree;
pub mod forest;
pub mod kmeans;
pub mod knn;
pub mod metrics;
pub mod model;

pub use data::Dataset;
pub use dtree::{DecisionTree, TreeConfig};
pub use forest::{ForestConfig, RandomForest};
pub use kmeans::{KMeans, KMeansConfig};
pub use knn::Knn;
pub use model::{Model, TaskKind};
