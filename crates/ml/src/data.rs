//! Dataset container shared by the ML models: rows of `f64` features with
//! optional class labels. In AdaEdge a "row" is one time-series segment
//! whose points are the features, matching how the paper feeds UCR/UCI
//! series to classifiers.

use serde::{Deserialize, Serialize};

/// A labeled (or unlabeled) feature matrix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows must share a length.
    pub rows: Vec<Vec<f64>>,
    /// Class label per row; empty for unlabeled data.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Build a labeled dataset, validating shape.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        if let Some(first) = rows.first() {
            let d = first.len();
            assert!(
                rows.iter().all(|r| r.len() == d),
                "all rows must share a dimension"
            );
        }
        Self { rows, labels }
    }

    /// Build an unlabeled dataset.
    pub fn unlabeled(rows: Vec<Vec<f64>>) -> Self {
        if let Some(first) = rows.first() {
            let d = first.len();
            assert!(
                rows.iter().all(|r| r.len() == d),
                "all rows must share a dimension"
            );
        }
        Self {
            rows,
            labels: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Number of distinct classes (labels are assumed dense from 0).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }
}

/// Squared Euclidean distance between two equal-length rows.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 1]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::unlabeled(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.dim(), 0);
        assert_eq!(d.n_classes(), 0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_labels_rejected() {
        Dataset::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn ragged_rows_rejected() {
        Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn distance() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }
}
