//! Random forest: bagged CART trees with per-node feature subsampling and
//! majority voting.

use crate::data::Dataset;
use crate::dtree::{DecisionTree, TreeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest-construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Features considered per split; `0` means √d.
    pub feature_subset: usize,
    /// RNG seed for bootstraps and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 25,
            max_depth: 12,
            feature_subset: 0,
            seed: 0,
        }
    }
}

/// A trained random-forest classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    dim: usize,
}

impl RandomForest {
    /// Train a forest on a labeled dataset.
    pub fn fit(data: &Dataset, config: ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let n = data.len();
        let dim = data.dim();
        let subset = if config.feature_subset == 0 {
            (dim as f64).sqrt().round().max(1.0) as usize
        } else {
            config.feature_subset
        };
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            // Bootstrap sample with replacement.
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let tree_config = TreeConfig {
                max_depth: config.max_depth,
                min_samples_split: 2,
                feature_subset: subset,
                seed: config.seed.wrapping_add(t as u64).wrapping_mul(0x9E37),
            };
            trees.push(DecisionTree::fit_on_indices(data, &idx, tree_config));
        }
        Self {
            trees,
            n_classes: data.n_classes(),
            dim,
        }
    }

    /// Predict the majority class across trees.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "feature dimension mismatch");
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for tree in &self.trees {
            votes[tree.predict(row)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes seen at training time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Expected feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(n_per: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            let a = (i as f64 * 0.77).sin();
            let b = (i as f64 * 1.31).cos();
            rows.push(vec![0.0 + a, 0.0 + b, a * b]);
            labels.push(0);
            rows.push(vec![3.0 + a, 3.0 + b, 3.0 + a * b]);
            labels.push(1);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn learns_separable_data() {
        let data = noisy_blobs(60);
        let forest = RandomForest::fit(&data, ForestConfig::default());
        let correct = data
            .rows
            .iter()
            .zip(&data.labels)
            .filter(|(r, &l)| forest.predict(r) == l)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = noisy_blobs(30);
        let f1 = RandomForest::fit(&data, ForestConfig::default());
        let f2 = RandomForest::fit(&data, ForestConfig::default());
        for row in &data.rows {
            assert_eq!(f1.predict(row), f2.predict(row));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let data = noisy_blobs(30);
        let f1 = RandomForest::fit(
            &data,
            ForestConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let f2 = RandomForest::fit(
            &data,
            ForestConfig {
                seed: 2,
                ..Default::default()
            },
        );
        // Trained models are distinct objects even if predictions agree.
        let j1 = serde_json::to_string(&f1).unwrap();
        let j2 = serde_json::to_string(&f2).unwrap();
        assert_ne!(j1, j2);
    }

    #[test]
    fn serialization_roundtrip() {
        let data = noisy_blobs(20);
        let forest = RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 5,
                ..Default::default()
            },
        );
        let json = serde_json::to_string(&forest).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        for row in &data.rows {
            assert_eq!(forest.predict(row), back.predict(row));
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let data = noisy_blobs(20);
        let forest = RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 1,
                ..Default::default()
            },
        );
        assert_eq!(forest.n_trees(), 1);
        forest.predict(&data.rows[0]);
    }
}
