//! Accuracy metrics from §IV-D of the paper.

use crate::model::Model;

/// ACC_ml: fraction of rows where the model's prediction on the lossy
/// reconstruction matches its prediction on the original data. The model's
/// output on raw data is ground truth by assumption (§IV-D1).
pub fn ml_accuracy(model: &Model, original: &[Vec<f64>], lossy: &[Vec<f64>]) -> f64 {
    assert_eq!(original.len(), lossy.len(), "row counts must match");
    if original.is_empty() {
        return 1.0;
    }
    let matches = original
        .iter()
        .zip(lossy)
        .filter(|(o, l)| model.predict(o) == model.predict(l))
        .count();
    matches as f64 / original.len() as f64
}

/// ACC_ml when the ground-truth predictions are already known (avoids
/// re-running the model on the originals every evaluation round).
pub fn ml_accuracy_vs_reference(model: &Model, reference: &[usize], lossy: &[Vec<f64>]) -> f64 {
    assert_eq!(reference.len(), lossy.len(), "row counts must match");
    if reference.is_empty() {
        return 1.0;
    }
    let matches = reference
        .iter()
        .zip(lossy)
        .filter(|(&r, l)| model.predict(l) == r)
        .count();
    matches as f64 / reference.len() as f64
}

/// ACC_agg = 1 − |V_true − V_lossy| / |V_true| (relative aggregation
/// accuracy, §IV-D2). Degenerate `V_true = 0` compares absolutely.
pub fn agg_accuracy(v_true: f64, v_lossy: f64) -> f64 {
    if v_true == 0.0 {
        return if v_lossy == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - (v_true - v_lossy).abs() / v_true.abs()
}

/// Accuracy *loss* — what the paper's figures plot: `1 − accuracy`.
pub fn loss_from_accuracy(accuracy: f64) -> f64 {
    1.0 - accuracy
}

/// Compression throughput C_thr = original bytes / compression seconds
/// (§IV-D2); fast compression correlates with power efficiency.
pub fn compression_throughput(original_bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    original_bytes as f64 / seconds
}

/// Plain classification accuracy against true labels (used when validating
/// the ML substrate itself, not by the selection loop).
pub fn label_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 1.0;
    }
    let matches = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    matches as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::dtree::TreeConfig;

    fn model_and_data() -> (Model, Vec<Vec<f64>>) {
        let rows = vec![vec![1.0], vec![2.0], vec![5.0], vec![6.0]];
        let data = Dataset::new(rows.clone(), vec![0, 0, 1, 1]);
        (Model::train_dtree(&data, TreeConfig::default()), rows)
    }

    #[test]
    fn identical_reconstruction_scores_one() {
        let (m, rows) = model_and_data();
        assert_eq!(ml_accuracy(&m, &rows, &rows), 1.0);
    }

    #[test]
    fn flipped_rows_reduce_accuracy() {
        let (m, rows) = model_and_data();
        // Push the first two rows across the decision boundary.
        let lossy = vec![vec![5.5], vec![5.5], vec![5.0], vec![6.0]];
        let acc = ml_accuracy(&m, &rows, &lossy);
        assert_eq!(acc, 0.5);
    }

    #[test]
    fn reference_variant_matches_direct() {
        let (m, rows) = model_and_data();
        let reference: Vec<usize> = rows.iter().map(|r| m.predict(r)).collect();
        let lossy = vec![vec![1.1], vec![2.1], vec![4.9], vec![6.1]];
        assert_eq!(
            ml_accuracy(&m, &rows, &lossy),
            ml_accuracy_vs_reference(&m, &reference, &lossy)
        );
    }

    #[test]
    fn agg_accuracy_basics() {
        assert_eq!(agg_accuracy(100.0, 100.0), 1.0);
        assert!((agg_accuracy(100.0, 90.0) - 0.9).abs() < 1e-12);
        assert_eq!(agg_accuracy(0.0, 0.0), 1.0);
        assert_eq!(agg_accuracy(0.0, 1.0), 0.0);
        // Negative truth handled via absolute value.
        assert!((agg_accuracy(-100.0, -90.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn throughput_math() {
        assert_eq!(compression_throughput(8000, 2.0), 4000.0);
        assert_eq!(compression_throughput(100, 0.0), f64::INFINITY);
    }

    #[test]
    fn label_accuracy_basics() {
        assert_eq!(label_accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(label_accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn empty_rows_score_one() {
        let (m, _) = model_and_data();
        assert_eq!(ml_accuracy(&m, &[], &[]), 1.0);
    }
}
