//! Model-quality tests against *true* labels on held-out data: the ML
//! substrate must genuinely learn the CBF classification task (everything
//! else in the workspace only measures prediction agreement, which a
//! constant model could fake).

use adaedge_datasets::{CbfConfig, CbfGenerator};
use adaedge_ml::{metrics, Dataset, ForestConfig, KMeansConfig, Model, TreeConfig};

fn train_test() -> (Dataset, Vec<Vec<f64>>, Vec<usize>) {
    let mut gen = CbfGenerator::new(CbfConfig {
        seed: 71,
        ..Default::default()
    });
    let (rows, labels) = gen.dataset(60);
    let (test_rows, test_labels) = gen.dataset(30);
    (Dataset::new(rows, labels), test_rows, test_labels)
}

fn holdout_accuracy(model: &Model, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
    metrics::label_accuracy(&model.predict_batch(rows), labels)
}

#[test]
fn decision_tree_generalizes_on_cbf() {
    let (train, rows, labels) = train_test();
    let model = Model::train_dtree(&train, TreeConfig::default());
    let acc = holdout_accuracy(&model, &rows, &labels);
    assert!(acc > 0.75, "dtree holdout accuracy {acc}");
}

#[test]
fn random_forest_beats_single_tree() {
    let (train, rows, labels) = train_test();
    let tree = Model::train_dtree(&train, TreeConfig::default());
    let forest = Model::train_rforest(
        &train,
        ForestConfig {
            n_trees: 25,
            ..Default::default()
        },
    );
    let tree_acc = holdout_accuracy(&tree, &rows, &labels);
    let forest_acc = holdout_accuracy(&forest, &rows, &labels);
    assert!(
        forest_acc >= tree_acc - 0.02,
        "forest {forest_acc} vs tree {tree_acc}"
    );
    assert!(forest_acc > 0.85, "forest holdout accuracy {forest_acc}");
}

#[test]
fn knn_generalizes_on_cbf() {
    let (train, rows, labels) = train_test();
    let model = Model::train_knn(&train, 5);
    let acc = holdout_accuracy(&model, &rows, &labels);
    assert!(acc > 0.85, "knn holdout accuracy {acc}");
}

#[test]
fn kmeans_clusters_align_with_classes() {
    // Unsupervised: map each cluster to its majority class on the training
    // set, then measure holdout agreement through that mapping.
    let (train, rows, labels) = train_test();
    let model = Model::train_kmeans(
        &train,
        KMeansConfig {
            k: 3,
            ..Default::default()
        },
    );
    let mut votes = [[0usize; 3]; 3];
    for (row, &label) in train.rows.iter().zip(&train.labels) {
        votes[model.predict(row)][label] += 1;
    }
    let mapping: Vec<usize> = votes
        .iter()
        .map(|v| v.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0)
        .collect();
    let mapped: Vec<usize> = rows.iter().map(|r| mapping[model.predict(r)]).collect();
    let acc = metrics::label_accuracy(&mapped, &labels);
    // CBF clusters are not linearly separable in raw space; the paper uses
    // assignment *agreement*, but a loose alignment with classes shows the
    // centroids carry real structure.
    assert!(acc > 0.5, "kmeans mapped accuracy {acc}");
}

#[test]
fn models_survive_serialization_with_identical_holdout_predictions() {
    let (train, rows, _) = train_test();
    for model in [
        Model::train_dtree(&train, TreeConfig::default()),
        Model::train_rforest(
            &train,
            ForestConfig {
                n_trees: 8,
                ..Default::default()
            },
        ),
        Model::train_knn(&train, 3),
        Model::train_kmeans(&train, KMeansConfig::default()),
    ] {
        let restored = Model::from_bytes(&model.to_bytes()).unwrap();
        for row in rows.iter().take(20) {
            assert_eq!(
                model.predict(row),
                restored.predict(row),
                "{}",
                model.name()
            );
        }
    }
}
