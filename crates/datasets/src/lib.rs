//! # adaedge-datasets
//!
//! Seeded, deterministic dataset substrate for the AdaEdge reproduction:
//! the Cylinder–Bell–Funnel generator the paper streams in its adaptive
//! experiments, UCR-like / UCI-like synthetic classification archives
//! (stand-ins for the proprietary-download archives — see DESIGN.md),
//! and streaming segment sources including the Figure-15 entropy-shift
//! stream.
//!
//! ```
//! use adaedge_datasets::{CbfConfig, CbfGenerator, CbfClass};
//!
//! let mut gen = CbfGenerator::new(CbfConfig::default());
//! let instance = gen.instance(CbfClass::Bell);
//! assert_eq!(instance.len(), 128);
//! ```

#![warn(missing_docs)]

pub mod cbf;
pub mod rng;
pub mod stream;
pub mod synthetic;

pub use cbf::{CbfClass, CbfConfig, CbfGenerator};
pub use stream::{
    CbfStream, CycleSource, SegmentSource, SharedCycleSource, ShiftStream, SineStream,
};
pub use synthetic::{uci_like, ucr_like, Labeled, SyntheticConfig};
