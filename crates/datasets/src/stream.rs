//! Streaming segment sources: the "dummy client" of §V-B that feeds
//! AdaEdge a continuous signal, organized into fixed-size segments.

use crate::cbf::{CbfConfig, CbfGenerator};
use crate::rng::round_all;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A source of fixed-size time-series segments.
pub trait SegmentSource: Send {
    /// Points per segment.
    fn segment_len(&self) -> usize;

    /// Produce the next segment.
    fn next_segment(&mut self) -> Vec<f64>;

    /// Produce the next segment into a caller-owned buffer, so a recycled
    /// `Vec` can be refilled without allocating. The default delegates to
    /// [`Self::next_segment`]; sources on hot ingest paths override it.
    fn next_segment_into(&mut self, out: &mut Vec<f64>) {
        *out = self.next_segment();
    }
}

/// Streams CBF instances back-to-back, cutting the point stream into
/// segments of `segment_len` points (classes cycle C→B→F).
#[derive(Debug)]
pub struct CbfStream {
    gen: CbfGenerator,
    segment_len: usize,
    buffer: Vec<f64>,
    counter: usize,
}

impl CbfStream {
    /// Create a CBF point stream with the given segment size.
    pub fn new(config: CbfConfig, segment_len: usize) -> Self {
        assert!(segment_len > 0, "segment_len must be positive");
        Self {
            gen: CbfGenerator::new(config),
            segment_len,
            buffer: Vec::new(),
            counter: 0,
        }
    }
}

impl SegmentSource for CbfStream {
    fn segment_len(&self) -> usize {
        self.segment_len
    }

    fn next_segment(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.segment_len);
        self.next_segment_into(&mut out);
        out
    }

    fn next_segment_into(&mut self, out: &mut Vec<f64>) {
        while self.buffer.len() < self.segment_len {
            let (inst, _) = self.gen.next_cycled(self.counter);
            self.counter += 1;
            self.buffer.extend(inst);
        }
        out.clear();
        out.extend_from_slice(&self.buffer[..self.segment_len]);
        self.buffer.drain(..self.segment_len);
    }
}

/// The Figure-15 shift stream: the first `shift_after` segments are
/// high-entropy CBF data; afterwards the stream switches to low-entropy
/// data drawn from a small value alphabet (highly repetitive, where
/// dictionary/byte compression dominate).
#[derive(Debug)]
pub struct ShiftStream {
    cbf: CbfStream,
    rng: SmallRng,
    segment_len: usize,
    produced: usize,
    shift_after: usize,
    alphabet: Vec<f64>,
    precision: u8,
}

impl ShiftStream {
    /// Create a shift stream. `shift_after` is the segment index at which
    /// the distribution changes; `alphabet_size` controls the low-entropy
    /// half's distinct values.
    pub fn new(
        config: CbfConfig,
        segment_len: usize,
        shift_after: usize,
        alphabet_size: usize,
    ) -> Self {
        assert!(alphabet_size >= 1);
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0xC0FFEE));
        let alphabet: Vec<f64> = (0..alphabet_size)
            .map(|_| (rng.gen::<f64>() * 10.0 * 1e4).round() / 1e4)
            .collect();
        Self {
            cbf: CbfStream::new(config, segment_len),
            rng,
            segment_len,
            produced: 0,
            shift_after,
            alphabet,
            precision: config.precision,
        }
    }

    /// Whether the distribution has already shifted.
    pub fn has_shifted(&self) -> bool {
        self.produced >= self.shift_after
    }
}

impl SegmentSource for ShiftStream {
    fn segment_len(&self) -> usize {
        self.segment_len
    }

    fn next_segment(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.segment_len);
        self.next_segment_into(&mut out);
        out
    }

    fn next_segment_into(&mut self, out: &mut Vec<f64>) {
        self.produced += 1;
        if self.produced <= self.shift_after {
            self.cbf.next_segment_into(out);
        } else {
            // Low-entropy: a cyclic tiling of the small alphabet with an
            // occasional phase jump. Consecutive values differ (so XOR
            // codecs gain nothing) but the byte stream is massively
            // repetitive — the regime where gzip/zlib/dict dominate.
            let k = self.alphabet.len();
            let mut phase = self.rng.gen_range(0..k);
            out.clear();
            out.reserve(self.segment_len);
            while out.len() < self.segment_len {
                let run = self
                    .rng
                    .gen_range(64usize..256)
                    .min(self.segment_len - out.len());
                for i in 0..run {
                    out.push(self.alphabet[(phase + i) % k]);
                }
                phase = self.rng.gen_range(0..k);
            }
            round_all(out, self.precision);
        }
    }
}

/// A pure sine + noise stream used by throughput experiments where signal
/// content does not matter, only byte volume.
#[derive(Debug)]
pub struct SineStream {
    segment_len: usize,
    t: u64,
    rng: SmallRng,
    noise: f64,
    precision: u8,
}

impl SineStream {
    /// Create a sine stream with the given additive noise.
    pub fn new(segment_len: usize, noise: f64, precision: u8, seed: u64) -> Self {
        assert!(segment_len > 0);
        Self {
            segment_len,
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
            noise,
            precision,
        }
    }
}

impl SegmentSource for SineStream {
    fn segment_len(&self) -> usize {
        self.segment_len
    }

    fn next_segment(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.segment_len);
        self.next_segment_into(&mut out);
        out
    }

    fn next_segment_into(&mut self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.segment_len);
        for _ in 0..self.segment_len {
            let x = self.t as f64 * 0.01;
            let v = 3.0 * x.sin() + self.noise * crate::rng::standard_normal(&mut self.rng);
            out.push(v);
            self.t += 1;
        }
        round_all(out, self.precision);
    }
}

/// Cycles through a pre-generated pool of segments. Used by throughput
/// benchmarks where generation cost must not pollute the measurement.
#[derive(Debug)]
pub struct CycleSource {
    segments: Vec<Vec<f64>>,
    idx: usize,
}

impl CycleSource {
    /// Pre-generate `pool` segments from `inner` and cycle over them.
    pub fn pregenerate(inner: &mut dyn SegmentSource, pool: usize) -> Self {
        assert!(pool > 0);
        Self {
            segments: (0..pool).map(|_| inner.next_segment()).collect(),
            idx: 0,
        }
    }
}

impl SegmentSource for CycleSource {
    fn segment_len(&self) -> usize {
        self.segments[0].len()
    }

    fn next_segment(&mut self) -> Vec<f64> {
        let seg = self.segments[self.idx % self.segments.len()].clone();
        self.idx += 1;
        seg
    }

    fn next_segment_into(&mut self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.segments[self.idx % self.segments.len()]);
        self.idx += 1;
    }
}

/// Cycles through a pool of segments shared (via `Arc`) between many
/// sources. The fleet benchmarks drive thousands of concurrent streams;
/// giving each its own [`CycleSource`] pool would multiply the pregenerated
/// data by the stream count, so they share one immutable pool and differ
/// only in a starting phase — per-stream state is two `usize`s.
#[derive(Debug, Clone)]
pub struct SharedCycleSource {
    segments: std::sync::Arc<Vec<Vec<f64>>>,
    idx: usize,
}

impl SharedCycleSource {
    /// Pre-generate a `pool` of segments from `inner` for sharing.
    pub fn pregenerate_pool(
        inner: &mut dyn SegmentSource,
        pool: usize,
    ) -> std::sync::Arc<Vec<Vec<f64>>> {
        assert!(pool > 0);
        std::sync::Arc::new((0..pool).map(|_| inner.next_segment()).collect())
    }

    /// Create a source over a shared pool, starting at `phase` (wrapped
    /// into the pool) so different streams emit different subsequences.
    pub fn new(segments: std::sync::Arc<Vec<Vec<f64>>>, phase: usize) -> Self {
        assert!(!segments.is_empty());
        let idx = phase % segments.len();
        Self { segments, idx }
    }
}

impl SegmentSource for SharedCycleSource {
    fn segment_len(&self) -> usize {
        self.segments[0].len()
    }

    fn next_segment(&mut self) -> Vec<f64> {
        let seg = self.segments[self.idx].clone();
        self.idx = (self.idx + 1) % self.segments.len();
        seg
    }

    fn next_segment_into(&mut self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.segments[self.idx]);
        self.idx = (self.idx + 1) % self.segments.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cycle_sources_share_one_pool() {
        let mut inner = SineStream::new(64, 0.0, 4, 1);
        let pool = SharedCycleSource::pregenerate_pool(&mut inner, 4);
        let mut a = SharedCycleSource::new(pool.clone(), 0);
        let mut b = SharedCycleSource::new(pool.clone(), 1);
        // Phase offset: b starts one segment ahead of a.
        let a0 = a.next_segment();
        let a1 = a.next_segment();
        assert_eq!(b.next_segment(), a1);
        assert_ne!(a0, a1);
        // Wrap-around returns to the start of the pool.
        let mut c = SharedCycleSource::new(pool, 4);
        assert_eq!(c.next_segment(), a0);
    }

    #[test]
    fn cycle_source_repeats_pool() {
        let mut inner = SineStream::new(64, 0.0, 4, 1);
        let mut c = CycleSource::pregenerate(&mut inner, 3);
        let a = c.next_segment();
        c.next_segment();
        c.next_segment();
        let a2 = c.next_segment();
        assert_eq!(a, a2);
        assert_eq!(c.segment_len(), 64);
    }

    #[test]
    fn cbf_stream_produces_fixed_segments() {
        let mut s = CbfStream::new(CbfConfig::default(), 1000);
        for _ in 0..5 {
            assert_eq!(s.next_segment().len(), 1000);
        }
    }

    #[test]
    fn cbf_stream_is_deterministic() {
        let mut a = CbfStream::new(CbfConfig::default(), 500);
        let mut b = CbfStream::new(CbfConfig::default(), 500);
        assert_eq!(a.next_segment(), b.next_segment());
        assert_eq!(a.next_segment(), b.next_segment());
    }

    #[test]
    fn shift_stream_changes_entropy() {
        let mut s = ShiftStream::new(CbfConfig::default(), 1000, 3, 4);
        let distinct = |seg: &[f64]| {
            let mut set: Vec<u64> = seg.iter().map(|v| v.to_bits()).collect();
            set.sort_unstable();
            set.dedup();
            set.len()
        };
        let before = s.next_segment();
        assert!(!s.has_shifted());
        s.next_segment();
        s.next_segment();
        assert!(s.has_shifted());
        let after = s.next_segment();
        assert!(distinct(&before) > 500, "CBF half should be high entropy");
        assert!(distinct(&after) <= 4, "shifted half should be low entropy");
    }

    #[test]
    fn sine_stream_is_continuous_across_segments() {
        let mut s = SineStream::new(100, 0.0, 6, 0);
        let a = s.next_segment();
        let b = s.next_segment();
        // Continuity: last of a and first of b follow the same sine.
        let expected = 3.0 * (100.0 * 0.01_f64).sin();
        assert!((b[0] - expected).abs() < 1e-4, "{} vs {expected}", b[0]);
        assert_eq!(a.len(), 100);
    }
}
