//! The Cylinder–Bell–Funnel dataset (Saito 1994) — the controlled-
//! distribution simulated dataset the paper streams in every adaptive-
//! selection experiment (§V-B).
//!
//! Each instance is one of three shapes on a noisy baseline:
//!
//! * **cylinder** — a plateau of height `6 + η` on `[a, b]`,
//! * **bell**     — a ramp up from 0 to `6 + η` across `[a, b]`,
//! * **funnel**   — a ramp down from `6 + η` to 0 across `[a, b]`,
//!
//! with `a ~ U{16..32}`, `b − a ~ U{32..96}`, `η ~ N(0,1)` and additive
//! `N(0,1)` noise everywhere.

use crate::rng::{round_all, standard_normal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The three CBF classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbfClass {
    /// Plateau shape.
    Cylinder,
    /// Rising ramp.
    Bell,
    /// Falling ramp.
    Funnel,
}

impl CbfClass {
    /// Dense label 0/1/2.
    pub fn label(self) -> usize {
        match self {
            CbfClass::Cylinder => 0,
            CbfClass::Bell => 1,
            CbfClass::Funnel => 2,
        }
    }

    /// All classes in label order.
    pub const ALL: [CbfClass; 3] = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
}

/// CBF generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CbfConfig {
    /// Instance length (the classic CBF uses 128).
    pub length: usize,
    /// Decimal digits the emitted values are rounded to (paper: 4).
    pub precision: u8,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CbfConfig {
    fn default() -> Self {
        Self {
            length: 128,
            precision: 4,
            seed: 0,
        }
    }
}

/// A seeded CBF instance generator.
#[derive(Debug)]
pub struct CbfGenerator {
    config: CbfConfig,
    rng: SmallRng,
}

impl CbfGenerator {
    /// Create a generator.
    pub fn new(config: CbfConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
        }
    }

    /// The configured instance length.
    pub fn length(&self) -> usize {
        self.config.length
    }

    /// Generate one instance of the given class.
    pub fn instance(&mut self, class: CbfClass) -> Vec<f64> {
        let n = self.config.length;
        // Scale the classic [16,32]/[32,96] intervals to the actual length.
        let scale = n as f64 / 128.0;
        let a_lo = (16.0 * scale).max(1.0) as usize;
        let a_hi = (32.0 * scale).max(a_lo as f64 + 1.0) as usize;
        let w_lo = (32.0 * scale).max(1.0) as usize;
        let w_hi = (96.0 * scale).max(w_lo as f64 + 1.0) as usize;
        let a = self.rng.gen_range(a_lo..=a_hi).min(n.saturating_sub(2));
        let width = self.rng.gen_range(w_lo..=w_hi);
        let b = (a + width).min(n - 1).max(a + 1);
        let eta = standard_normal(&mut self.rng);
        let amp = 6.0 + eta;
        let mut out = Vec::with_capacity(n);
        for t in 0..n {
            let shape = if t >= a && t <= b {
                match class {
                    CbfClass::Cylinder => amp,
                    CbfClass::Bell => amp * (t - a) as f64 / (b - a) as f64,
                    CbfClass::Funnel => amp * (b - t) as f64 / (b - a) as f64,
                }
            } else {
                0.0
            };
            out.push(shape + standard_normal(&mut self.rng));
        }
        round_all(&mut out, self.config.precision);
        out
    }

    /// Generate one instance with a cyclic class (0, 1, 2, 0, ...),
    /// returning `(values, label)`.
    pub fn next_cycled(&mut self, counter: usize) -> (Vec<f64>, usize) {
        let class = CbfClass::ALL[counter % 3];
        (self.instance(class), class.label())
    }

    /// Generate a labeled dataset with `per_class` instances of each class.
    pub fn dataset(&mut self, per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::with_capacity(per_class * 3);
        let mut labels = Vec::with_capacity(per_class * 3);
        for _ in 0..per_class {
            for class in CbfClass::ALL {
                rows.push(self.instance(class));
                labels.push(class.label());
            }
        }
        (rows, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_have_configured_length() {
        let mut g = CbfGenerator::new(CbfConfig::default());
        for class in CbfClass::ALL {
            assert_eq!(g.instance(class).len(), 128);
        }
        let mut g = CbfGenerator::new(CbfConfig {
            length: 256,
            ..Default::default()
        });
        assert_eq!(g.instance(CbfClass::Bell).len(), 256);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = CbfGenerator::new(CbfConfig::default());
        let mut b = CbfGenerator::new(CbfConfig::default());
        assert_eq!(
            a.instance(CbfClass::Cylinder),
            b.instance(CbfClass::Cylinder)
        );
    }

    #[test]
    fn values_respect_precision() {
        let mut g = CbfGenerator::new(CbfConfig::default());
        let inst = g.instance(CbfClass::Funnel);
        for v in inst {
            let scaled = v * 1e4;
            assert!(
                (scaled - scaled.round()).abs() < 1e-6,
                "{v} not at 4 digits"
            );
        }
    }

    #[test]
    fn shapes_are_distinguishable() {
        // Cylinder plateaus high in the middle; bell rises; funnel falls.
        let mut g = CbfGenerator::new(CbfConfig {
            seed: 5,
            ..Default::default()
        });
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let mut bell_late_minus_early = 0.0;
        let mut funnel_late_minus_early = 0.0;
        for _ in 0..20 {
            let bell = g.instance(CbfClass::Bell);
            let funnel = g.instance(CbfClass::Funnel);
            bell_late_minus_early += avg(&bell[64..96]) - avg(&bell[16..48]);
            funnel_late_minus_early += avg(&funnel[64..96]) - avg(&funnel[16..48]);
        }
        assert!(bell_late_minus_early > 0.0, "bell should rise");
        assert!(funnel_late_minus_early < 0.0, "funnel should fall");
    }

    #[test]
    fn dataset_is_balanced() {
        let mut g = CbfGenerator::new(CbfConfig::default());
        let (rows, labels) = g.dataset(10);
        assert_eq!(rows.len(), 30);
        for c in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn cycled_labels_rotate() {
        let mut g = CbfGenerator::new(CbfConfig::default());
        assert_eq!(g.next_cycled(0).1, 0);
        assert_eq!(g.next_cycled(1).1, 1);
        assert_eq!(g.next_cycled(2).1, 2);
        assert_eq!(g.next_cycled(3).1, 0);
    }

    #[test]
    fn short_instances_work() {
        let mut g = CbfGenerator::new(CbfConfig {
            length: 32,
            ..Default::default()
        });
        assert_eq!(g.instance(CbfClass::Cylinder).len(), 32);
    }
}
