//! Random-sampling helpers: a Box–Muller standard-normal sampler (kept
//! in-repo so we do not need `rand_distr`) and precision rounding.

use rand::Rng;

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample `N(mean, std)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Round every value to `precision` decimal digits — generators emit data
/// already at the dataset's declared precision so the quantizing lossless
/// codecs (Sprintz, BUFF) are exactly lossless on it.
pub fn round_all(data: &mut [f64], precision: u8) {
    let scale = 10f64.powi(precision as i32);
    for v in data.iter_mut() {
        *v = (*v * scale).round() / scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_right_moments() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn scaled_normal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn rounding() {
        let mut data = vec![1.23456, -0.00049];
        round_all(&mut data, 3);
        assert_eq!(data, vec![1.235, -0.0]);
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
