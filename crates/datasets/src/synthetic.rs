//! Synthetic stand-ins for the UCR and UCI archives.
//!
//! The paper evaluates against ~250 public UCR/UCI datasets we cannot
//! redistribute; these seeded generators produce labeled time-series
//! classification sets spanning the same regimes (smooth periodic shapes,
//! piecewise shapes, noisy trends) so that the *relative* behaviour of the
//! codecs at matched ratios — which depends on signal smoothness and
//! spectrum, not on archive identity — is preserved. See DESIGN.md
//! ("Substitutions").

use crate::rng::{round_all, standard_normal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic archives.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Series length per instance.
    pub length: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Instances per class.
    pub per_class: usize,
    /// Additive noise standard deviation.
    pub noise: f64,
    /// Decimal precision of emitted values.
    pub precision: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            length: 128,
            n_classes: 4,
            per_class: 30,
            noise: 0.3,
            precision: 5,
            seed: 0,
        }
    }
}

/// A generated labeled dataset.
#[derive(Debug, Clone)]
pub struct Labeled {
    /// Feature rows (one time series each).
    pub rows: Vec<Vec<f64>>,
    /// Class labels, dense from 0.
    pub labels: Vec<usize>,
}

/// UCR-like: smooth periodic shapes — class determines frequency, phase
/// and amplitude; instances add jitter and noise. (Paper: 5-digit
/// precision.)
pub fn ucr_like(config: SyntheticConfig) -> Labeled {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut rows = Vec::with_capacity(config.n_classes * config.per_class);
    let mut labels = Vec::with_capacity(rows.capacity());
    for class in 0..config.n_classes {
        let freq = 1.0 + class as f64 * 0.8;
        let amp = 2.0 + class as f64 * 0.5;
        for _ in 0..config.per_class {
            let phase = rng.gen::<f64>() * 0.5;
            let drift = standard_normal(&mut rng) * 0.2;
            let mut series: Vec<f64> = (0..config.length)
                .map(|t| {
                    let x = t as f64 / config.length as f64;
                    amp * (2.0 * std::f64::consts::PI * freq * (x + phase)).sin()
                        + drift * t as f64 / config.length as f64
                        + config.noise * standard_normal(&mut rng)
                })
                .collect();
            round_all(&mut series, config.precision);
            rows.push(series);
            labels.push(class);
        }
    }
    Labeled { rows, labels }
}

/// UCI-like: sensor-style piecewise-level series — class determines a step
/// pattern of plateau levels; instances add level jitter and noise.
/// (Paper: 6-digit precision.)
pub fn uci_like(config: SyntheticConfig) -> Labeled {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0xA5A5));
    let plateaus = 4usize;
    let mut rows = Vec::with_capacity(config.n_classes * config.per_class);
    let mut labels = Vec::with_capacity(rows.capacity());
    // Deterministic per-class level patterns and irregular plateau
    // boundaries (regular boundaries alias with approximation windows and
    // produce knife-edge accuracy artifacts).
    let mut pattern_rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0x5A5A));
    let mut cuts: Vec<usize> = (1..plateaus)
        .map(|p| {
            let base = p * config.length / plateaus;
            let wiggle = config.length / (plateaus * 4);
            base + pattern_rng.gen_range(0..=wiggle.max(1)) - wiggle.max(1) / 2
        })
        .collect();
    cuts.sort_unstable();
    cuts.push(config.length);
    let patterns: Vec<Vec<f64>> = (0..config.n_classes)
        .map(|c| {
            (0..plateaus)
                .map(|_| pattern_rng.gen_range(-3.0..3.0) + c as f64)
                .collect()
        })
        .collect();
    for (class, pattern) in patterns.iter().enumerate() {
        // A mild class-dependent trend keeps every feature informative, so
        // classifier accuracy degrades smoothly (not cliff-wise) under
        // window-based approximation.
        let trend = (class as f64 - config.n_classes as f64 / 2.0) * 0.8;
        for _ in 0..config.per_class {
            let jitter = standard_normal(&mut rng) * 0.2;
            let mut series = Vec::with_capacity(config.length);
            for t in 0..config.length {
                let p = cuts.iter().position(|&c| t < c).unwrap_or(plateaus - 1);
                let x = t as f64 / config.length as f64;
                series.push(
                    pattern[p] + trend * x + jitter + config.noise * standard_normal(&mut rng),
                );
            }
            round_all(&mut series, config.precision);
            rows.push(series);
            labels.push(class);
        }
    }
    Labeled { rows, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ucr_shapes_and_labels() {
        let d = ucr_like(SyntheticConfig::default());
        assert_eq!(d.rows.len(), 120);
        assert_eq!(d.labels.len(), 120);
        assert!(d.rows.iter().all(|r| r.len() == 128));
        for c in 0..4 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 30);
        }
    }

    #[test]
    fn uci_is_piecewise_flat() {
        let d = uci_like(SyntheticConfig {
            noise: 0.0,
            ..Default::default()
        });
        // Zero-noise series are a few plateaus plus a mild trend: large
        // jumps only occur at the (at most 3) plateau boundaries.
        let row = &d.rows[0];
        let jumps = row.windows(2).filter(|w| (w[0] - w[1]).abs() > 0.3).count();
        assert!(
            jumps <= 3,
            "expected at most 3 plateau jumps, found {jumps}"
        );
        // The within-plateau variation is small compared to level gaps.
        let max_step = row
            .windows(2)
            .map(|w| (w[0] - w[1]).abs())
            .fold(0.0f64, f64::max);
        assert!(max_step > 0.3, "plateau structure missing");
    }

    #[test]
    fn deterministic() {
        let a = ucr_like(SyntheticConfig::default());
        let b = ucr_like(SyntheticConfig::default());
        assert_eq!(a.rows, b.rows);
        let a = uci_like(SyntheticConfig::default());
        let b = uci_like(SyntheticConfig::default());
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn classes_are_separable_by_simple_stats() {
        // Classes differ in amplitude/levels, so per-class mean absolute
        // values should differ — a sanity proxy for learnability.
        let d = ucr_like(SyntheticConfig {
            noise: 0.1,
            ..Default::default()
        });
        let class_mean = |c: usize| {
            let vals: Vec<f64> = d
                .rows
                .iter()
                .zip(&d.labels)
                .filter(|(_, &l)| l == c)
                .flat_map(|(r, _)| r.iter().map(|v| v.abs()))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(class_mean(3) > class_mean(0));
    }

    #[test]
    fn respects_precision() {
        let d = ucr_like(SyntheticConfig {
            precision: 3,
            ..Default::default()
        });
        for v in &d.rows[0] {
            let s = v * 1e3;
            assert!((s - s.round()).abs() < 1e-6);
        }
    }
}
