//! Compression-sequencing policies (§IV-F).
//!
//! The segment-management component decides *which* segments get recoded
//! first when space runs out. AdaEdge defaults to LRU — least recently
//! accessed segments are compressed most aggressively, so query-hot and
//! fresh segments stay accurate. RRDTool-style FIFO and a query-count
//! policy are provided for the ablation benches; all implement the same
//! GET/PUT-notification interface so alternatives slot in easily.

use crate::segment::SegmentId;
use std::collections::HashMap;

/// Notification interface + victim ordering for recoding policies.
pub trait CompressionPolicy: Send {
    /// A segment was inserted (PUT).
    fn on_insert(&mut self, id: SegmentId);

    /// A segment was read by a query (GET).
    fn on_access(&mut self, id: SegmentId);

    /// A segment was recoded in place (treated as a fresh PUT by LRU:
    /// newly compressed segments go to the back of the list).
    fn on_recode(&mut self, id: SegmentId);

    /// A segment was removed.
    fn on_remove(&mut self, id: SegmentId);

    /// Segments in recoding order: least valuable first.
    fn victim_order(&self) -> Vec<SegmentId>;

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// LRU: victims ordered by last touch (insert, access or recode).
#[derive(Debug, Default)]
pub struct LruPolicy {
    seq: u64,
    last_touch: HashMap<SegmentId, u64>,
}

impl LruPolicy {
    /// Create an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, id: SegmentId) {
        self.seq += 1;
        self.last_touch.insert(id, self.seq);
    }
}

impl CompressionPolicy for LruPolicy {
    fn on_insert(&mut self, id: SegmentId) {
        self.touch(id);
    }

    fn on_access(&mut self, id: SegmentId) {
        self.touch(id);
    }

    fn on_recode(&mut self, id: SegmentId) {
        self.touch(id);
    }

    fn on_remove(&mut self, id: SegmentId) {
        self.last_touch.remove(&id);
    }

    fn victim_order(&self) -> Vec<SegmentId> {
        let mut ids: Vec<(SegmentId, u64)> =
            self.last_touch.iter().map(|(&id, &s)| (id, s)).collect();
        ids.sort_by_key(|&(_, s)| s);
        ids.into_iter().map(|(id, _)| id).collect()
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// FIFO / round-robin (RRDTool-style): victims ordered purely by insertion;
/// queries do not protect segments.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    seq: u64,
    inserted: HashMap<SegmentId, u64>,
}

impl FifoPolicy {
    /// Create an empty FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CompressionPolicy for FifoPolicy {
    fn on_insert(&mut self, id: SegmentId) {
        self.seq += 1;
        self.inserted.entry(id).or_insert(self.seq);
    }

    fn on_access(&mut self, _id: SegmentId) {}

    fn on_recode(&mut self, _id: SegmentId) {}

    fn on_remove(&mut self, id: SegmentId) {
        self.inserted.remove(&id);
    }

    fn victim_order(&self) -> Vec<SegmentId> {
        let mut ids: Vec<(SegmentId, u64)> =
            self.inserted.iter().map(|(&id, &s)| (id, s)).collect();
        ids.sort_by_key(|&(_, s)| s);
        ids.into_iter().map(|(id, _)| id).collect()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Query-count informativeness: least-queried segments are recoded first,
/// with insertion order breaking ties (an informativeness measure from
/// §IV-B2).
#[derive(Debug, Default)]
pub struct QueryCountPolicy {
    seq: u64,
    stats: HashMap<SegmentId, (u64, u64)>, // (query count, insert seq)
}

impl QueryCountPolicy {
    /// Create an empty query-count policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CompressionPolicy for QueryCountPolicy {
    fn on_insert(&mut self, id: SegmentId) {
        self.seq += 1;
        let seq = self.seq;
        self.stats.entry(id).or_insert((0, seq));
    }

    fn on_access(&mut self, id: SegmentId) {
        if let Some(entry) = self.stats.get_mut(&id) {
            entry.0 += 1;
        }
    }

    fn on_recode(&mut self, _id: SegmentId) {}

    fn on_remove(&mut self, id: SegmentId) {
        self.stats.remove(&id);
    }

    fn victim_order(&self) -> Vec<SegmentId> {
        let mut ids: Vec<(SegmentId, (u64, u64))> =
            self.stats.iter().map(|(&id, &s)| (id, s)).collect();
        ids.sort_by_key(|&(_, s)| s);
        ids.into_iter().map(|(id, _)| id).collect()
    }

    fn name(&self) -> &'static str {
        "query-count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<SegmentId> {
        v.iter().map(|&i| SegmentId(i)).collect()
    }

    #[test]
    fn lru_orders_by_recency() {
        let mut p = LruPolicy::new();
        for i in 0..4 {
            p.on_insert(SegmentId(i));
        }
        assert_eq!(p.victim_order(), ids(&[0, 1, 2, 3]));
        p.on_access(SegmentId(0)); // protect the oldest
        assert_eq!(p.victim_order(), ids(&[1, 2, 3, 0]));
        p.on_recode(SegmentId(1)); // recoded goes to the back
        assert_eq!(p.victim_order(), ids(&[2, 3, 0, 1]));
    }

    #[test]
    fn lru_remove() {
        let mut p = LruPolicy::new();
        p.on_insert(SegmentId(1));
        p.on_insert(SegmentId(2));
        p.on_remove(SegmentId(1));
        assert_eq!(p.victim_order(), ids(&[2]));
    }

    #[test]
    fn fifo_ignores_access() {
        let mut p = FifoPolicy::new();
        for i in 0..3 {
            p.on_insert(SegmentId(i));
        }
        p.on_access(SegmentId(0));
        p.on_access(SegmentId(0));
        assert_eq!(p.victim_order(), ids(&[0, 1, 2]));
    }

    #[test]
    fn query_count_protects_hot_segments() {
        let mut p = QueryCountPolicy::new();
        for i in 0..3 {
            p.on_insert(SegmentId(i));
        }
        p.on_access(SegmentId(0));
        p.on_access(SegmentId(0));
        p.on_access(SegmentId(1));
        assert_eq!(p.victim_order(), ids(&[2, 1, 0]));
    }

    #[test]
    fn reinsert_keeps_original_fifo_slot() {
        let mut p = FifoPolicy::new();
        p.on_insert(SegmentId(7));
        p.on_insert(SegmentId(8));
        p.on_insert(SegmentId(7)); // duplicate insert keeps first seq
        assert_eq!(p.victim_order(), ids(&[7, 8]));
    }
}
