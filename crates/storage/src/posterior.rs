//! Selector-posterior persistence for the fleet's evict/restore cycle.
//!
//! A gateway multiplexing thousands of streams cannot keep every stream's
//! bandit state resident forever: idle streams are evicted from the
//! bounded stream table and their learned posterior — per-arm pull counts,
//! reward estimates, failure totals and quarantine verdicts — is parked
//! here, to be restored bit-exactly when the stream next sends data (the
//! estimate-based policies restore by overwrite, so an evicted stream
//! resumes learning exactly where it stopped).
//!
//! Format (little-endian throughout), following the segment file's
//! checksummed idiom ([`crate::persist`]):
//!
//! ```text
//! magic "AEPS" | version: u16 | count: u64
//! per record:
//!   stream_id: u64 | n_arms: u8
//!   per arm: codec-name len: u8 + bytes | pulls: u64 | estimate: f64
//!            | failure_total: u64
//!   quarantine_bits: u64
//!   crc32c: u32 over the record bytes above
//! ```
//!
//! Codec identifiers are stored by *name* so the format survives enum
//! reordering, and every record carries a CRC-32C trailer so bit rot is
//! detected at load time — a silently corrupted posterior would steer a
//! stream's selector wrong for thousands of segments.

use crate::persist::PersistError;
use adaedge_codecs::crc32c::{crc32c, crc32c_append};
use adaedge_codecs::CodecId;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"AEPS";
const VERSION: u16 = 1;

/// One stream's persisted selector posterior. Vectors are aligned with
/// `arms`; `quarantine_bits` uses bit `i` = arm `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPosterior {
    /// The stream this posterior belongs to.
    pub stream_id: u64,
    /// The arm roster the counts below are aligned with.
    pub arms: Vec<CodecId>,
    /// Per-arm pull counts.
    pub pulls: Vec<u64>,
    /// Per-arm reward estimates.
    pub estimates: Vec<f64>,
    /// Per-arm cumulative failure counts.
    pub failure_totals: Vec<u64>,
    /// Quarantine verdicts, bit `i` = arm `i`.
    pub quarantine_bits: u64,
}

impl StreamPosterior {
    /// Sanity-check internal alignment (vector lengths match the roster).
    pub fn is_consistent(&self) -> bool {
        let n = self.arms.len();
        self.pulls.len() == n && self.estimates.len() == n && self.failure_totals.len() == n
    }
}

fn write_record<W: Write>(w: &mut W, p: &StreamPosterior) -> Result<(), PersistError> {
    assert!(p.is_consistent(), "posterior vectors misaligned");
    assert!(p.arms.len() <= u8::MAX as usize, "too many arms");
    w.write_all(&p.stream_id.to_le_bytes())?;
    w.write_all(&[p.arms.len() as u8])?;
    for (i, &codec) in p.arms.iter().enumerate() {
        let name = codec.name().as_bytes();
        w.write_all(&[name.len() as u8])?;
        w.write_all(name)?;
        w.write_all(&p.pulls[i].to_le_bytes())?;
        w.write_all(&p.estimates[i].to_le_bytes())?;
        w.write_all(&p.failure_totals[i].to_le_bytes())?;
    }
    w.write_all(&p.quarantine_bits.to_le_bytes())?;
    Ok(())
}

/// `Read` adapter folding every byte into a running CRC-32C (the
/// [`crate::persist`] idiom), so records verify without buffering.
struct CrcReader<R> {
    inner: R,
    crc: u32,
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc = crc32c_append(self.crc, &buf[..n]);
        Ok(n)
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_record<R: Read>(r: &mut R) -> Result<StreamPosterior, PersistError> {
    let stream_id = read_u64(r)?;
    let mut n_arms = [0u8; 1];
    r.read_exact(&mut n_arms)?;
    let n = n_arms[0] as usize;
    if n == 0 {
        return Err(PersistError::Corrupt("posterior with zero arms"));
    }
    let mut arms = Vec::with_capacity(n);
    let mut pulls = Vec::with_capacity(n);
    let mut estimates = Vec::with_capacity(n);
    let mut failure_totals = Vec::with_capacity(n);
    for _ in 0..n {
        let mut len = [0u8; 1];
        r.read_exact(&mut len)?;
        let mut name = vec![0u8; len[0] as usize];
        r.read_exact(&mut name)?;
        let name = std::str::from_utf8(&name)
            .map_err(|_| PersistError::Corrupt("codec name not utf-8"))?;
        arms.push(CodecId::from_name(name).ok_or(PersistError::Corrupt("unknown codec name"))?);
        pulls.push(read_u64(r)?);
        estimates.push(read_f64(r)?);
        failure_totals.push(read_u64(r)?);
    }
    let quarantine_bits = read_u64(r)?;
    Ok(StreamPosterior {
        stream_id,
        arms,
        pulls,
        estimates,
        failure_totals,
        quarantine_bits,
    })
}

/// Write stream posteriors to `path`, replacing any existing file.
pub fn save_posteriors<'a>(
    path: &Path,
    posteriors: impl ExactSizeIterator<Item = &'a StreamPosterior>,
) -> Result<(), PersistError> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(posteriors.len() as u64).to_le_bytes())?;
    let mut record = Vec::new();
    for p in posteriors {
        record.clear();
        write_record(&mut record, p)?;
        w.write_all(&record)?;
        w.write_all(&crc32c(&record).to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read every stream posterior from `path`, verifying each record's CRC.
pub fn load_posteriors(path: &Path) -> Result<Vec<StreamPosterior>, PersistError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    let mut version = [0u8; 2];
    r.read_exact(&mut version)?;
    if &magic != MAGIC || u16::from_le_bytes(version) != VERSION {
        return Err(PersistError::BadHeader);
    }
    let count = read_u64(&mut r)? as usize;
    if count > 1 << 30 {
        return Err(PersistError::Corrupt("posterior count implausible"));
    }
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let mut cr = CrcReader {
            inner: &mut r,
            crc: 0,
        };
        let rec = read_record(&mut cr)?;
        let computed = cr.crc;
        if read_u32(&mut r)? != computed {
            return Err(PersistError::ChecksumMismatch);
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("adaedge-posterior-{name}-{}", std::process::id()));
        p
    }

    fn sample() -> Vec<StreamPosterior> {
        vec![
            StreamPosterior {
                stream_id: 7,
                arms: vec![CodecId::Gzip, CodecId::Sprintz, CodecId::Snappy],
                pulls: vec![120, 3400, 9],
                estimates: vec![0.41, 0.873456789, 0.02],
                failure_totals: vec![0, 0, 4],
                quarantine_bits: 0b100,
            },
            StreamPosterior {
                stream_id: u64::MAX,
                arms: vec![CodecId::Raw],
                pulls: vec![0],
                estimates: vec![1.0],
                failure_totals: vec![0],
                quarantine_bits: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let posteriors = sample();
        let path = tmp("roundtrip");
        save_posteriors(&path, posteriors.iter()).unwrap();
        let loaded = load_posteriors(&path).unwrap();
        assert_eq!(loaded, posteriors);
        // f64 estimates survive to the bit.
        assert_eq!(
            loaded[0].estimates[1].to_bits(),
            posteriors[0].estimates[1].to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_in_estimate_detected() {
        let posteriors = sample();
        let path = tmp("bitflip");
        save_posteriors(&path, posteriors.iter()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the first record's estimate region:
        // structurally still valid, only the CRC can catch it.
        let target = 0.873456789f64.to_le_bytes();
        let pos = bytes.windows(8).position(|w| w == target).unwrap();
        bytes[pos + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_posteriors(&path),
            Err(PersistError::ChecksumMismatch)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_rejected() {
        let path = tmp("badheader");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert!(matches!(
            load_posteriors(&path),
            Err(PersistError::BadHeader)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let posteriors = sample();
        let path = tmp("truncated");
        save_posteriors(&path, posteriors.iter()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load_posteriors(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_roundtrips() {
        let path = tmp("empty");
        save_posteriors(&path, [].iter()).unwrap();
        assert!(load_posteriors(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
