//! Segments: the unit of storage, transfer and recoding.

use adaedge_codecs::{CompressedBlock, POINT_BYTES};
use serde::{Deserialize, Serialize};

/// Unique, monotonically assigned segment identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u64);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}

/// The representation a segment currently holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SegmentData {
    /// Uncompressed points (as ingested).
    Raw(Vec<f64>),
    /// A compressed block produced by some codec.
    Compressed(CompressedBlock),
}

/// One stored segment with its metadata (§IV-C: every segment carries its
/// compression configuration so downstream codecs can decode or recode it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// Identifier.
    pub id: SegmentId,
    /// Ingestion timestamp (logical tick or point index).
    pub timestamp: u64,
    /// Current representation.
    pub data: SegmentData,
}

impl Segment {
    /// Create a raw (uncompressed) segment.
    pub fn raw(id: SegmentId, timestamp: u64, points: Vec<f64>) -> Self {
        Self {
            id,
            timestamp,
            data: SegmentData::Raw(points),
        }
    }

    /// Create an already-compressed segment.
    pub fn compressed(id: SegmentId, timestamp: u64, block: CompressedBlock) -> Self {
        Self {
            id,
            timestamp,
            data: SegmentData::Compressed(block),
        }
    }

    /// Number of original data points the segment covers.
    pub fn n_points(&self) -> usize {
        match &self.data {
            SegmentData::Raw(points) => points.len(),
            SegmentData::Compressed(block) => block.n_points as usize,
        }
    }

    /// Bytes this segment currently occupies.
    pub fn size_bytes(&self) -> usize {
        match &self.data {
            SegmentData::Raw(points) => points.len() * POINT_BYTES,
            SegmentData::Compressed(block) => block.compressed_bytes(),
        }
    }

    /// Current compression ratio (1.0 for raw segments).
    pub fn ratio(&self) -> f64 {
        match &self.data {
            SegmentData::Raw(_) => 1.0,
            SegmentData::Compressed(block) => block.ratio(),
        }
    }

    /// Whether the segment still holds raw points.
    pub fn is_raw(&self) -> bool {
        matches!(self.data, SegmentData::Raw(_))
    }

    /// The compressed block, if any.
    pub fn block(&self) -> Option<&CompressedBlock> {
        match &self.data {
            SegmentData::Raw(_) => None,
            SegmentData::Compressed(block) => Some(block),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_codecs::CodecId;

    #[test]
    fn raw_segment_accounting() {
        let s = Segment::raw(SegmentId(1), 0, vec![1.0; 100]);
        assert_eq!(s.n_points(), 100);
        assert_eq!(s.size_bytes(), 800);
        assert_eq!(s.ratio(), 1.0);
        assert!(s.is_raw());
        assert!(s.block().is_none());
    }

    #[test]
    fn compressed_segment_accounting() {
        let block = CompressedBlock::new(CodecId::Paa, 100, vec![0u8; 200]);
        let s = Segment::compressed(SegmentId(2), 5, block);
        assert_eq!(s.n_points(), 100);
        assert_eq!(s.size_bytes(), 200);
        assert!((s.ratio() - 0.25).abs() < 1e-12);
        assert!(!s.is_raw());
        assert_eq!(s.block().unwrap().codec, CodecId::Paa);
    }
}
