//! # adaedge-storage
//!
//! Segment management for AdaEdge (§IV-F): the byte-accounted segment
//! store with a hard storage budget and recoding threshold, and the
//! pluggable compression-sequencing policies (LRU by default, FIFO and
//! query-count for ablations) that decide which segments get recoded
//! first when space runs out.
//!
//! ```
//! use adaedge_storage::{SegmentStore, SegmentId};
//!
//! let mut store = SegmentStore::with_budget(10_000);
//! let id = store.put_raw(vec![0.5; 100]).unwrap();
//! assert_eq!(store.used_bytes(), 800);
//! assert!(!store.over_threshold(0.8));
//! assert_eq!(store.victim_order(), vec![id]);
//! ```

#![warn(missing_docs)]

pub mod persist;
pub mod policy;
pub mod posterior;
pub mod segment;
pub mod spool;
pub mod store;

pub use persist::{load_segments, save_segments, PersistError};
pub use policy::{CompressionPolicy, FifoPolicy, LruPolicy, QueryCountPolicy};
pub use posterior::{load_posteriors, save_posteriors, StreamPosterior};
pub use segment::{Segment, SegmentData, SegmentId};
pub use spool::{ReplayItem, Replayer, Spool, SpoolConfig, SpoolError, SpoolRecord, SpoolStats};
pub use store::{SegmentStore, StoreError};
