//! The segment store: byte-accounted segment map with a pluggable
//! compression-sequencing policy and an optional hard storage budget.

use crate::policy::{CompressionPolicy, LruPolicy};
use crate::segment::{Segment, SegmentData, SegmentId};
use adaedge_codecs::CompressedBlock;
use std::collections::HashMap;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The referenced segment does not exist.
    NotFound(SegmentId),
    /// An insert or replace would exceed the hard storage budget.
    BudgetExceeded {
        /// Bytes the operation needed.
        needed: usize,
        /// Bytes actually available under the budget.
        available: usize,
    },
    /// A stored block no longer matches the CRC-32C recorded when it was
    /// written (in-memory bit rot, or a buggy writer scribbled on it).
    ChecksumMismatch(SegmentId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "{id} not found"),
            StoreError::BudgetExceeded { needed, available } => {
                write!(
                    f,
                    "budget exceeded: needed {needed} B, available {available} B"
                )
            }
            StoreError::ChecksumMismatch(id) => {
                write!(f, "{id} failed checksum verification")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Byte-accounted segment store.
///
/// `budget_bytes` is a *hard* limit: operations that would exceed it fail,
/// mirroring the paper's experiment setup where breaching a constraint
/// fails the run. Recoding pressure is signalled earlier through
/// [`SegmentStore::over_threshold`].
pub struct SegmentStore {
    segments: HashMap<SegmentId, Segment>,
    policy: Box<dyn CompressionPolicy>,
    used_bytes: usize,
    budget_bytes: Option<usize>,
    next_id: u64,
    clock: u64,
    /// CRC-32C per compressed segment, recorded at write time. Only
    /// populated when verification is enabled.
    checksums: HashMap<SegmentId, u32>,
    verify_checksums: bool,
    /// Verification failures observed by reads (atomic so `peek(&self)`
    /// can count them too).
    checksum_failures: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("segments", &self.segments.len())
            .field("used_bytes", &self.used_bytes)
            .field("budget_bytes", &self.budget_bytes)
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl SegmentStore {
    /// Unbounded store with the default LRU policy.
    pub fn unbounded() -> Self {
        Self::new(None, Box::new(LruPolicy::new()))
    }

    /// Budgeted store with the default LRU policy.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self::new(Some(budget_bytes), Box::new(LruPolicy::new()))
    }

    /// Fully configurable constructor.
    pub fn new(budget_bytes: Option<usize>, policy: Box<dyn CompressionPolicy>) -> Self {
        Self {
            segments: HashMap::new(),
            policy,
            used_bytes: 0,
            budget_bytes,
            next_id: 0,
            clock: 0,
            checksums: HashMap::new(),
            verify_checksums: false,
            checksum_failures: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Enable CRC-32C verification: every compressed block is checksummed
    /// when written and re-verified on [`SegmentStore::peek`] /
    /// [`SegmentStore::get`], so bit rot is caught before a corrupted
    /// payload reaches a decoder. Off by default (reads stay
    /// byte-identical in cost to the unverified store).
    pub fn with_checksum_verification(mut self) -> Self {
        self.verify_checksums = true;
        self
    }

    /// Whether checksum verification is enabled.
    pub fn verifies_checksums(&self) -> bool {
        self.verify_checksums
    }

    /// How many reads failed checksum verification so far.
    pub fn checksum_failures(&self) -> u64 {
        self.checksum_failures
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn record_checksum(&mut self, id: SegmentId, seg_checksum: Option<u32>) {
        if !self.verify_checksums {
            return;
        }
        match seg_checksum {
            Some(crc) => {
                self.checksums.insert(id, crc);
            }
            None => {
                self.checksums.remove(&id);
            }
        }
    }

    /// `true` when the segment's current bytes still match its recorded
    /// checksum (trivially true with verification off, for raw segments,
    /// and for missing segments — those are reported by the caller's
    /// `None`/`NotFound` path instead).
    fn checksum_ok(&self, id: SegmentId) -> bool {
        if !self.verify_checksums {
            return true;
        }
        let (Some(seg), Some(&expected)) = (self.segments.get(&id), self.checksums.get(&id)) else {
            return true;
        };
        match seg.block() {
            Some(block) if block.checksum() != expected => {
                self.checksum_failures
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                false
            }
            _ => true,
        }
    }

    /// Explicitly verify one segment against its recorded checksum.
    pub fn verify(&self, id: SegmentId) -> Result<(), StoreError> {
        if self.segments.contains_key(&id) {
            if self.checksum_ok(id) {
                Ok(())
            } else {
                Err(StoreError::ChecksumMismatch(id))
            }
        } else {
            Err(StoreError::NotFound(id))
        }
    }

    fn check_budget(&self, additional: usize) -> Result<(), StoreError> {
        if let Some(budget) = self.budget_bytes {
            let available = budget.saturating_sub(self.used_bytes);
            if additional > available {
                return Err(StoreError::BudgetExceeded {
                    needed: additional,
                    available,
                });
            }
        }
        Ok(())
    }

    /// Insert a raw segment; returns its id.
    pub fn put_raw(&mut self, points: Vec<f64>) -> Result<SegmentId, StoreError> {
        let bytes = points.len() * adaedge_codecs::POINT_BYTES;
        self.check_budget(bytes)?;
        let id = SegmentId(self.next_id);
        self.next_id += 1;
        self.clock += 1;
        self.segments
            .insert(id, Segment::raw(id, self.clock, points));
        self.used_bytes += bytes;
        self.policy.on_insert(id);
        Ok(id)
    }

    /// Insert a compressed segment; returns its id.
    pub fn put_compressed(&mut self, block: CompressedBlock) -> Result<SegmentId, StoreError> {
        let bytes = block.compressed_bytes();
        self.check_budget(bytes)?;
        let id = SegmentId(self.next_id);
        self.next_id += 1;
        self.clock += 1;
        let crc = self.verify_checksums.then(|| block.checksum());
        self.segments
            .insert(id, Segment::compressed(id, self.clock, block));
        self.used_bytes += bytes;
        self.record_checksum(id, crc);
        self.policy.on_insert(id);
        Ok(id)
    }

    /// Peek a segment without touching the policy (internal reads, e.g. by
    /// the recoding thread). With verification enabled, a segment whose
    /// bytes fail their checksum reads as `None` (and is counted in
    /// [`SegmentStore::checksum_failures`]) so it never reaches a decoder.
    pub fn peek(&self, id: SegmentId) -> Option<&Segment> {
        if !self.checksum_ok(id) {
            return None;
        }
        self.segments.get(&id)
    }

    /// Read a segment on behalf of a query: records the access so the
    /// policy protects it (GET). Checksum-verified like
    /// [`SegmentStore::peek`].
    pub fn get(&mut self, id: SegmentId) -> Option<&Segment> {
        if !self.checksum_ok(id) {
            return None;
        }
        if self.segments.contains_key(&id) {
            self.policy.on_access(id);
        }
        self.segments.get(&id)
    }

    /// Replace a segment's representation (the recoding step). The new
    /// block must describe the same number of points.
    pub fn replace(&mut self, id: SegmentId, block: CompressedBlock) -> Result<(), StoreError> {
        let seg = self.segments.get_mut(&id).ok_or(StoreError::NotFound(id))?;
        let old_bytes = seg.size_bytes();
        let new_bytes = block.compressed_bytes();
        if new_bytes > old_bytes {
            // Growth must still respect the budget.
            if let Some(budget) = self.budget_bytes {
                let available = budget.saturating_sub(self.used_bytes - old_bytes);
                if new_bytes > available {
                    return Err(StoreError::BudgetExceeded {
                        needed: new_bytes,
                        available,
                    });
                }
            }
        }
        let crc = self.verify_checksums.then(|| block.checksum());
        seg.data = SegmentData::Compressed(block);
        self.used_bytes = self.used_bytes - old_bytes + new_bytes;
        self.record_checksum(id, crc);
        self.policy.on_recode(id);
        Ok(())
    }

    /// Remove a segment entirely.
    pub fn remove(&mut self, id: SegmentId) -> Result<Segment, StoreError> {
        let seg = self.segments.remove(&id).ok_or(StoreError::NotFound(id))?;
        self.used_bytes -= seg.size_bytes();
        self.checksums.remove(&id);
        self.policy.on_remove(id);
        Ok(seg)
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The hard budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Fraction of the budget in use (0.0 when unbounded).
    pub fn utilization(&self) -> f64 {
        match self.budget_bytes {
            Some(b) if b > 0 => self.used_bytes as f64 / b as f64,
            _ => 0.0,
        }
    }

    /// Whether usage has crossed `theta` × budget — the recoding trigger
    /// (§IV-C2; the paper uses θ = 0.8).
    pub fn over_threshold(&self, theta: f64) -> bool {
        match self.budget_bytes {
            Some(b) => self.used_bytes as f64 > theta * b as f64,
            None => false,
        }
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Recoding order from the policy: least valuable first.
    pub fn victim_order(&self) -> Vec<SegmentId> {
        self.policy.victim_order()
    }

    /// Iterate all segments (no policy effect), in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Segment> {
        self.segments.values()
    }

    /// All ids, ascending (ingestion order).
    pub fn ids(&self) -> Vec<SegmentId> {
        let mut ids: Vec<SegmentId> = self.segments.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The policy's name (for experiment output).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_codecs::CodecId;

    fn block(n: usize, bytes: usize) -> CompressedBlock {
        CompressedBlock::new(CodecId::Paa, n, vec![0u8; bytes])
    }

    #[test]
    fn byte_accounting_tracks_operations() {
        let mut store = SegmentStore::unbounded();
        let a = store.put_raw(vec![0.0; 100]).unwrap(); // 800 B
        let b = store.put_compressed(block(100, 200)).unwrap();
        assert_eq!(store.used_bytes(), 1000);
        store.replace(a, block(100, 400)).unwrap();
        assert_eq!(store.used_bytes(), 600);
        store.remove(b).unwrap();
        assert_eq!(store.used_bytes(), 400);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn budget_is_hard() {
        let mut store = SegmentStore::with_budget(1000);
        store.put_raw(vec![0.0; 100]).unwrap(); // 800 B
        let err = store.put_raw(vec![0.0; 100]).unwrap_err();
        assert!(matches!(err, StoreError::BudgetExceeded { .. }));
        // Small segment still fits.
        store.put_compressed(block(10, 100)).unwrap();
    }

    #[test]
    fn threshold_detection() {
        let mut store = SegmentStore::with_budget(1000);
        store.put_compressed(block(10, 700)).unwrap();
        assert!(!store.over_threshold(0.8));
        store.put_compressed(block(10, 150)).unwrap();
        assert!(store.over_threshold(0.8));
        assert!((store.utilization() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn get_protects_victims_peek_does_not() {
        let mut store = SegmentStore::unbounded();
        let a = store.put_compressed(block(10, 10)).unwrap();
        let b = store.put_compressed(block(10, 10)).unwrap();
        assert_eq!(store.victim_order(), vec![a, b]);
        store.peek(a);
        assert_eq!(store.victim_order(), vec![a, b]);
        store.get(a);
        assert_eq!(store.victim_order(), vec![b, a]);
    }

    #[test]
    fn replace_moves_to_back_of_lru() {
        let mut store = SegmentStore::unbounded();
        let a = store.put_compressed(block(10, 80)).unwrap();
        let b = store.put_compressed(block(10, 80)).unwrap();
        store.replace(a, block(10, 40)).unwrap();
        assert_eq!(store.victim_order(), vec![b, a]);
    }

    #[test]
    fn replace_missing_fails() {
        let mut store = SegmentStore::unbounded();
        assert_eq!(
            store.replace(SegmentId(99), block(1, 1)),
            Err(StoreError::NotFound(SegmentId(99)))
        );
    }

    #[test]
    fn replacement_growth_respects_budget() {
        let mut store = SegmentStore::with_budget(500);
        let a = store.put_compressed(block(10, 400)).unwrap();
        assert!(store.replace(a, block(10, 600)).is_err());
        // Shrinking always works.
        store.replace(a, block(10, 100)).unwrap();
        assert_eq!(store.used_bytes(), 100);
    }

    #[test]
    fn checksum_verification_catches_bit_rot() {
        let mut store = SegmentStore::unbounded().with_checksum_verification();
        assert!(store.verifies_checksums());
        let id = store.put_compressed(block(10, 50)).unwrap();
        assert_eq!(store.verify(id), Ok(()));
        assert!(store.peek(id).is_some());
        // Flip one payload bit behind the store's back (in-memory bit rot).
        if let SegmentData::Compressed(b) = &mut store.segments.get_mut(&id).unwrap().data {
            b.payload[7] ^= 0x10;
        }
        assert_eq!(store.verify(id), Err(StoreError::ChecksumMismatch(id)));
        assert!(store.peek(id).is_none(), "rotted block must not be served");
        assert!(store.get(id).is_none());
        assert!(store.checksum_failures() >= 3);
        assert_eq!(
            store.verify(SegmentId(99)),
            Err(StoreError::NotFound(SegmentId(99)))
        );
    }

    #[test]
    fn replace_refreshes_checksum_and_raw_is_exempt() {
        let mut store = SegmentStore::unbounded().with_checksum_verification();
        let id = store.put_compressed(block(10, 50)).unwrap();
        store.replace(id, block(10, 20)).unwrap();
        assert_eq!(store.verify(id), Ok(()));
        let raw = store.put_raw(vec![1.0; 16]).unwrap();
        assert_eq!(store.verify(raw), Ok(()));
        store.remove(id).unwrap();
        assert!(store.checksums.is_empty() || !store.checksums.contains_key(&id));
    }

    #[test]
    fn verification_is_off_by_default() {
        let mut store = SegmentStore::unbounded();
        assert!(!store.verifies_checksums());
        let id = store.put_compressed(block(10, 50)).unwrap();
        if let SegmentData::Compressed(b) = &mut store.segments.get_mut(&id).unwrap().data {
            b.payload[0] ^= 0xFF;
        }
        // No bookkeeping, no rejection, no counters.
        assert_eq!(store.verify(id), Ok(()));
        assert!(store.peek(id).is_some());
        assert_eq!(store.checksum_failures(), 0);
        assert!(store.checksums.is_empty());
    }

    #[test]
    fn ids_are_monotonic() {
        let mut store = SegmentStore::unbounded();
        let a = store.put_raw(vec![1.0]).unwrap();
        let b = store.put_raw(vec![2.0]).unwrap();
        assert!(b > a);
        assert_eq!(store.ids(), vec![a, b]);
    }
}
