//! Durable segment spool: append-only, CRC-framed on-disk record log with
//! ACK-gated garbage collection (DESIGN.md §6d).
//!
//! An edge node that loses its uplink for hours or days must keep
//! compressing and *keep the results*: compressed egress lands here in
//! strictly sequenced, CRC-framed records across a directory of
//! append-only segment files, survives power loss via tail-scan crash
//! recovery, and is replayed in capture order once the link returns. The
//! ingest side reports `acked_seq` — the highest contiguous sequence it
//! has durably ingested — and only *fully ACKed, closed* segment files are
//! ever garbage-collected, giving at-least-once delivery end to end (the
//! receiver dedups duplicates idempotently; see `adaedge-core`'s ledger).
//!
//! ## On-disk format (little-endian throughout)
//!
//! Each segment file `NNNNNNNNNNNNNNNNNNNN.open|.closed` (N = 20-digit
//! zero-padded base sequence) starts with a checksummed header:
//!
//! ```text
//! magic "AESL" | version: u16 | base_seq: u64 | created_ts: u64
//! | crc32c: u32 over the 22 bytes above
//! ```
//!
//! followed by length-delimited record frames:
//!
//! ```text
//! len: u32                      — body length = 16 + payload length
//! body: seq: u64 | timestamp: u64 | payload bytes
//! crc32c: u32                   — over the len field and the body
//! ```
//!
//! Frames carry strictly consecutive sequence numbers (`base_seq`,
//! `base_seq + 1`, …), so a replayed or duplicated frame is structurally
//! invalid even when its CRC passes — recovery and replay validate both.
//!
//! ## Durability contract
//!
//! * Appends are single sequential `write(2)` calls; no user-space write
//!   buffering survives an `append` return.
//! * `fdatasync` is batched (`sync_interval`, default ~1s) rather than
//!   paid per record; a segment is always synced before it is closed
//!   (renamed `.open` → `.closed`), so closed segments are durable in
//!   full.
//! * Crash recovery ([`Spool::open`]) scans every segment, validates the
//!   frame chain, and truncates the *tail* segment at the first torn or
//!   corrupt frame — the recovered prefix is exactly the longest valid
//!   frame sequence, and at most the records appended after the last
//!   `fdatasync` batch are lost.
//! * Replay ([`Spool::replayer`]) exposes only records at or below
//!   `durable_seq` (it syncs first). A record that was written but never
//!   synced can be destroyed by a crash, and its sequence number is then
//!   reused for *different* data; shipping only durable records
//!   guarantees a sequence number never reaches the ingest side with two
//!   different payloads.
//!
//! ## Retention
//!
//! Retention is explicit, never silent: when `max_spool_bytes` or
//! `max_spool_age` is exceeded the *oldest closed* segment is dropped
//! (the open segment is never touched) and the dropped record/byte counts
//! — including how many were not yet ACKed — are surfaced in
//! [`SpoolStats`].

use adaedge_codecs::crc32c::{crc32c, crc32c_append};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const MAGIC: &[u8; 4] = b"AESL";
const VERSION: u16 = 1;
/// Segment-header bytes: magic(4) + version(2) + base_seq(8) +
/// created_ts(8) + crc32c(4).
pub const HEADER_BYTES: u64 = 26;
/// Per-frame overhead: len(4) + seq(8) + timestamp(8) + crc32c(4).
pub const FRAME_OVERHEAD: u64 = 24;
/// Fixed body bytes ahead of the payload (seq + timestamp).
const BODY_FIXED: u64 = 16;
/// Hard cap on a single record payload (structural sanity bound).
pub const MAX_PAYLOAD: usize = 1 << 30;

/// Errors from the spool.
#[derive(Debug)]
pub enum SpoolError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Invalid configuration.
    Config(&'static str),
    /// A record payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge {
        /// The offending payload length.
        len: usize,
    },
}

impl std::fmt::Display for SpoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpoolError::Io(e) => write!(f, "spool io error: {e}"),
            SpoolError::Config(what) => write!(f, "spool configuration error: {what}"),
            SpoolError::PayloadTooLarge { len } => {
                write!(f, "spool record payload too large: {len} bytes")
            }
        }
    }
}

impl std::error::Error for SpoolError {}

impl From<io::Error> for SpoolError {
    fn from(e: io::Error) -> Self {
        SpoolError::Io(e)
    }
}

/// Spool configuration.
#[derive(Debug, Clone)]
pub struct SpoolConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate the open segment once it would exceed this many bytes
    /// (header included). A segment always holds at least one record.
    pub segment_max_bytes: u64,
    /// Batched-`fdatasync` interval (the ADR's ~1s default). A zero
    /// interval syncs on every append; [`Spool::sync`] is always
    /// available for explicit control (e.g. before shipping a frame).
    pub sync_interval: Duration,
    /// Retention: total spool bytes above which the oldest *closed*
    /// segment is dropped (accounted, never silent).
    pub max_spool_bytes: Option<u64>,
    /// Retention: drop the oldest closed segment once its newest record
    /// is older than this many timestamp units behind the newest record
    /// appended (caller-supplied logical clock).
    pub max_spool_age: Option<u64>,
}

impl SpoolConfig {
    /// Defaults matching the offline-telemetry ADR: 1 MiB segments,
    /// ~1s batched `fdatasync`, no retention bounds.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_max_bytes: 1 << 20,
            sync_interval: Duration::from_secs(1),
            max_spool_bytes: None,
            max_spool_age: None,
        }
    }
}

/// One spooled record, as appended and as replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpoolRecord {
    /// Monotonic capture sequence number (starts at 1; 0 means
    /// "nothing" in ACK arithmetic).
    pub seq: u64,
    /// Caller-supplied capture timestamp (logical clock).
    pub timestamp: u64,
    /// Opaque record payload.
    pub payload: Vec<u8>,
}

/// Per-segment bookkeeping. `last_seq`/`first_ts`/`last_ts` are only
/// meaningful when `records > 0`.
#[derive(Debug, Clone)]
struct SegMeta {
    path: PathBuf,
    base_seq: u64,
    last_seq: u64,
    records: u64,
    /// Valid bytes (header + validated frames).
    bytes: u64,
    first_ts: u64,
    last_ts: u64,
    /// A non-tail segment whose frame chain ends early (bit rot): its
    /// valid prefix stays replayable, the rest is a known gap.
    corrupt: bool,
}

impl SegMeta {
    /// Records in this segment with sequence beyond `acked`.
    fn unacked_records(&self, acked: u64) -> u64 {
        if self.records == 0 || acked >= self.last_seq {
            0
        } else {
            self.last_seq - acked.max(self.base_seq.saturating_sub(1))
        }
    }
}

#[derive(Debug)]
struct OpenSeg {
    meta: SegMeta,
    file: File,
    /// Bytes known durable after the last `fdatasync`.
    synced_bytes: u64,
}

/// Counters and gauges describing the spool's current state and its
/// lifetime accounting (all monotonic except the depth gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolStats {
    /// Records currently spooled (open + closed segments).
    pub records: u64,
    /// Bytes currently on disk (headers + frames).
    pub bytes: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Closed segment files currently on disk.
    pub closed_segments: u64,
    /// Next sequence number to be assigned.
    pub next_seq: u64,
    /// Highest contiguous sequence the ingest side has confirmed durable.
    pub acked_seq: u64,
    /// Highest sequence known durable on *this* node (last `fdatasync`).
    pub durable_seq: u64,
    /// Timestamp of the oldest record still spooled (0 when empty).
    pub oldest_ts: u64,
    /// Newest timestamp ever appended (retention's logical "now").
    pub newest_ts: u64,
    /// Lifetime records appended.
    pub appended_records: u64,
    /// Lifetime frame bytes appended (overheads included).
    pub appended_bytes: u64,
    /// Lifetime `fdatasync` batches issued.
    pub syncs: u64,
    /// Segments dropped by retention.
    pub dropped_segments: u64,
    /// Records dropped by retention.
    pub dropped_records: u64,
    /// Bytes dropped by retention.
    pub dropped_bytes: u64,
    /// Retention-dropped records that were *not yet ACKed* (data loss
    /// the ingest side will never see — bounded-disk reality, surfaced).
    pub dropped_unacked_records: u64,
    /// Segments garbage-collected after full ACK.
    pub gc_segments: u64,
    /// Records garbage-collected after full ACK.
    pub gc_records: u64,
    /// Records recovered by the last [`Spool::open`] scan.
    pub recovered_records: u64,
    /// Torn/corrupt tail bytes truncated by the last [`Spool::open`].
    pub recovered_truncated_bytes: u64,
    /// Unreadable segment files (corrupt header) removed at open.
    pub recovered_dropped_files: u64,
    /// Non-tail segments whose frame chain ends early (bit rot): their
    /// valid prefix replays, the remainder reports as a [`ReplayItem::Gap`].
    pub corrupt_segments: u64,
}

/// The outcome of validating one segment file.
struct ScanOutcome {
    header_ok: bool,
    base_seq: u64,
    records: u64,
    last_seq: u64,
    first_ts: u64,
    last_ts: u64,
    /// Header + validated frames.
    valid_bytes: u64,
    /// Total file length.
    file_bytes: u64,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(false);
        }
        filled += n;
    }
    Ok(true)
}

/// Scan a segment file, validating the header and the frame chain.
/// Stops (without error) at the first torn or corrupt frame.
fn scan_segment(path: &Path) -> io::Result<ScanOutcome> {
    let file = File::open(path)?;
    let file_bytes = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut out = ScanOutcome {
        header_ok: false,
        base_seq: 0,
        records: 0,
        last_seq: 0,
        first_ts: 0,
        last_ts: 0,
        valid_bytes: 0,
        file_bytes,
    };
    let mut header = [0u8; HEADER_BYTES as usize];
    if !read_exact_or_eof(&mut r, &mut header)? {
        return Ok(out);
    }
    let crc_stored = u32::from_le_bytes(header[22..26].try_into().expect("4 bytes"));
    if &header[0..4] != MAGIC
        || u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) != VERSION
        || crc32c(&header[..22]) != crc_stored
    {
        return Ok(out);
    }
    out.header_ok = true;
    out.base_seq = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    out.valid_bytes = HEADER_BYTES;
    let mut body = Vec::new();
    loop {
        let mut len_bytes = [0u8; 4];
        if !read_exact_or_eof(&mut r, &mut len_bytes)? {
            break;
        }
        let len = u32::from_le_bytes(len_bytes) as u64;
        if len < BODY_FIXED || len > BODY_FIXED + MAX_PAYLOAD as u64 {
            break;
        }
        body.resize(len as usize, 0);
        if !read_exact_or_eof(&mut r, &mut body)? {
            break;
        }
        let mut crc_bytes = [0u8; 4];
        if !read_exact_or_eof(&mut r, &mut crc_bytes)? {
            break;
        }
        let crc = crc32c_append(crc32c(&len_bytes), &body);
        if crc != u32::from_le_bytes(crc_bytes) {
            break;
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        if seq != out.base_seq + out.records {
            break; // duplicated or misordered frame: structurally invalid
        }
        let ts = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
        if out.records == 0 {
            out.first_ts = ts;
        }
        out.last_ts = ts;
        out.last_seq = seq;
        out.records += 1;
        out.valid_bytes += 4 + len + 4;
    }
    Ok(out)
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn segment_path(dir: &Path, base_seq: u64, closed: bool) -> PathBuf {
    dir.join(format!(
        "{base_seq:020}.{}",
        if closed { "closed" } else { "open" }
    ))
}

/// Parse `NNNN.open` / `NNNN.closed` into (base_seq, closed).
fn parse_segment_name(name: &str) -> Option<(u64, bool)> {
    let (stem, ext) = name.split_once('.')?;
    if stem.len() != 20 {
        return None;
    }
    let base = stem.parse::<u64>().ok()?;
    match ext {
        "open" => Some((base, false)),
        "closed" => Some((base, true)),
        _ => None,
    }
}

/// The durable segment spool. See the module docs for the format and the
/// durability contract.
#[derive(Debug)]
pub struct Spool {
    cfg: SpoolConfig,
    closed: VecDeque<SegMeta>,
    open: Option<OpenSeg>,
    next_seq: u64,
    acked_seq: u64,
    durable_seq: u64,
    newest_ts: u64,
    last_sync: Instant,
    frame_buf: Vec<u8>,
    // Lifetime counters (see SpoolStats).
    appended_records: u64,
    appended_bytes: u64,
    syncs: u64,
    dropped_segments: u64,
    dropped_records: u64,
    dropped_bytes: u64,
    dropped_unacked_records: u64,
    gc_segments: u64,
    gc_records: u64,
    recovered_records: u64,
    recovered_truncated_bytes: u64,
    recovered_dropped_files: u64,
}

impl Spool {
    /// Open (or create) a spool at `cfg.dir`, running crash recovery:
    /// every segment's frame chain is validated, the tail segment is
    /// truncated at the first torn/corrupt frame, and an unreadable tail
    /// file (corrupt header — torn creation) is removed. Never panics on
    /// corrupt input; the recovered record set is exactly the longest
    /// valid frame sequence per segment.
    pub fn open(cfg: SpoolConfig) -> Result<Self, SpoolError> {
        if cfg.segment_max_bytes < HEADER_BYTES + FRAME_OVERHEAD {
            return Err(SpoolError::Config(
                "segment_max_bytes smaller than one header + frame",
            ));
        }
        std::fs::create_dir_all(&cfg.dir)?;
        let mut names: Vec<(u64, bool)> = Vec::new();
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            if let Some(parsed) = entry.file_name().to_str().and_then(parse_segment_name) {
                names.push(parsed);
            }
        }
        names.sort_unstable();

        let mut spool = Self {
            cfg,
            closed: VecDeque::new(),
            open: None,
            next_seq: 1,
            acked_seq: 0,
            durable_seq: 0,
            newest_ts: 0,
            last_sync: Instant::now(),
            frame_buf: Vec::new(),
            appended_records: 0,
            appended_bytes: 0,
            syncs: 0,
            dropped_segments: 0,
            dropped_records: 0,
            dropped_bytes: 0,
            dropped_unacked_records: 0,
            gc_segments: 0,
            gc_records: 0,
            recovered_records: 0,
            recovered_truncated_bytes: 0,
            recovered_dropped_files: 0,
        };

        let last_idx = names.len().wrapping_sub(1);
        for (i, &(base, was_closed)) in names.iter().enumerate() {
            let is_tail = i == last_idx;
            let path = segment_path(&spool.cfg.dir, base, was_closed);
            let scan = scan_segment(&path)?;
            if !scan.header_ok {
                // Unreadable file. A torn tail creation is expected crash
                // fallout; mid-spool it is unrecoverable bit rot. Either
                // way nothing in it can be replayed — remove and count.
                std::fs::remove_file(&path)?;
                spool.recovered_dropped_files += 1;
                continue;
            }
            let torn_tail = scan.valid_bytes < scan.file_bytes;
            if torn_tail && is_tail {
                // Crash recovery: truncate the torn tail and make the
                // surviving prefix durable before accepting new appends.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_bytes)?;
                f.sync_data()?;
                spool.recovered_truncated_bytes += scan.file_bytes - scan.valid_bytes;
            }
            let mut meta = SegMeta {
                path: path.clone(),
                base_seq: scan.base_seq,
                last_seq: scan.last_seq,
                records: scan.records,
                bytes: scan.valid_bytes,
                first_ts: scan.first_ts,
                last_ts: scan.last_ts,
                corrupt: torn_tail && !is_tail,
            };
            spool.recovered_records += scan.records;
            if scan.records > 0 {
                spool.next_seq = spool.next_seq.max(scan.last_seq + 1);
                spool.newest_ts = spool.newest_ts.max(scan.last_ts);
            } else {
                spool.next_seq = spool.next_seq.max(scan.base_seq);
            }
            if is_tail && !was_closed {
                let file = OpenOptions::new().append(true).open(&path)?;
                let synced_bytes = meta.bytes;
                spool.open = Some(OpenSeg {
                    meta,
                    file,
                    synced_bytes,
                });
            } else {
                if !was_closed {
                    // A stale `.open` that is not the tail (lost rename):
                    // finish the close now.
                    let closed_path = segment_path(&spool.cfg.dir, base, true);
                    std::fs::rename(&path, &closed_path)?;
                    meta.path = closed_path;
                }
                spool.closed.push_back(meta);
            }
        }
        if spool.recovered_dropped_files > 0 || !names.is_empty() {
            sync_dir(&spool.cfg.dir)?;
        }
        // Everything that survived the scan is on disk and synced.
        spool.durable_seq = spool.next_seq - 1;
        Ok(spool)
    }

    /// The active configuration.
    pub fn config(&self) -> &SpoolConfig {
        &self.cfg
    }

    /// Append one record, returning its sequence number. The write is a
    /// single sequential `write(2)`; durability follows the batched-sync
    /// policy (or an explicit [`Spool::sync`]). Rotates the open segment
    /// at `segment_max_bytes` and enforces retention afterwards.
    pub fn append(&mut self, timestamp: u64, payload: &[u8]) -> Result<u64, SpoolError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(SpoolError::PayloadTooLarge { len: payload.len() });
        }
        let frame_len = FRAME_OVERHEAD + payload.len() as u64;
        if let Some(open) = &self.open {
            if open.meta.records > 0 && open.meta.bytes + frame_len > self.cfg.segment_max_bytes {
                self.close_open()?;
            }
        }
        if self.open.is_none() {
            self.create_open(timestamp)?;
        }
        let seq = self.next_seq;
        let body_len = (BODY_FIXED + payload.len() as u64) as u32;
        self.frame_buf.clear();
        self.frame_buf.extend_from_slice(&body_len.to_le_bytes());
        self.frame_buf.extend_from_slice(&seq.to_le_bytes());
        self.frame_buf.extend_from_slice(&timestamp.to_le_bytes());
        self.frame_buf.extend_from_slice(payload);
        let crc = crc32c(&self.frame_buf);
        self.frame_buf.extend_from_slice(&crc.to_le_bytes());
        let open = self.open.as_mut().expect("created above");
        open.file.write_all(&self.frame_buf)?;
        if open.meta.records == 0 {
            open.meta.first_ts = timestamp;
        }
        open.meta.last_ts = timestamp;
        open.meta.last_seq = seq;
        open.meta.records += 1;
        open.meta.bytes += frame_len;
        self.next_seq += 1;
        self.newest_ts = self.newest_ts.max(timestamp);
        self.appended_records += 1;
        self.appended_bytes += frame_len;
        if self.cfg.sync_interval.is_zero() || self.last_sync.elapsed() >= self.cfg.sync_interval {
            self.sync()?;
        }
        self.enforce_retention()?;
        Ok(seq)
    }

    /// Flush the batched-sync window: `fdatasync` the open segment and
    /// advance `durable_seq` to the last appended record.
    pub fn sync(&mut self) -> Result<(), SpoolError> {
        if let Some(open) = self.open.as_mut() {
            if open.synced_bytes < open.meta.bytes {
                open.file.sync_data()?;
                open.synced_bytes = open.meta.bytes;
                self.syncs += 1;
            }
        }
        self.durable_seq = self.next_seq - 1;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Report the ingest side's ACK cursor (highest contiguous sequence
    /// durably ingested) and garbage-collect every *closed* segment whose
    /// records are all at or below it. Returns the number of segment
    /// files deleted. The open segment is never touched, and no record
    /// above `acked_seq` is ever deleted by this path.
    pub fn ack(&mut self, acked_seq: u64) -> Result<usize, SpoolError> {
        self.acked_seq = self.acked_seq.max(acked_seq.min(self.next_seq - 1));
        let mut removed = 0usize;
        while let Some(front) = self.closed.front() {
            let fully_acked = front.records > 0 && front.last_seq <= self.acked_seq;
            let empty = front.records == 0;
            if !(fully_acked || empty) {
                break;
            }
            let seg = self.closed.pop_front().expect("peeked above");
            std::fs::remove_file(&seg.path)?;
            self.gc_segments += 1;
            self.gc_records += seg.records;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.cfg.dir)?;
        }
        Ok(removed)
    }

    /// Build a replayer over every durable record with `seq > from_seq`,
    /// in capture order. Syncs first so the durable horizon includes
    /// everything appended so far. The replayer snapshots segment
    /// metadata and reads files independently, so the caller may continue
    /// to [`Spool::ack`] (GC only removes fully-ACKed segments, which the
    /// replay cursor has already passed).
    pub fn replayer(&mut self, from_seq: u64) -> Result<Replayer, SpoolError> {
        self.sync()?;
        let cap_seq = self.durable_seq;
        let mut segs: Vec<ReplaySeg> = Vec::new();
        for meta in self
            .closed
            .iter()
            .chain(self.open.as_ref().map(|o| &o.meta))
        {
            if meta.records == 0 || meta.last_seq <= from_seq {
                continue;
            }
            segs.push(ReplaySeg {
                path: meta.path.clone(),
                base_seq: meta.base_seq,
                last_seq: meta.last_seq,
            });
        }
        let last_seq = segs.last().map(|s| s.last_seq).unwrap_or(from_seq);
        Ok(Replayer {
            segs,
            idx: 0,
            reader: None,
            expect: from_seq + 1,
            cap_seq,
            last_seq,
            done: false,
        })
    }

    /// Depth gauges and lifetime counters.
    pub fn stats(&self) -> SpoolStats {
        let metas = self
            .closed
            .iter()
            .chain(self.open.as_ref().map(|o| &o.meta));
        let mut records = 0u64;
        let mut bytes = 0u64;
        let mut segments = 0u64;
        let mut oldest_ts = 0u64;
        let mut corrupt_segments = 0u64;
        for m in metas {
            if records == 0 && m.records > 0 {
                oldest_ts = m.first_ts;
            }
            records += m.records;
            bytes += m.bytes;
            segments += 1;
            corrupt_segments += u64::from(m.corrupt);
        }
        SpoolStats {
            records,
            bytes,
            segments,
            closed_segments: self.closed.len() as u64,
            next_seq: self.next_seq,
            acked_seq: self.acked_seq,
            durable_seq: self.durable_seq,
            oldest_ts,
            newest_ts: self.newest_ts,
            appended_records: self.appended_records,
            appended_bytes: self.appended_bytes,
            syncs: self.syncs,
            dropped_segments: self.dropped_segments,
            dropped_records: self.dropped_records,
            dropped_bytes: self.dropped_bytes,
            dropped_unacked_records: self.dropped_unacked_records,
            gc_segments: self.gc_segments,
            gc_records: self.gc_records,
            recovered_records: self.recovered_records,
            recovered_truncated_bytes: self.recovered_truncated_bytes,
            recovered_dropped_files: self.recovered_dropped_files,
            corrupt_segments,
        }
    }

    /// Path of the current open segment, if any (test/ops introspection:
    /// the power-loss fault suite truncates this file).
    pub fn open_segment_path(&self) -> Option<PathBuf> {
        self.open.as_ref().map(|o| o.meta.path.clone())
    }

    /// Bytes of the open segment known durable after the last sync
    /// (test/ops introspection: the power-loss fault model may destroy
    /// anything beyond this offset, never at or below it).
    pub fn open_segment_synced_bytes(&self) -> u64 {
        self.open.as_ref().map(|o| o.synced_bytes).unwrap_or(0)
    }

    /// Bytes currently written to the open segment (header included).
    pub fn open_segment_len(&self) -> u64 {
        self.open.as_ref().map(|o| o.meta.bytes).unwrap_or(0)
    }

    fn create_open(&mut self, created_ts: u64) -> Result<(), SpoolError> {
        let base = self.next_seq;
        let path = segment_path(&self.cfg.dir, base, false);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut header = [0u8; HEADER_BYTES as usize];
        header[0..4].copy_from_slice(MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6..14].copy_from_slice(&base.to_le_bytes());
        header[14..22].copy_from_slice(&created_ts.to_le_bytes());
        let crc = crc32c(&header[..22]);
        header[22..26].copy_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        // The header must be durable before any ACK-gated GC or retention
        // drop can delete older segments: it carries `base_seq`, the
        // persisted floor of the sequence counter. Without this sync, a
        // crash after GC could tear the header, recovery would remove the
        // file, and a freshly reopened spool would reuse sequence numbers
        // the ingest side has already ACKed — silently dedup-dropping new
        // records forever. One 26-byte fdatasync per rotation is cheap
        // insurance against that.
        file.sync_data()?;
        self.syncs += 1;
        sync_dir(&self.cfg.dir)?;
        self.open = Some(OpenSeg {
            meta: SegMeta {
                path,
                base_seq: base,
                last_seq: 0,
                records: 0,
                bytes: HEADER_BYTES,
                first_ts: 0,
                last_ts: 0,
                corrupt: false,
            },
            file,
            synced_bytes: HEADER_BYTES,
        });
        Ok(())
    }

    /// Close the open segment: sync it (closed segments are durable in
    /// full), rename `.open` → `.closed`, and persist the rename.
    fn close_open(&mut self) -> Result<(), SpoolError> {
        let Some(mut open) = self.open.take() else {
            return Ok(());
        };
        if open.synced_bytes < open.meta.bytes {
            open.file.sync_data()?;
            self.syncs += 1;
        }
        if open.meta.records > 0 {
            self.durable_seq = self.durable_seq.max(open.meta.last_seq);
        }
        let closed_path = segment_path(&self.cfg.dir, open.meta.base_seq, true);
        std::fs::rename(&open.meta.path, &closed_path)?;
        sync_dir(&self.cfg.dir)?;
        open.meta.path = closed_path;
        self.closed.push_back(open.meta);
        Ok(())
    }

    /// Drop oldest closed segments while a retention bound is exceeded.
    fn enforce_retention(&mut self) -> Result<(), SpoolError> {
        loop {
            let Some(front) = self.closed.front() else {
                return Ok(());
            };
            let total_bytes: u64 = self.closed.iter().map(|m| m.bytes).sum::<u64>()
                + self.open.as_ref().map(|o| o.meta.bytes).unwrap_or(0);
            let over_bytes = self
                .cfg
                .max_spool_bytes
                .is_some_and(|cap| total_bytes > cap);
            let over_age = self.cfg.max_spool_age.is_some_and(|max_age| {
                front.records > 0 && self.newest_ts.saturating_sub(front.last_ts) > max_age
            });
            if !(over_bytes || over_age) {
                return Ok(());
            }
            let seg = self.closed.pop_front().expect("front checked above");
            std::fs::remove_file(&seg.path)?;
            sync_dir(&self.cfg.dir)?;
            self.dropped_segments += 1;
            self.dropped_records += seg.records;
            self.dropped_bytes += seg.bytes;
            self.dropped_unacked_records += seg.unacked_records(self.acked_seq);
        }
    }
}

/// One replay-snapshot segment.
#[derive(Debug, Clone)]
struct ReplaySeg {
    path: PathBuf,
    base_seq: u64,
    last_seq: u64,
}

/// One step of a replay: a recovered record, or a known-lost sequence
/// range (bit rot inside a closed segment, or a segment dropped by
/// retention mid-replay). Gaps let the ingest ledger advance its
/// contiguity cursor past records that no longer exist anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayItem {
    /// A spooled record, delivered in capture order.
    Record(SpoolRecord),
    /// Sequences `from_seq..=to_seq` are unrecoverable.
    Gap {
        /// First lost sequence.
        from_seq: u64,
        /// Last lost sequence (inclusive).
        to_seq: u64,
    },
}

/// Capture-order iterator over a spool's durable backlog. Built by
/// [`Spool::replayer`]; yields [`ReplayItem`]s. Rate control belongs to
/// the caller: pull as many items per tick as the egress budget allows.
#[derive(Debug)]
pub struct Replayer {
    segs: Vec<ReplaySeg>,
    idx: usize,
    reader: Option<SegReader>,
    /// Next sequence the consumer expects (gap detection).
    expect: u64,
    /// Durable horizon: records above this are not exposed.
    cap_seq: u64,
    /// Highest sequence the snapshot says exists.
    last_seq: u64,
    done: bool,
}

#[derive(Debug)]
struct SegReader {
    r: BufReader<File>,
    seg_last: u64,
}

impl Replayer {
    /// Rewind the replay cursor so the next item is the first record
    /// with `seq > from_seq` — the NACK path: an uplink abandoning
    /// un-ACKed records hands their lowest predecessor back here and the
    /// replay re-delivers them (the ingest ledger dedups anything that
    /// did land). Rewinding restarts the segment walk from the front of
    /// the original snapshot; the `rec.seq < expect` skip fast-forwards
    /// inside each segment. Records outside the snapshot (appended after
    /// [`Spool::replayer`], or below its `from_seq`) stay invisible, and
    /// a segment GC'd since the snapshot degrades to a [`ReplayItem::Gap`]
    /// — GC only ever removes fully-ACKed segments, which a NACK rewind
    /// never targets.
    pub fn rewind(&mut self, from_seq: u64) {
        self.idx = 0;
        self.reader = None;
        self.done = false;
        self.expect = from_seq + 1;
    }

    /// Read the next frame from the current segment reader. `None` on a
    /// clean or corrupt end of segment (both close the segment).
    fn next_frame(reader: &mut SegReader) -> Option<SpoolRecord> {
        let r = &mut reader.r;
        let mut len_bytes = [0u8; 4];
        if !read_exact_or_eof(r, &mut len_bytes).ok()? {
            return None;
        }
        let len = u32::from_le_bytes(len_bytes) as u64;
        if len < BODY_FIXED || len > BODY_FIXED + MAX_PAYLOAD as u64 {
            return None;
        }
        let mut body = vec![0u8; len as usize];
        if !read_exact_or_eof(r, &mut body).ok()? {
            return None;
        }
        let mut crc_bytes = [0u8; 4];
        if !read_exact_or_eof(r, &mut crc_bytes).ok()? {
            return None;
        }
        if crc32c_append(crc32c(&len_bytes), &body) != u32::from_le_bytes(crc_bytes) {
            return None;
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        let timestamp = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
        let payload = body.split_off(BODY_FIXED as usize);
        Some(SpoolRecord {
            seq,
            timestamp,
            payload,
        })
    }
}

impl Iterator for Replayer {
    type Item = ReplayItem;

    fn next(&mut self) -> Option<ReplayItem> {
        loop {
            if self.done || self.expect > self.cap_seq {
                self.done = true;
                return None;
            }
            if let Some(reader) = self.reader.as_mut() {
                let seg_last = reader.seg_last;
                match Replayer::next_frame(reader) {
                    Some(rec) => {
                        if rec.seq < self.expect {
                            continue; // already consumed (replay start mid-segment)
                        }
                        if rec.seq != self.expect {
                            // Misordered/duplicated frame: treat the rest
                            // of this segment as lost.
                            self.reader = None;
                            let to = seg_last.min(self.cap_seq);
                            if to >= self.expect {
                                let from = self.expect;
                                self.expect = to + 1;
                                return Some(ReplayItem::Gap {
                                    from_seq: from,
                                    to_seq: to,
                                });
                            }
                            continue;
                        }
                        if rec.seq > self.cap_seq {
                            self.done = true;
                            return None;
                        }
                        self.expect = rec.seq + 1;
                        if rec.seq == seg_last {
                            self.reader = None;
                        }
                        return Some(ReplayItem::Record(rec));
                    }
                    None => {
                        // Clean EOF before seg_last, or corrupt frame:
                        // the remainder of this segment is lost.
                        self.reader = None;
                        let to = seg_last.min(self.cap_seq);
                        if to >= self.expect {
                            let from = self.expect;
                            self.expect = to + 1;
                            return Some(ReplayItem::Gap {
                                from_seq: from,
                                to_seq: to,
                            });
                        }
                        continue;
                    }
                }
            }
            // Advance to the next snapshot segment.
            let Some(seg) = self.segs.get(self.idx) else {
                // Snapshot exhausted. Anything still expected below the
                // snapshot horizon is lost.
                self.done = true;
                let to = self.last_seq.min(self.cap_seq);
                if to >= self.expect {
                    let from = self.expect;
                    self.expect = to + 1;
                    return Some(ReplayItem::Gap {
                        from_seq: from,
                        to_seq: to,
                    });
                }
                return None;
            };
            if seg.base_seq > self.expect {
                // Records between segments no longer exist (dropped or
                // truncated): report the gap, then open this segment on
                // the next pass (idx is not consumed yet).
                let from = self.expect;
                let to = (seg.base_seq - 1).min(self.cap_seq);
                if to >= from {
                    self.expect = to + 1;
                    return Some(ReplayItem::Gap {
                        from_seq: from,
                        to_seq: to,
                    });
                }
            }
            let seg = seg.clone();
            self.idx += 1;
            match File::open(&seg.path) {
                Ok(file) => {
                    let mut r = BufReader::new(file);
                    let mut header = [0u8; HEADER_BYTES as usize];
                    let header_ok = read_exact_or_eof(&mut r, &mut header).unwrap_or(false)
                        && &header[0..4] == MAGIC
                        && crc32c(&header[..22])
                            == u32::from_le_bytes(header[22..26].try_into().expect("4 bytes"));
                    if header_ok {
                        self.reader = Some(SegReader {
                            r,
                            seg_last: seg.last_seq,
                        });
                    } else {
                        let from = self.expect.max(seg.base_seq);
                        let to = seg.last_seq.min(self.cap_seq);
                        if to >= from {
                            self.expect = to + 1;
                            return Some(ReplayItem::Gap {
                                from_seq: from,
                                to_seq: to,
                            });
                        }
                    }
                }
                Err(_) => {
                    // Segment vanished (GC'd or retention-dropped after
                    // the snapshot): its records are gone.
                    let from = self.expect.max(seg.base_seq);
                    let to = seg.last_seq.min(self.cap_seq);
                    if to >= from {
                        self.expect = to + 1;
                        return Some(ReplayItem::Gap {
                            from_seq: from,
                            to_seq: to,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "adaedge-spool-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn cfg(dir: &Path) -> SpoolConfig {
        let mut c = SpoolConfig::new(dir);
        c.sync_interval = Duration::from_secs(3600); // explicit sync only
        c
    }

    fn drain(spool: &mut Spool, from: u64) -> Vec<ReplayItem> {
        spool.replayer(from).unwrap().collect()
    }

    fn records(items: &[ReplayItem]) -> Vec<u64> {
        items
            .iter()
            .filter_map(|i| match i {
                ReplayItem::Record(r) => Some(r.seq),
                ReplayItem::Gap { .. } => None,
            })
            .collect()
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut spool = Spool::open(cfg(&dir)).unwrap();
        for i in 0..20u64 {
            let seq = spool.append(100 + i, &[i as u8; 33]).unwrap();
            assert_eq!(seq, i + 1);
        }
        spool.sync().unwrap();
        let items = drain(&mut spool, 0);
        assert_eq!(records(&items), (1..=20).collect::<Vec<_>>());
        for item in &items {
            let ReplayItem::Record(r) = item else {
                panic!("unexpected gap: {item:?}");
            };
            assert_eq!(r.timestamp, 99 + r.seq);
            assert_eq!(r.payload, vec![(r.seq - 1) as u8; 33]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_exposes_only_durable_records() {
        let dir = tmpdir("durable-horizon");
        let mut spool = Spool::open(cfg(&dir)).unwrap();
        for i in 0..5u64 {
            spool.append(i, b"x").unwrap();
        }
        // replayer() syncs internally, so everything becomes visible.
        assert_eq!(records(&drain(&mut spool, 0)).len(), 5);
        assert_eq!(spool.stats().durable_seq, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayer_rewind_redelivers_from_the_nack_point() {
        let dir = tmpdir("rewind");
        let mut c = cfg(&dir);
        // Force several segments so the rewind walks segment boundaries.
        c.segment_max_bytes = HEADER_BYTES + 3 * (FRAME_OVERHEAD + 8);
        let mut spool = Spool::open(c).unwrap();
        for i in 0..12u64 {
            spool.append(i, &[i as u8; 8]).unwrap();
        }
        let mut rep = spool.replayer(0).unwrap();
        // Consume the first 9 records, then NACK back to after seq 4.
        let mut seen = Vec::new();
        for _ in 0..9 {
            match rep.next().unwrap() {
                ReplayItem::Record(r) => seen.push(r.seq),
                item => panic!("unexpected gap: {item:?}"),
            }
        }
        assert_eq!(seen, (1..=9).collect::<Vec<_>>());
        rep.rewind(4);
        let replayed = records(&rep.collect::<Vec<_>>());
        assert_eq!(replayed, (5..=12).collect::<Vec<_>>());
        // A second rewind on the exhausted iterator revives it too.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayer_rewind_after_exhaustion_revives_the_cursor() {
        let dir = tmpdir("rewind-exhausted");
        let mut spool = Spool::open(cfg(&dir)).unwrap();
        for i in 0..6u64 {
            spool.append(i, b"abc").unwrap();
        }
        let mut rep = spool.replayer(0).unwrap();
        assert_eq!(records(&rep.by_ref().collect::<Vec<_>>()).len(), 6);
        assert!(rep.next().is_none(), "exhausted");
        rep.rewind(2);
        assert_eq!(records(&rep.collect::<Vec<_>>()), vec![3, 4, 5, 6]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_closes_segments_and_reopen_recovers_all() {
        let dir = tmpdir("rotate");
        let mut c = cfg(&dir);
        c.segment_max_bytes = HEADER_BYTES + 3 * (FRAME_OVERHEAD + 8);
        let mut spool = Spool::open(c.clone()).unwrap();
        for i in 0..10u64 {
            spool.append(i, &[7u8; 8]).unwrap();
        }
        spool.sync().unwrap();
        assert!(spool.stats().closed_segments >= 2);
        drop(spool);
        let mut spool = Spool::open(c).unwrap();
        assert_eq!(spool.stats().records, 10);
        assert_eq!(records(&drain(&mut spool, 0)), (1..=10).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let dir = tmpdir("torntail");
        let c = cfg(&dir);
        let mut spool = Spool::open(c.clone()).unwrap();
        for i in 0..6u64 {
            spool.append(i, &[3u8; 50]).unwrap();
        }
        spool.sync().unwrap();
        let path = spool.open_segment_path().unwrap();
        drop(spool);
        // Tear 10 bytes off the last frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let mut spool = Spool::open(c).unwrap();
        let st = spool.stats();
        assert_eq!(st.records, 5, "last frame torn, first five recovered");
        assert!(st.recovered_truncated_bytes > 0);
        assert_eq!(records(&drain(&mut spool, 0)), (1..=5).collect::<Vec<_>>());
        // Appends continue with the freed sequence.
        assert_eq!(spool.append(99, b"new").unwrap(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ack_gc_removes_only_fully_acked_closed_segments() {
        let dir = tmpdir("ackgc");
        let mut c = cfg(&dir);
        c.segment_max_bytes = HEADER_BYTES + 2 * (FRAME_OVERHEAD + 4);
        let mut spool = Spool::open(c).unwrap();
        for i in 0..9u64 {
            spool.append(i, &[1u8; 4]).unwrap();
        }
        spool.sync().unwrap();
        // Segments: [1,2] [3,4] [5,6] [7,8] closed, [9] open.
        assert_eq!(spool.stats().closed_segments, 4);
        assert_eq!(spool.ack(3).unwrap(), 1, "only [1,2] is fully acked");
        assert_eq!(spool.ack(8).unwrap(), 3);
        assert_eq!(spool.stats().closed_segments, 0);
        // The open segment is never GC'd even when fully acked.
        assert_eq!(spool.ack(9).unwrap(), 0);
        assert_eq!(spool.stats().records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_drops_oldest_closed_only_and_accounts() {
        let dir = tmpdir("retention");
        let seg_bytes = HEADER_BYTES + 2 * (FRAME_OVERHEAD + 4);
        let mut c = cfg(&dir);
        c.segment_max_bytes = seg_bytes;
        c.max_spool_bytes = Some(3 * seg_bytes);
        let mut spool = Spool::open(c).unwrap();
        for i in 0..12u64 {
            spool.append(i, &[2u8; 4]).unwrap();
        }
        spool.sync().unwrap();
        let st = spool.stats();
        assert!(st.bytes <= 3 * seg_bytes, "cap enforced: {}", st.bytes);
        assert!(st.dropped_segments > 0);
        assert_eq!(st.dropped_records, 2 * st.dropped_segments);
        assert_eq!(st.dropped_unacked_records, st.dropped_records);
        // The open segment survives; the oldest remaining seq moved up.
        let first = records(&drain(&mut spool, 0))[0];
        assert_eq!(first, 2 * st.dropped_segments + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn age_retention_uses_logical_clock() {
        let dir = tmpdir("age");
        let mut c = cfg(&dir);
        c.segment_max_bytes = HEADER_BYTES + 2 * (FRAME_OVERHEAD + 4);
        c.max_spool_age = Some(100);
        let mut spool = Spool::open(c).unwrap();
        for i in 0..4u64 {
            spool.append(i, &[4u8; 4]).unwrap(); // ts 0..3
        }
        assert_eq!(spool.stats().dropped_segments, 0);
        // A far-future record ages everything closed out.
        spool.append(500, &[4u8; 4]).unwrap();
        let st = spool.stats();
        assert!(st.dropped_segments >= 1, "{st:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gap_reported_for_bit_rotted_closed_segment() {
        let dir = tmpdir("gap");
        let mut c = cfg(&dir);
        c.segment_max_bytes = HEADER_BYTES + 2 * (FRAME_OVERHEAD + 8);
        let mut spool = Spool::open(c.clone()).unwrap();
        for i in 0..6u64 {
            spool.append(i, &[9u8; 8]).unwrap();
        }
        spool.sync().unwrap();
        // Flip a byte in the middle of the second closed segment's first
        // frame payload (segments: [1,2] [3,4] closed, [5,6] open).
        let path = segment_path(&dir, 3, true);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = HEADER_BYTES as usize + 4 + 16 + 2;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let items = drain(&mut spool, 0);
        assert_eq!(records(&items), vec![1, 2, 5, 6]);
        assert!(
            items.contains(&ReplayItem::Gap {
                from_seq: 3,
                to_seq: 4
            }),
            "{items:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_from_cursor_skips_consumed_records() {
        let dir = tmpdir("cursor");
        let mut spool = Spool::open(cfg(&dir)).unwrap();
        for i in 0..10u64 {
            spool.append(i, &[1]).unwrap();
        }
        assert_eq!(records(&drain(&mut spool, 7)), vec![8, 9, 10]);
        assert!(records(&drain(&mut spool, 10)).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_open_segment_is_closed_on_recovery() {
        let dir = tmpdir("staleopen");
        let mut c = cfg(&dir);
        c.segment_max_bytes = HEADER_BYTES + 2 * (FRAME_OVERHEAD + 4);
        let mut spool = Spool::open(c.clone()).unwrap();
        for i in 0..6u64 {
            spool.append(i, &[5u8; 4]).unwrap();
        }
        spool.sync().unwrap();
        drop(spool);
        // Simulate a lost rename: the first closed segment reverts to .open.
        std::fs::rename(segment_path(&dir, 1, true), segment_path(&dir, 1, false)).unwrap();
        let mut spool = Spool::open(c).unwrap();
        assert_eq!(spool.stats().records, 6);
        assert!(segment_path(&dir, 1, true).exists(), "re-closed");
        assert_eq!(records(&drain(&mut spool, 0)), (1..=6).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_and_empty_replay_are_fine() {
        let dir = tmpdir("empty");
        let mut spool = Spool::open(cfg(&dir)).unwrap();
        assert_eq!(spool.stats().records, 0);
        assert!(drain(&mut spool, 0).is_empty());
        assert_eq!(spool.ack(0).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_validation() {
        let dir = tmpdir("config");
        let mut c = SpoolConfig::new(&dir);
        c.segment_max_bytes = 10;
        assert!(matches!(Spool::open(c), Err(SpoolError::Config(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
