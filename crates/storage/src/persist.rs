//! Segment persistence: a compact binary on-disk format for flushing and
//! restoring segments (the paper's buffers flush to local disk when memory
//! pressure demands it, and offline devices persist across restarts).
//!
//! Format (little-endian throughout):
//!
//! ```text
//! magic "AESG" | version: u16 | count: u64
//! per segment:
//!   id: u64 | timestamp: u64 | kind: u8
//!   kind 0 (raw):        n: u32, then n × f64
//!   kind 1 (compressed): codec-name len: u8 + bytes | n_points: u32
//!                        | payload len: u32 + bytes
//!   version ≥ 2 only:    crc32c: u32 over the record bytes above
//! ```
//!
//! Codec identifiers are stored by *name* so the file format survives enum
//! reordering across versions. Version 2 appends a CRC-32C to every record
//! so on-disk bit rot is detected at load time; version-1 files (no
//! checksums) remain readable.

use crate::segment::{Segment, SegmentData, SegmentId};
use crate::store::SegmentStore;
use adaedge_codecs::crc32c::{crc32c, crc32c_append};
use adaedge_codecs::{CodecId, CompressedBlock};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"AESG";
const VERSION: u16 = 2;

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an AdaEdge segment file, or an unsupported version.
    BadHeader,
    /// Structurally invalid segment record.
    Corrupt(&'static str),
    /// A record's bytes no longer match its stored CRC-32C (bit rot).
    ChecksumMismatch,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadHeader => write!(f, "bad segment-file header"),
            PersistError::Corrupt(what) => write!(f, "corrupt segment file: {what}"),
            PersistError::ChecksumMismatch => {
                write!(f, "segment record failed checksum verification")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn write_segment<W: Write>(w: &mut W, seg: &Segment) -> Result<(), PersistError> {
    w.write_all(&seg.id.0.to_le_bytes())?;
    w.write_all(&seg.timestamp.to_le_bytes())?;
    match &seg.data {
        SegmentData::Raw(points) => {
            w.write_all(&[0u8])?;
            w.write_all(&(points.len() as u32).to_le_bytes())?;
            for v in points {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        SegmentData::Compressed(block) => {
            w.write_all(&[1u8])?;
            let name = block.codec.name().as_bytes();
            w.write_all(&[name.len() as u8])?;
            w.write_all(name)?;
            w.write_all(&block.n_points.to_le_bytes())?;
            w.write_all(&(block.payload.len() as u32).to_le_bytes())?;
            w.write_all(&block.payload)?;
        }
    }
    Ok(())
}

/// `Read` adapter that folds every byte it hands out into a running
/// CRC-32C, so v2 records are verified without buffering them.
struct CrcReader<R> {
    inner: R,
    crc: u32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        Self { inner, crc: 0 }
    }

    fn sum(&self) -> u32 {
        self.crc
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc = crc32c_append(self.crc, &buf[..n]);
        Ok(n)
    }
}

fn read_exact_vec<R: Read>(r: &mut R, n: usize) -> Result<Vec<u8>, PersistError> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_segment<R: Read>(r: &mut R) -> Result<Segment, PersistError> {
    let id = SegmentId(read_u64(r)?);
    let timestamp = read_u64(r)?;
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    match kind[0] {
        0 => {
            let n = read_u32(r)? as usize;
            if n > 1 << 28 {
                return Err(PersistError::Corrupt("raw segment too large"));
            }
            let bytes = read_exact_vec(r, n * 8)?;
            let points = bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            Ok(Segment::raw(id, timestamp, points))
        }
        1 => {
            let mut len = [0u8; 1];
            r.read_exact(&mut len)?;
            let name = read_exact_vec(r, len[0] as usize)?;
            let name = std::str::from_utf8(&name)
                .map_err(|_| PersistError::Corrupt("codec name not utf-8"))?;
            let codec =
                CodecId::from_name(name).ok_or(PersistError::Corrupt("unknown codec name"))?;
            let n_points = read_u32(r)?;
            let payload_len = read_u32(r)? as usize;
            if payload_len > 1 << 30 {
                return Err(PersistError::Corrupt("payload too large"));
            }
            let payload = read_exact_vec(r, payload_len)?;
            Ok(Segment::compressed(
                id,
                timestamp,
                CompressedBlock {
                    codec,
                    n_points,
                    payload,
                },
            ))
        }
        _ => Err(PersistError::Corrupt("unknown segment kind")),
    }
}

fn save_segments_versioned<'a>(
    path: &Path,
    segments: impl ExactSizeIterator<Item = &'a Segment>,
    version: u16,
) -> Result<(), PersistError> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&(segments.len() as u64).to_le_bytes())?;
    let mut record = Vec::new();
    for seg in segments {
        record.clear();
        write_segment(&mut record, seg)?;
        w.write_all(&record)?;
        if version >= 2 {
            w.write_all(&crc32c(&record).to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write segments to `path` in the current (checksummed) format,
/// replacing any existing file.
pub fn save_segments<'a>(
    path: &Path,
    segments: impl ExactSizeIterator<Item = &'a Segment>,
) -> Result<(), PersistError> {
    save_segments_versioned(path, segments, VERSION)
}

/// Read every segment from `path`. Accepts both the current checksummed
/// format (version 2) and legacy version-1 files without per-record CRCs.
pub fn load_segments(path: &Path) -> Result<Vec<Segment>, PersistError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    let mut version = [0u8; 2];
    r.read_exact(&mut version)?;
    let version = u16::from_le_bytes(version);
    if &magic != MAGIC || !(1..=VERSION).contains(&version) {
        return Err(PersistError::BadHeader);
    }
    let count = read_u64(&mut r)? as usize;
    if count > 1 << 30 {
        return Err(PersistError::Corrupt("segment count implausible"));
    }
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if version >= 2 {
            let mut cr = CrcReader::new(&mut r);
            let seg = read_segment(&mut cr)?;
            let computed = cr.sum();
            if read_u32(&mut r)? != computed {
                return Err(PersistError::ChecksumMismatch);
            }
            out.push(seg);
        } else {
            out.push(read_segment(&mut r)?);
        }
    }
    Ok(out)
}

impl SegmentStore {
    /// Persist every stored segment to `path` (flush-to-disk).
    pub fn save_to(&self, path: &Path) -> Result<(), PersistError> {
        let ids = self.ids();
        let segments: Vec<&Segment> = ids.iter().filter_map(|&id| self.peek(id)).collect();
        save_segments(path, segments.into_iter())
    }

    /// Load segments from `path` into a fresh unbounded store, preserving
    /// insertion (id) order for the policy.
    pub fn load_from(path: &Path) -> Result<SegmentStore, PersistError> {
        let mut segments = load_segments(path)?;
        segments.sort_by_key(|s| s.id);
        let mut store = SegmentStore::unbounded();
        for seg in segments {
            match seg.data {
                SegmentData::Raw(points) => {
                    store.put_raw(points).expect("unbounded store");
                }
                SegmentData::Compressed(block) => {
                    store.put_compressed(block).expect("unbounded store");
                }
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("adaedge-persist-{name}-{}", std::process::id()));
        p
    }

    fn sample_store() -> SegmentStore {
        let mut store = SegmentStore::unbounded();
        store.put_raw(vec![1.0, 2.0, 3.0]).unwrap();
        store
            .put_compressed(CompressedBlock::new(CodecId::Paa, 100, vec![7u8; 40]))
            .unwrap();
        store
            .put_compressed(CompressedBlock::new(CodecId::Sprintz, 50, vec![1, 2, 3]))
            .unwrap();
        store
    }

    #[test]
    fn roundtrip_preserves_segments() {
        let store = sample_store();
        let path = tmp("roundtrip");
        store.save_to(&path).unwrap();
        let loaded = SegmentStore::load_from(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.used_bytes(), store.used_bytes());
        let originals: Vec<_> = store
            .ids()
            .iter()
            .map(|&i| store.peek(i).unwrap().data.clone())
            .collect();
        let restored: Vec<_> = loaded
            .ids()
            .iter()
            .map(|&i| loaded.peek(i).unwrap().data.clone())
            .collect();
        assert_eq!(originals, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPExxxxxxxxxxxx").unwrap();
        assert!(matches!(
            SegmentStore::load_from(&path),
            Err(PersistError::BadHeader)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let store = sample_store();
        let path = tmp("truncated");
        store.save_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(SegmentStore::load_from(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_codec_name_rejected() {
        let store = sample_store();
        let path = tmp("unknowncodec");
        store.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the first codec-name byte ("paa" → "xaa").
        let pos = bytes.windows(3).position(|w| w == b"paa").unwrap();
        bytes[pos] = b'x';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentStore::load_from(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_payload_bitflip_detected_at_load() {
        let store = sample_store();
        let path = tmp("bitflip");
        store.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the Paa block's payload (a run of 0x07 bytes):
        // structurally still a valid record, so only the CRC can catch it.
        let pos = bytes.windows(10).position(|w| w == [7u8; 10]).unwrap();
        bytes[pos + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentStore::load_from(&path),
            Err(PersistError::ChecksumMismatch)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_without_checksums_still_load() {
        let store = sample_store();
        let path = tmp("v1compat");
        let ids = store.ids();
        let segments: Vec<&Segment> = ids.iter().filter_map(|&id| store.peek(id)).collect();
        save_segments_versioned(&path, segments.into_iter(), 1).unwrap();
        let loaded = SegmentStore::load_from(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.used_bytes(), store.used_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_rejected() {
        let store = sample_store();
        let path = tmp("future");
        store.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // version field follows the 4-byte magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentStore::load_from(&path),
            Err(PersistError::BadHeader)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = SegmentStore::unbounded();
        let path = tmp("empty");
        store.save_to(&path).unwrap();
        let loaded = SegmentStore::load_from(&path).unwrap();
        assert!(loaded.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
