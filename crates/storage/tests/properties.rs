//! Property-based tests for the segment store: byte accounting stays exact
//! under arbitrary operation sequences, and the policy's victim list always
//! matches the live segment set.

use adaedge_codecs::{CodecId, CompressedBlock};
use adaedge_storage::{SegmentId, SegmentStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    PutRaw(usize),
    PutCompressed(usize),
    Get(usize),
    Replace(usize, usize),
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..200).prop_map(Op::PutRaw),
        (1usize..500).prop_map(Op::PutCompressed),
        (0usize..32).prop_map(Op::Get),
        ((0usize..32), (1usize..300)).prop_map(|(i, b)| Op::Replace(i, b)),
        (0usize..32).prop_map(Op::Remove),
    ]
}

fn block(bytes: usize) -> CompressedBlock {
    CompressedBlock::new(CodecId::Paa, bytes.max(1) * 4, vec![0u8; bytes])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn byte_accounting_is_exact(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut store = SegmentStore::unbounded();
        let mut live: Vec<SegmentId> = Vec::new();
        for op in ops {
            match op {
                Op::PutRaw(n) => {
                    live.push(store.put_raw(vec![0.5; n]).unwrap());
                }
                Op::PutCompressed(bytes) => {
                    live.push(store.put_compressed(block(bytes)).unwrap());
                }
                Op::Get(i) => {
                    if !live.is_empty() {
                        let id = live[i % live.len()];
                        prop_assert!(store.get(id).is_some());
                    }
                }
                Op::Replace(i, bytes) => {
                    if !live.is_empty() {
                        let id = live[i % live.len()];
                        store.replace(id, block(bytes)).unwrap();
                    }
                }
                Op::Remove(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        store.remove(id).unwrap();
                    }
                }
            }
            // Invariant: used_bytes equals the sum over live segments.
            let expected: usize = live
                .iter()
                .map(|&id| store.peek(id).unwrap().size_bytes())
                .sum();
            prop_assert_eq!(store.used_bytes(), expected);
            prop_assert_eq!(store.len(), live.len());
            // Invariant: the victim list is exactly the live set.
            let mut victims = store.victim_order();
            victims.sort();
            let mut expected_ids = live.clone();
            expected_ids.sort();
            prop_assert_eq!(victims, expected_ids);
        }
    }

    #[test]
    fn budget_never_exceeded(
        puts in prop::collection::vec(1usize..400, 1..40),
        budget in 500usize..2000,
    ) {
        let mut store = SegmentStore::with_budget(budget);
        for bytes in puts {
            let _ = store.put_compressed(block(bytes)); // may fail; that's fine
            prop_assert!(store.used_bytes() <= budget);
        }
    }

    #[test]
    fn persistence_roundtrip_arbitrary_store(
        blocks in prop::collection::vec((1usize..100, 1usize..64), 0..20),
    ) {
        let mut store = SegmentStore::unbounded();
        for (n, bytes) in blocks {
            store
                .put_compressed(CompressedBlock::new(
                    CodecId::Sprintz,
                    n,
                    vec![0xAB; bytes],
                ))
                .unwrap();
        }
        let mut path = std::env::temp_dir();
        path.push(format!(
            "adaedge-prop-{}-{}.seg",
            std::process::id(),
            store.len()
        ));
        store.save_to(&path).unwrap();
        let loaded = SegmentStore::load_from(&path).unwrap();
        prop_assert_eq!(loaded.len(), store.len());
        prop_assert_eq!(loaded.used_bytes(), store.used_bytes());
        std::fs::remove_file(&path).ok();
    }
}
