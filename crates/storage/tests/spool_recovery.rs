//! Crash-recovery and ACK-ledger fault suite for the durable segment
//! spool (ISSUE 8 acceptance: 500+ randomized crash points).
//!
//! Fault model (DESIGN.md §6d): every byte at or below the open
//! segment's last `fdatasync` offset survives a power cut; anything past
//! it may be torn arbitrarily. Closed segments are synced in full before
//! the `.open` → `.closed` rename, so only the open tail is ever at
//! risk. The suites simulate a crash by dropping the `Spool` handle and
//! truncating the open segment file at a chosen offset with the shared
//! faultkit primitives, then reopening and checking the recovery
//! contract:
//!
//! * reopen never panics and never errors on torn input;
//! * the recovered record set is exactly the longest valid frame prefix
//!   — never a phantom record, never a reordered one;
//! * every record at or below the pre-crash durable horizon survives;
//! * ACK-gated GC never deletes an un-ACKed record, under any
//!   interleaving of append/sync/ack/crash/reopen.

use adaedge_codecs::faultkit;
use adaedge_storage::spool::{
    ReplayItem, Spool, SpoolConfig, SpoolRecord, FRAME_OVERHEAD, HEADER_BYTES,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Unique temp dir per test (and per proptest case where needed).
fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "adaedge-spool-rec-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A spool that never syncs on its own: durability moves only on
/// explicit `sync()`, rotation, or `replayer()`.
fn manual_cfg(dir: &Path, segment_max: u64) -> SpoolConfig {
    let mut cfg = SpoolConfig::new(dir);
    cfg.segment_max_bytes = segment_max;
    cfg.sync_interval = Duration::from_secs(3600);
    cfg
}

/// Deterministic payload for sequence `seq` of length `len`.
fn payload_for(seq: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seq as u8).wrapping_add(i as u8))
        .collect()
}

/// Collect a full replay from `from_seq`, splitting records and gaps.
fn replay_all(sp: &mut Spool, from_seq: u64) -> (Vec<SpoolRecord>, Vec<(u64, u64)>) {
    let mut records = Vec::new();
    let mut gaps = Vec::new();
    for item in sp.replayer(from_seq).expect("replayer") {
        match item {
            ReplayItem::Record(r) => records.push(r),
            ReplayItem::Gap { from_seq, to_seq } => gaps.push((from_seq, to_seq)),
        }
    }
    (records, gaps)
}

// ---------------------------------------------------------------------
// Crash-recovery proptest: cut the (single) segment file anywhere.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Write N records into one segment, cut the file at an arbitrary
    /// byte offset (including inside the header), reopen. The recovered
    /// set must be exactly the longest valid frame prefix: every frame
    /// wholly below the cut survives, everything at or past it is gone,
    /// and nothing is invented.
    #[test]
    fn recovery_is_exactly_the_longest_valid_prefix(
        lens in prop::collection::vec(0usize..64, 1..32),
        cut_frac in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        let dir = tmpdir(&format!("prefix-{case}"));
        let cfg = manual_cfg(&dir, 1 << 20);
        let mut sp = Spool::open(cfg.clone()).expect("open");
        for (i, &len) in lens.iter().enumerate() {
            let seq = sp.append(i as u64, &payload_for(i as u64 + 1, len)).expect("append");
            prop_assert_eq!(seq, i as u64 + 1);
        }
        let path = sp.open_segment_path().expect("open segment");
        let file_len = sp.open_segment_len();
        drop(sp);

        let cut = (cut_frac * file_len as f64) as u64;
        faultkit::file_truncate_at(&path, cut).expect("truncate");

        let sp2 = Spool::open(cfg.clone()).expect("reopen must not fail");
        // Expected: frames fitting wholly below the cut. Frame i ends at
        // HEADER_BYTES + sum of (FRAME_OVERHEAD + len) over 0..=i.
        let mut end = HEADER_BYTES;
        let mut expected = 0usize;
        if cut >= HEADER_BYTES {
            for &len in &lens {
                end += FRAME_OVERHEAD + len as u64;
                if end <= cut {
                    expected += 1;
                } else {
                    break;
                }
            }
        }
        let stats = sp2.stats();
        prop_assert_eq!(stats.records, expected as u64, "cut={} file_len={}", cut, file_len);
        prop_assert_eq!(stats.next_seq, expected as u64 + 1, "no phantom sequences");
        prop_assert_eq!(stats.durable_seq, expected as u64);
        if cut < HEADER_BYTES {
            // Torn creation: the unreadable file is removed, not patched.
            prop_assert_eq!(stats.recovered_dropped_files, 1);
        }

        // Replay must deliver exactly that prefix, in order, bit-exact.
        let mut sp2 = sp2;
        let (records, gaps) = replay_all(&mut sp2, 0);
        prop_assert!(gaps.is_empty(), "tail truncation never creates a gap");
        prop_assert_eq!(records.len(), expected);
        for (i, rec) in records.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(&rec.payload, &payload_for(i as u64 + 1, lens[i]));
        }
        drop(sp2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// ACK-ledger interleaving proptest: append/sync/ack/crash/reopen.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// Append a record of this payload length.
    Append(usize),
    /// Explicit fdatasync (advances the durable horizon).
    Sync,
    /// ACK this fraction of the un-ACKed durable backlog.
    Ack(f64),
    /// Power cut: tear the open segment at `synced + frac * (len - synced)`.
    Crash(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! is unweighted; repetition stands in for
    // weights (4:2:2:1 append-heavy mix keeps the spool growing).
    prop_oneof![
        (0usize..48).prop_map(Op::Append),
        (0usize..48).prop_map(Op::Append),
        (0usize..48).prop_map(Op::Append),
        (0usize..48).prop_map(Op::Append),
        Just(Op::Sync),
        Just(Op::Sync),
        (0.0f64..=1.0).prop_map(Op::Ack),
        (0.0f64..=1.0).prop_map(Op::Ack),
        (0.0f64..=1.0).prop_map(Op::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under random interleavings of append / sync / ack / GC / crash /
    /// reopen: no un-ACKed record is ever deleted, the pre-crash durable
    /// horizon always survives, and replay after reopen delivers every
    /// un-ACKed surviving record exactly once in capture order.
    #[test]
    fn ack_ledger_interleavings_never_lose_unacked_records(
        ops in prop::collection::vec(op_strategy(), 1..48),
        case in 0u64..u64::MAX,
    ) {
        let dir = tmpdir(&format!("ledger-{case}"));
        // Small segments force rotation (and therefore GC eligibility).
        let cfg = manual_cfg(&dir, 256);
        let mut sp = Spool::open(cfg.clone()).expect("open");
        // Model: payloads by seq (index i holds seq i+1), ACK cursor.
        let mut model: Vec<Vec<u8>> = Vec::new();
        let mut acked: u64 = 0;
        let mut ts: u64 = 0;

        for op in ops {
            match op {
                Op::Append(len) => {
                    let seq = model.len() as u64 + 1;
                    let p = payload_for(seq, len);
                    let got = sp.append(ts, &p).expect("append");
                    prop_assert_eq!(got, seq);
                    model.push(p);
                    ts += 1;
                }
                Op::Sync => sp.sync().expect("sync"),
                Op::Ack(frac) => {
                    let durable = sp.stats().durable_seq;
                    if durable > acked {
                        let span = durable - acked;
                        let to = acked + 1 + (frac * (span - 1) as f64) as u64;
                        sp.ack(to).expect("ack");
                        acked = to;
                    }
                }
                Op::Crash(frac) => {
                    let durable = sp.stats().durable_seq;
                    let open_path = sp.open_segment_path();
                    let synced = sp.open_segment_synced_bytes();
                    let len = sp.open_segment_len();
                    drop(sp);
                    if let Some(path) = open_path {
                        // The fault model: bytes below the sync offset
                        // are safe, anything past it may vanish.
                        let cut = synced + (frac * (len - synced) as f64) as u64;
                        faultkit::file_truncate_at(&path, cut).expect("cut");
                    }
                    sp = Spool::open(cfg.clone()).expect("reopen after crash");
                    let recovered = sp.stats().next_seq - 1;
                    prop_assert!(
                        recovered >= durable,
                        "lost durable records: recovered {} < durable {}",
                        recovered, durable
                    );
                    prop_assert!(recovered as usize <= model.len(), "phantom records");
                    // Records past the recovery point are gone; their
                    // sequence numbers will be reassigned.
                    model.truncate(recovered as usize);
                    // The ACK cursor is the ingest side's state; re-report
                    // it so GC resumes (it is not persisted on this node).
                    sp.ack(acked).expect("re-ack");
                }
            }

            // Invariant after every op: replay from the ACK cursor
            // delivers exactly the un-ACKed durable records, once, in
            // capture order, bit-exact against the model.
            let (records, gaps) = replay_all(&mut sp, acked);
            prop_assert!(gaps.is_empty(), "no gaps without bit rot/retention");
            let durable = sp.stats().durable_seq;
            prop_assert_eq!(records.len() as u64, durable - acked);
            for (i, rec) in records.iter().enumerate() {
                let seq = acked + 1 + i as u64;
                prop_assert_eq!(rec.seq, seq, "capture order violated");
                prop_assert_eq!(
                    &rec.payload,
                    &model[(seq - 1) as usize],
                    "payload mismatch at seq {}", seq
                );
            }
        }
        drop(sp);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Power-loss torture: 520 randomized crash points in one long history.
// ---------------------------------------------------------------------

/// One long spool history with 520 crash/reopen cycles (the acceptance
/// floor is 500+). Each cycle appends a random burst with random syncs,
/// ACKs a random durable prefix (driving GC), then cuts the open segment
/// at a random offset at or past the sync horizon and reopens. Checked
/// every cycle: recovery succeeds, the durable horizon survives, no
/// phantom records, ACK-gated GC never deleted an un-ACKed record, and
/// the whole un-ACKed backlog replays bit-exact in capture order.
#[test]
fn power_loss_torture_520_crash_points() {
    let dir = tmpdir("torture");
    let cfg = manual_cfg(&dir, 512);
    let mut rng = SmallRng::seed_from_u64(0xAE5E_ED08);
    let mut sp = Spool::open(cfg.clone()).expect("open");
    let mut model: Vec<Vec<u8>> = Vec::new();
    let mut acked: u64 = 0;
    let mut ts: u64 = 0;
    let mut crashes = 0u32;
    // GC counters are per-process-lifetime and reset on reopen, so
    // accumulate across crash cycles.
    let mut total_gc_segments = 0u64;

    while crashes < 520 {
        // Random burst of appends, with syncs sprinkled between them so
        // crash points land across append/sync boundaries.
        for _ in 0..rng.gen_range(1..=10usize) {
            let seq = model.len() as u64 + 1;
            let p = payload_for(seq, rng.gen_range(0..56));
            assert_eq!(sp.append(ts, &p).expect("append"), seq);
            model.push(p);
            ts += 1;
            if rng.gen_bool(0.3) {
                sp.sync().expect("sync");
            }
        }
        // ACK a random durable prefix: exercises GC before the crash, so
        // some cycles cut right after segment files were unlinked.
        let durable = sp.stats().durable_seq;
        if durable > acked && rng.gen_bool(0.7) {
            acked = rng.gen_range(acked + 1..=durable);
            sp.ack(acked).expect("ack");
        }

        // Power cut at a random offset at or past the sync horizon.
        let pre_stats = sp.stats();
        let pre_durable = pre_stats.durable_seq;
        total_gc_segments += pre_stats.gc_segments;
        let open_path = sp.open_segment_path();
        let synced = sp.open_segment_synced_bytes();
        let len = sp.open_segment_len();
        drop(sp);
        if let Some(path) = open_path {
            let cut = rng.gen_range(synced..=len);
            faultkit::file_truncate_at(&path, cut).expect("cut");
        }
        crashes += 1;

        sp = Spool::open(cfg.clone()).expect("reopen after crash");
        let recovered = sp.stats().next_seq - 1;
        assert!(
            recovered >= pre_durable,
            "cycle {crashes}: durable horizon lost ({recovered} < {pre_durable})"
        );
        assert!(
            recovered as usize <= model.len(),
            "cycle {crashes}: phantom records"
        );
        model.truncate(recovered as usize);
        sp.ack(acked).expect("re-ack");

        // GC safety + exactly-once capture-order replay of the backlog.
        let (records, gaps) = replay_all(&mut sp, acked);
        assert!(gaps.is_empty(), "cycle {crashes}: unexpected gap {gaps:?}");
        assert_eq!(records.len() as u64, recovered - acked, "cycle {crashes}");
        for (i, rec) in records.iter().enumerate() {
            let seq = acked + 1 + i as u64;
            assert_eq!(rec.seq, seq, "cycle {crashes}: order");
            assert_eq!(
                rec.payload,
                model[(seq - 1) as usize],
                "cycle {crashes}: payload at seq {seq}"
            );
        }
    }

    let stats = sp.stats();
    total_gc_segments += stats.gc_segments;
    assert!(total_gc_segments > 0, "torture never exercised GC");
    assert_eq!(stats.dropped_segments, 0, "retention is off");
    drop(sp);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Faultkit-driven media faults: bit rot and duplicated frames.
// ---------------------------------------------------------------------

/// Fill a spool with enough fixed-size records to produce several closed
/// segments, then sync. Returns (spool, record payload length).
fn multi_segment_spool(dir: &Path) -> (Spool, usize) {
    let cfg = manual_cfg(dir, 256);
    let mut sp = Spool::open(cfg).expect("open");
    let len = 40usize;
    for i in 0..24u64 {
        sp.append(i, &payload_for(i + 1, len)).expect("append");
    }
    sp.sync().expect("sync");
    assert!(
        sp.stats().closed_segments >= 3,
        "need several closed segments"
    );
    (sp, len)
}

#[test]
fn bit_rot_in_closed_segment_replays_prefix_then_gap() {
    let dir = tmpdir("bitrot");
    let (sp, len) = multi_segment_spool(&dir);
    let total = sp.stats().records;
    drop(sp);

    // Corrupt the SECOND closed segment past its first frame, so its
    // first record survives and the rest of the segment becomes a gap.
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    names.sort();
    let victim = &names[1];
    let first_frame_end = HEADER_BYTES + FRAME_OVERHEAD + len as u64;
    let file_len = std::fs::metadata(victim).unwrap().len();
    let mut rng = SmallRng::seed_from_u64(17);
    faultkit::file_bit_flip_in(victim, first_frame_end..file_len, &mut rng).expect("flip");

    let mut sp = Spool::open(manual_cfg(&dir, 256)).expect("reopen");
    let stats = sp.stats();
    assert_eq!(
        stats.corrupt_segments, 1,
        "mid-spool rot is flagged, not dropped"
    );
    assert_eq!(
        stats.next_seq,
        total + 1,
        "later segments still anchor next_seq"
    );

    let (records, gaps) = replay_all(&mut sp, 0);
    assert_eq!(gaps.len(), 1, "exactly one lost range");
    let (gap_from, gap_to) = gaps[0];
    assert!(gap_from > 1, "the rotted segment's first record survived");
    assert!(gap_to < total, "later segments replay past the gap");
    // Everything outside the gap is delivered once, in order, bit-exact.
    let mut expect = 1u64;
    for rec in &records {
        if expect == gap_from {
            expect = gap_to + 1;
        }
        assert_eq!(rec.seq, expect);
        assert_eq!(rec.payload, payload_for(rec.seq, len));
        expect += 1;
    }
    assert_eq!(expect, total + 1, "every non-lost record was replayed");
    drop(sp);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicated_frame_is_rejected_by_seq_contiguity() {
    let dir = tmpdir("dupframe");
    let (sp, len) = multi_segment_spool(&dir);
    let total = sp.stats().records;
    drop(sp);

    // Duplicate the first frame of the second closed segment: the copy
    // has a valid CRC but a non-contiguous sequence number, which the
    // scan must reject — a CRC alone cannot catch replayed writes.
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    names.sort();
    let victim = &names[1];
    faultkit::file_duplicate_range(victim, HEADER_BYTES, FRAME_OVERHEAD + len as u64)
        .expect("duplicate");

    let mut sp = Spool::open(manual_cfg(&dir, 256)).expect("reopen");
    let (records, gaps) = replay_all(&mut sp, 0);
    // No record is delivered twice and no phantom appears; the segment's
    // post-duplicate remainder is a known-lost range.
    let mut seen = std::collections::HashSet::new();
    for rec in &records {
        assert!(seen.insert(rec.seq), "seq {} delivered twice", rec.seq);
        assert!(rec.seq <= total, "phantom seq {}", rec.seq);
        assert_eq!(rec.payload, payload_for(rec.seq, len));
    }
    assert_eq!(
        gaps.len(),
        1,
        "duplicate splits the segment into prefix + gap"
    );
    drop(sp);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Retention under pressure: replay reports the dropped range as a gap.
// ---------------------------------------------------------------------

#[test]
fn retention_drop_surfaces_as_replay_gap_with_unacked_accounting() {
    let dir = tmpdir("retention-gap");
    let mut cfg = manual_cfg(&dir, 256);
    cfg.max_spool_bytes = Some(1100);
    let mut sp = Spool::open(cfg).expect("open");
    let len = 40usize;
    // ACK as we go only for the first 6 records: later drops hit
    // un-ACKed data and must be accounted as such.
    for i in 0..40u64 {
        sp.append(i, &payload_for(i + 1, len)).expect("append");
        if i == 6 {
            sp.sync().expect("sync");
            sp.ack(6).expect("ack");
        }
    }
    sp.sync().expect("sync");
    let stats = sp.stats();
    assert!(stats.dropped_segments > 0, "byte cap must trigger drops");
    assert!(stats.bytes <= 1100, "cap enforced");
    assert!(
        stats.dropped_unacked_records > 0,
        "drops past the ACK cursor are data loss and must be surfaced"
    );
    assert!(stats.dropped_unacked_records <= stats.dropped_records);

    // Replay from the ACK cursor: the dropped range comes back as a gap
    // so the ingest ledger can advance past it; the survivors follow in
    // order.
    let (records, gaps) = replay_all(&mut sp, 6);
    assert_eq!(gaps.len(), 1);
    let (gap_from, gap_to) = gaps[0];
    assert_eq!(gap_from, 7, "gap starts right after the ACK cursor");
    assert_eq!(
        gap_to - gap_from + 1,
        stats.dropped_records,
        "gap spans exactly the dropped records (ACKed ones were GC'd, not dropped)"
    );
    assert_eq!(records.first().map(|r| r.seq), Some(gap_to + 1));
    assert_eq!(records.last().map(|r| r.seq), Some(40));
    drop(sp);
    std::fs::remove_dir_all(&dir).ok();
}
