//! Fleet-equivalence suite: the multi-tenant fleet layer must be the
//! *same engine* per stream, not a statistical cousin of it.
//!
//! Three layers of guarantees, mirroring `shard_equivalence.rs`:
//!
//! 1. **A 1-stream fleet is the single-stream engine.** Stream id 0
//!    leaves the selector seed unchanged (the same φ-multiply derivation
//!    the shard replicas use), so a fleet of one stream over one worker
//!    must reproduce `run_pipeline` at S = 1 bit for bit: same bytes on
//!    the wire, same codec decisions, same posterior as an in-test
//!    centralized oracle replay.
//! 2. **Interleaving is invisible per stream.** At most one batch per
//!    stream is in flight, so a stream's select→report pairs never
//!    reorder no matter how many tenants share the workers or which
//!    shard steals the batch. Property-tested: every stream's posterior
//!    under interleaved multi-stream traffic equals its solo-fleet run.
//! 3. **Evict/restore is bit-exact.** A posterior archived at eviction
//!    (in memory or through the CRC-framed posterior file) and restored
//!    at re-admission continues with identical pulls, estimates, failure
//!    totals and quarantine verdicts — verified against an oracle that
//!    replays the restore by hand.
//!
//! The egress stage's hard invariant rides along: no emitted transport
//! frame ever exceeds the payload cap, and per-stream frame accounting
//! conserves every compressed byte.

use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch};
use adaedge_core::engine::{run_pipeline, EngineConfig};
use adaedge_core::fleet::{run_fleet, FleetConfig, StreamSpec};
use adaedge_core::frame::{FrameConfig, Priority};
use adaedge_core::selector::{ArmOutcome, LosslessSelector, SelectorConfig};
use adaedge_datasets::{SegmentSource, SineStream};
use proptest::prelude::*;

fn roster() -> Vec<CodecId> {
    CodecRegistry::lossless_candidates()
}

const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The fleet's per-stream seed derivation, replicated for oracles.
fn stream_seed(base: u64, id: u64) -> u64 {
    base ^ id.wrapping_mul(HASH_MULT)
}

fn sine_spec(id: u64, priority: Priority, n: usize, seg_len: usize, seed: u64) -> StreamSpec {
    StreamSpec::new(
        id,
        priority,
        n,
        Box::new(SineStream::new(seg_len, 0.1, 4, seed)),
    )
}

/// Replay one stream's worker loop centrally: its own selector (seeded by
/// the fleet derivation), segments in order, one sticky arm per K-batch.
/// Returns (bytes_out, codec_counts, final selector).
fn stream_oracle(
    id: u64,
    source: &mut dyn SegmentSource,
    segments: usize,
    k: usize,
    selector_config: SelectorConfig,
) -> (
    u64,
    std::collections::HashMap<CodecId, u64>,
    LosslessSelector,
) {
    let mut config = selector_config;
    config.seed = stream_seed(config.seed, id);
    let reg = CodecRegistry::new(4);
    let mut selector = LosslessSelector::new(roster(), config);
    let mut scratch = CodecScratch::new();
    let mut bytes_out = 0u64;
    let mut counts = std::collections::HashMap::new();
    let mut seg = Vec::with_capacity(source.segment_len());
    let mut done = 0usize;
    while done < segments {
        let batch = k.min(segments - done);
        let (arm, codec) = selector.select_arm();
        let mut outcomes = Vec::with_capacity(batch);
        for _ in 0..batch {
            source.next_segment_into(&mut seg);
            let block = reg.compress_into(codec, &seg, &mut scratch).expect("codec");
            bytes_out += block.compressed_bytes() as u64;
            outcomes.push(ArmOutcome::Ratio(block.ratio()));
            *counts.entry(codec).or_insert(0u64) += 1;
        }
        selector.report_batch(arm, &outcomes);
        done += batch;
    }
    (bytes_out, counts, selector)
}

#[test]
fn one_stream_fleet_is_bit_identical_to_engine() {
    // Stream id 0 ⇒ unchanged seed ⇒ the fleet's one selector is the
    // engine's shard-0 replica. Same source, same K ⇒ identical bytes
    // and decisions, at per-segment and sticky-batch scheduling alike.
    for k in [1, 8] {
        let config = FleetConfig {
            n_compression_threads: 1,
            batch_segments: k,
            ..Default::default()
        };
        let fleet =
            run_fleet(vec![sine_spec(0, Priority::Normal, 120, 1000, 7)], &config).expect("fleet");

        let mut source = SineStream::new(1000, 0.1, 4, 7);
        let engine_config = EngineConfig {
            n_compression_threads: 1,
            batch_segments: k,
            ..Default::default()
        };
        let engine = run_pipeline(&mut source, 120, &engine_config).expect("engine");

        assert_eq!(fleet.segments, engine.segments, "K={k}");
        assert_eq!(fleet.bytes_in, engine.bytes_in, "K={k}");
        assert_eq!(fleet.bytes_out, engine.bytes_out, "K={k}");
        assert_eq!(fleet.codec_counts, engine.codec_counts, "K={k}");
        assert_eq!(fleet.streams, 1);
        assert_eq!(fleet.stolen_batches, 0, "K={k}");
    }
}

#[test]
fn one_stream_fleet_posterior_matches_central_oracle() {
    for k in [1, 4] {
        let config = FleetConfig {
            n_compression_threads: 1,
            batch_segments: k,
            ..Default::default()
        };
        let fleet =
            run_fleet(vec![sine_spec(3, Priority::Normal, 90, 500, 11)], &config).expect("fleet");
        let mut source = SineStream::new(500, 0.1, 4, 11);
        let (bytes, counts, oracle) =
            stream_oracle(3, &mut source, 90, k, SelectorConfig::default());
        let r = &fleet.stream_reports[0];
        assert_eq!(r.bytes_out, bytes, "K={k}");
        assert_eq!(fleet.codec_counts, counts, "K={k}");
        assert_eq!(r.pulls, oracle.pulls(), "K={k}");
        // Estimates bit-for-bit, not approximately.
        let got: Vec<u64> = r.estimates.iter().map(|e| e.to_bits()).collect();
        let want: Vec<u64> = oracle.estimates().iter().map(|e| e.to_bits()).collect();
        assert_eq!(got, want, "K={k}");
        assert_eq!(r.failure_totals, oracle.failure_totals(), "K={k}");
        assert_eq!(r.quarantine_bits, 0, "K={k}");
    }
}

#[test]
fn frame_packer_never_exceeds_cap_and_conserves_bytes() {
    // Tight cap forces heavy fragmentation: compressed sine segments run
    // to hundreds of bytes against a 96-byte cap. The packer's hard
    // invariant (never emit over cap) and conservation (every compressed
    // byte of every stream ships exactly once) must both hold.
    let config = FleetConfig {
        n_compression_threads: 2,
        batch_segments: 2,
        frame: FrameConfig {
            payload_cap: 96,
            fragment_overhead: 8,
        },
        ..Default::default()
    };
    let specs = vec![
        sine_spec(1, Priority::Critical, 20, 400, 1),
        sine_spec(2, Priority::Bulk, 20, 400, 2),
        sine_spec(3, Priority::Normal, 20, 400, 3),
    ];
    let report = run_fleet(specs, &config).expect("fleet");
    assert!(report.frames.frames > 0);
    assert!(
        report.frames.max_frame_used <= 96,
        "frame over cap: {} > 96",
        report.frames.max_frame_used
    );
    let mut egress_total = 0u64;
    for r in &report.stream_reports {
        assert_eq!(
            r.egress.payload_bytes, r.bytes_out,
            "stream {}: every compressed byte must ship exactly once",
            r.id
        );
        assert_eq!(r.egress.segments, r.segments, "stream {}", r.id);
        assert!(r.egress.fragments >= r.egress.segments, "stream {}", r.id);
        egress_total += r.egress.payload_bytes;
    }
    assert_eq!(egress_total, report.bytes_out);
    // Frame bytes = payloads + per-fragment overhead, nothing else.
    let fragments: u64 = report
        .stream_reports
        .iter()
        .map(|r| r.egress.fragments)
        .sum();
    assert_eq!(report.frames.bytes, egress_total + fragments * 8);
}

#[test]
fn bounded_fleet_with_mixed_priorities_accounts_exactly() {
    let config = FleetConfig {
        n_compression_threads: 2,
        batch_segments: 3,
        max_resident_streams: 4,
        ..Default::default()
    };
    let specs: Vec<StreamSpec> = (0..12)
        .map(|id| {
            let pr = Priority::ALL[id as usize % 4];
            sine_spec(id, pr, 7, 300, 100 + id)
        })
        .collect();
    let report = run_fleet(specs, &config).expect("fleet");
    assert_eq!(report.streams, 12);
    assert_eq!(report.segments, 12 * 7);
    assert!(report.peak_resident <= 4, "{}", report.peak_resident);
    assert_eq!(report.evictions, 12);
    assert_eq!(report.restores, 0);
    let counted: u64 = report.codec_counts.values().sum();
    assert_eq!(counted, 12 * 7);
    assert_eq!(report.codec_failures, 0);
    for r in &report.stream_reports {
        assert_eq!(r.segments, 7);
        let pulls: u64 = r.pulls.iter().sum();
        assert_eq!(pulls, 7, "stream {}: every segment is a pull", r.id);
    }
}

#[test]
fn posterior_file_roundtrip_restores_bit_exactly() {
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "adaedge-fleet-eq-{}.posteriors",
            std::process::id()
        ));
        p
    };
    std::fs::remove_file(&path).ok();

    // Session 1: stream 9 learns over 40 segments; posterior persisted.
    let config1 = FleetConfig {
        n_compression_threads: 1,
        batch_segments: 4,
        posterior_path: Some(path.clone()),
        ..Default::default()
    };
    let run1 =
        run_fleet(vec![sine_spec(9, Priority::High, 40, 400, 21)], &config1).expect("session 1");
    let r1 = &run1.stream_reports[0];
    assert!(!r1.restored);

    // The persisted file is the in-memory posterior, to the bit.
    let on_disk = adaedge_storage::load_posteriors(&path).expect("load");
    assert_eq!(on_disk.len(), 1);
    assert_eq!(on_disk[0].stream_id, 9);
    assert_eq!(on_disk[0].pulls, r1.pulls);
    let disk_bits: Vec<u64> = on_disk[0].estimates.iter().map(|e| e.to_bits()).collect();
    let mem_bits: Vec<u64> = r1.estimates.iter().map(|e| e.to_bits()).collect();
    assert_eq!(disk_bits, mem_bits);

    // Session 2: same id returns with fresh data; must resume, and the
    // resumed posterior must equal an oracle that restores by hand and
    // replays session 2's segments.
    let config2 = FleetConfig {
        n_compression_threads: 1,
        batch_segments: 4,
        posterior_path: Some(path.clone()),
        ..Default::default()
    };
    let run2 =
        run_fleet(vec![sine_spec(9, Priority::High, 24, 400, 22)], &config2).expect("session 2");
    let r2 = &run2.stream_reports[0];
    assert!(r2.restored);
    assert_eq!(run2.restores, 1);

    let mut sel_config = SelectorConfig::default();
    sel_config.seed = stream_seed(sel_config.seed, 9);
    let reg = CodecRegistry::new(4);
    let mut oracle = LosslessSelector::new(roster(), sel_config);
    oracle.restore_posterior(
        &on_disk[0].pulls,
        &on_disk[0].estimates,
        &on_disk[0].failure_totals,
        on_disk[0].quarantine_bits,
    );
    let mut source = SineStream::new(400, 0.1, 4, 22);
    let mut scratch = CodecScratch::new();
    let mut seg = Vec::new();
    let mut done = 0usize;
    while done < 24 {
        let batch = 4usize.min(24 - done);
        let (arm, codec) = oracle.select_arm();
        let mut outcomes = Vec::with_capacity(batch);
        for _ in 0..batch {
            source.next_segment_into(&mut seg);
            let block = reg.compress_into(codec, &seg, &mut scratch).expect("codec");
            outcomes.push(ArmOutcome::Ratio(block.ratio()));
        }
        oracle.report_batch(arm, &outcomes);
        done += batch;
    }
    assert_eq!(r2.pulls, oracle.pulls());
    let got: Vec<u64> = r2.estimates.iter().map(|e| e.to_bits()).collect();
    let want: Vec<u64> = oracle.estimates().iter().map(|e| e.to_bits()).collect();
    assert_eq!(got, want, "restored stream must continue bit-exactly");
    let total: u64 = r2.pulls.iter().sum();
    assert_eq!(total, 64, "40 + 24 pulls across both sessions");

    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved multi-stream traffic over shared (stealing) workers
    /// leaves every stream's posterior exactly where its solo run lands
    /// it: the one-batch-in-flight invariant makes scheduling invisible
    /// to the bandit math.
    #[test]
    fn interleaved_posteriors_match_solo_runs(
        n_streams in 2usize..5,
        segs_per_stream in 1usize..16,
        k in 1usize..4,
        shards in 1usize..4,
    ) {
        let mk_specs = |ids: &[u64]| -> Vec<StreamSpec> {
            ids.iter()
                .map(|&id| sine_spec(id, Priority::Normal, segs_per_stream, 64, 1000 + id))
                .collect()
        };
        let ids: Vec<u64> = (0..n_streams as u64).map(|i| i * 17 + 1).collect();
        let config = FleetConfig {
            n_compression_threads: shards,
            batch_segments: k,
            ..Default::default()
        };
        let multi = run_fleet(mk_specs(&ids), &config).expect("multi");
        prop_assert_eq!(multi.streams, n_streams as u64);
        let solo_config = FleetConfig {
            n_compression_threads: 1,
            batch_segments: k,
            ..Default::default()
        };
        for &id in &ids {
            let solo = run_fleet(mk_specs(&[id]), &solo_config).expect("solo");
            let m = multi.stream_reports.iter().find(|r| r.id == id).expect("present");
            let s = &solo.stream_reports[0];
            prop_assert_eq!(&m.pulls, &s.pulls, "stream {}", id);
            let m_bits: Vec<u64> = m.estimates.iter().map(|e| e.to_bits()).collect();
            let s_bits: Vec<u64> = s.estimates.iter().map(|e| e.to_bits()).collect();
            prop_assert_eq!(m_bits, s_bits, "stream {}", id);
            prop_assert_eq!(&m.failure_totals, &s.failure_totals, "stream {}", id);
            prop_assert_eq!(m.quarantine_bits, s.quarantine_bits, "stream {}", id);
            prop_assert_eq!(m.bytes_out, s.bytes_out, "stream {}", id);
        }
    }
}
