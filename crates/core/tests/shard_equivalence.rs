//! Shard-equivalence suite: the sharded, replica-selector engine must be
//! *provably* the same bandit as the centralized one where the math says
//! so, and within exploration noise where it says that.
//!
//! Three layers of guarantees, mirroring `batch_equivalence.rs`:
//!
//! 1. **S = 1 is bandit-exact.** A single shard has no foreign deltas, so
//!    the replica *is* the centralized selector — the engine's output is
//!    compared bit for bit against an in-test replay of the centralized
//!    worker loop (same stream, same seed, same arithmetic).
//! 2. **Delta-sync is posterior-exact at `sync_interval = 1`.** For
//!    sample-average policies the fold depends only on per-arm sums and
//!    counts, so any interleaving of outcomes across shards must land on
//!    the centralized posterior (property-tested over random scripts, up
//!    to the table's ~2⁻³² fixed-point quantization).
//! 3. **S > 1 pays only exploration noise.** Egress and dominant-arm
//!    share move by less than the ε-greedy exploration band, and the
//!    staleness test quantifies the cumulative-reward cost of syncing
//!    lazily (documented bound: ≤ 5 % vs centralized at equal decisions).
//!
//! Every engine run here also asserts the lock-freedom contract:
//! `selector_lock_acquisitions == 0` in the report.

use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch};
use adaedge_core::engine::{run_offline_pipeline, run_pipeline, EngineConfig, OfflineEngineConfig};
use adaedge_core::query::AggKind;
use adaedge_core::selector::{ArmOutcome, LosslessSelector, SelectorConfig};
use adaedge_core::shard::{ReplicaSelector, SharedOutcomeTable};
use adaedge_core::targets::OptimizationTarget;
use adaedge_datasets::{SegmentSource, SineStream};
use proptest::prelude::*;

fn roster() -> Vec<CodecId> {
    CodecRegistry::lossless_candidates()
}

fn run_with_shards(shards: usize, k: usize, segments: usize) -> adaedge_core::engine::EngineReport {
    let mut source = SineStream::new(1000, 0.1, 4, 7);
    let config = EngineConfig {
        n_compression_threads: shards,
        batch_segments: k,
        ..Default::default()
    };
    run_pipeline(&mut source, segments, &config).expect("pipeline")
}

/// Replay the centralized (pre-shard) worker loop: one selector, one
/// thread, segments in stream order, one sticky arm per K-batch. This is
/// the oracle the S = 1 engine must reproduce bit for bit.
fn centralized_oracle(k: usize, segments: usize) -> (u64, std::collections::HashMap<CodecId, u64>) {
    let mut source = SineStream::new(1000, 0.1, 4, 7);
    let reg = CodecRegistry::new(4);
    let mut selector = LosslessSelector::new(roster(), SelectorConfig::default());
    let mut scratch = CodecScratch::new();
    let mut bytes_out = 0u64;
    let mut counts = std::collections::HashMap::new();
    let mut seg = Vec::with_capacity(source.segment_len());
    let mut done = 0usize;
    while done < segments {
        let batch = k.min(segments - done);
        let (arm, codec) = selector.select_arm();
        let mut outcomes = Vec::with_capacity(batch);
        for _ in 0..batch {
            source.next_segment_into(&mut seg);
            let block = reg.compress_into(codec, &seg, &mut scratch).expect("codec");
            bytes_out += block.compressed_bytes() as u64;
            outcomes.push(ArmOutcome::Ratio(block.ratio()));
            *counts.entry(codec).or_insert(0u64) += 1;
        }
        selector.report_batch(arm, &outcomes);
        done += batch;
    }
    (bytes_out, counts)
}

#[test]
fn s1_engine_is_bit_identical_to_centralized_oracle() {
    // Per-segment scheduling and sticky batches both must reproduce the
    // centralized engine exactly when there is only one shard: same seed,
    // same decision sequence, same bytes on the wire.
    for k in [1, 8] {
        let report = run_with_shards(1, k, 120);
        let (oracle_bytes, oracle_counts) = centralized_oracle(k, 120);
        assert_eq!(report.bytes_out, oracle_bytes, "K={k}");
        assert_eq!(report.codec_counts, oracle_counts, "K={k}");
        assert_eq!(report.shards, 1, "K={k}");
        assert_eq!(report.stolen_batches, 0, "K={k}");
        assert_eq!(report.selector_lock_acquisitions, 0, "K={k}");
    }
}

#[test]
fn per_shard_accounting_covers_every_segment() {
    for shards in [2, 4] {
        let report = run_with_shards(shards, 4, 160);
        assert_eq!(report.segments, 160, "S={shards}");
        let total: u64 = report.codec_counts.values().sum();
        assert_eq!(total, 160, "S={shards}");
        assert_eq!(report.shards, shards);
        assert_eq!(report.codec_failures, 0, "S={shards}");
        // The lock-freedom contract: zero mutex acquisitions on the
        // per-segment hot path, while delta-sync demonstrably ran.
        assert_eq!(report.selector_lock_acquisitions, 0, "S={shards}");
        assert!(report.selector_syncs > 0, "S={shards}");
    }
}

#[test]
fn sharded_egress_stays_within_exploration_noise() {
    // Equal decision counts per selector: each of the S replicas makes
    // SEGMENTS/S decisions at K=1, the centralized run makes SEGMENTS.
    // Total work is identical; what may move is exploration overhead
    // (each replica burns its own optimistic-init warm-up), bounded by
    // the ε-band tolerances batch_equivalence already uses.
    const SEGMENTS: usize = 400;
    let s1 = run_with_shards(1, 1, SEGMENTS);
    for shards in [2, 4] {
        let sn = run_with_shards(shards, 1, SEGMENTS);
        let egress1 = s1.bytes_out as f64 / s1.bytes_in as f64;
        let egress_n = sn.bytes_out as f64 / sn.bytes_in as f64;
        assert!(
            (egress1 - egress_n).abs() < 0.1,
            "S={shards}: egress {egress_n:.4} vs S=1 {egress1:.4}"
        );
        assert_eq!(sn.selector_lock_acquisitions, 0, "S={shards}");
    }
}

#[test]
fn delta_sync_staleness_cost_is_bounded() {
    // Prescribed stationary environment: each arm always achieves a fixed
    // ratio, so cumulative reward is a pure function of the decision
    // sequence and regret is measurable without codec noise. Centralized
    // D decisions vs S=4 shards × D/4 decisions each, interleaved
    // round-robin — equal decision counts, different staleness.
    const D: usize = 400;
    const S: usize = 4;
    let arms = roster();
    let ratios: Vec<f64> = (0..arms.len())
        .map(|i| 0.3 + 0.6 * (i as f64 / (arms.len() - 1) as f64))
        .collect(); // arm 0 is best (ratio 0.3), last is worst (0.9)

    let mut central = LosslessSelector::new(arms.clone(), SelectorConfig::default());
    let mut central_reward = 0.0;
    for _ in 0..D {
        let (arm, _) = central.select_arm();
        central_reward += central.report_batch(arm, &[ArmOutcome::Ratio(ratios[arm])]);
    }

    for sync_interval in [1, 64] {
        let table = SharedOutcomeTable::new(arms.len());
        let mut replicas: Vec<ReplicaSelector> = (0..S)
            .map(|i| {
                ReplicaSelector::new(
                    arms.clone(),
                    SelectorConfig::default(),
                    i,
                    &table,
                    sync_interval,
                )
            })
            .collect();
        let mut sharded_reward = 0.0;
        for d in 0..D {
            let replica = &mut replicas[d % S];
            let (arm, _) = replica.select_arm();
            let outcome = [ArmOutcome::Ratio(ratios[arm])];
            replica.report_batch(arm, &outcome);
            sharded_reward += (1.0 - ratios[arm]).clamp(0.0, 1.0);
        }
        // Documented staleness bound (DESIGN.md §4e): the cumulative-reward
        // cost of replication — extra optimistic-init warm-up plus up to
        // (S−1)·sync_interval decisions of posterior lag — stays within 5 %
        // of the centralized selector at equal decision counts.
        let delta = (central_reward - sharded_reward).abs() / central_reward;
        assert!(
            delta <= 0.05,
            "sync_interval={sync_interval}: sharded reward {sharded_reward:.2} vs \
             centralized {central_reward:.2} (delta {:.1}%)",
            delta * 100.0
        );
        assert!(table.syncs() > 0);
        assert_eq!(table.selector_locks(), 0);
    }
}

#[test]
fn pool_exhaustion_under_sharding_does_not_deadlock() {
    // Regression for the recycle-pool bound: with the old global formula
    // naively ported per shard (batch_cap + 2), four stealing workers can
    // strand every batch of one shard in foreign hands and deadlock the
    // producer's blocking recv. The corrected bound (batch_cap + S + 1)
    // keeps one batch always in flight. Tiny buffer + many segments makes
    // the pool the bottleneck, so this run deadlocks (and times out)
    // if the bound regresses.
    let mut source = SineStream::new(200, 0.1, 4, 7);
    let config = EngineConfig {
        n_compression_threads: 4,
        buffer_segments: 1, // floors at the 2-batch shard queue: maximum pool pressure
        batch_segments: 2,
        ..Default::default()
    };
    let report = run_pipeline(&mut source, 300, &config).expect("pipeline");
    assert_eq!(report.segments, 300);
    let total: u64 = report.codec_counts.values().sum();
    assert_eq!(total, 300);
    assert_eq!(report.selector_lock_acquisitions, 0);
}

#[test]
fn offline_sharded_pipeline_accounts_under_pressure() {
    let mut source = SineStream::new(1000, 0.3, 4, 3);
    let config = OfflineEngineConfig {
        storage_budget_bytes: 60_000,
        n_compression_threads: 4,
        batch_segments: 2,
        ..OfflineEngineConfig::new(60_000, OptimizationTarget::agg(AggKind::Sum))
    };
    let report = run_offline_pipeline(&mut source, 100, &config).expect("pipeline");
    assert_eq!(report.segments + report.drops, 100);
    assert!(report.drops <= 4, "drops {}", report.drops);
    assert_eq!(report.shards, 4);
    assert_eq!(report.selector_lock_acquisitions, 0);
    assert!(report.stored_bytes <= 60_000);
}

/// Apply a prescribed outcome script round-robin across `s` replicas at
/// `sync_interval = 1`, final-sync each, and return them.
fn replay_sharded<'t>(
    script: &[(usize, f64)],
    s: usize,
    table: &'t SharedOutcomeTable,
) -> Vec<ReplicaSelector<'t>> {
    let mut replicas: Vec<ReplicaSelector> = (0..s)
        .map(|i| ReplicaSelector::new(roster(), SelectorConfig::default(), i, table, 1))
        .collect();
    for (i, &(arm, ratio)) in script.iter().enumerate() {
        replicas[i % s].report_batch(arm, &[ArmOutcome::Ratio(ratio)]);
    }
    for r in &mut replicas {
        r.sync();
    }
    replicas
}

proptest! {
    /// Any outcome script, split across any shard count at
    /// `sync_interval = 1`, lands every replica on the centralized
    /// posterior: identical pull counts, estimates within the table's
    /// fixed-point quantization. This is the delta-sync exactness claim
    /// for sample-average policies.
    #[test]
    fn sharded_replay_matches_centralized_posterior(
        script in prop::collection::vec((0usize..6, 0.0f64..1.5), 1..120),
        s in 1usize..=4,
    ) {
        let mut central = LosslessSelector::new(roster(), SelectorConfig::default());
        for &(arm, ratio) in &script {
            central.report_batch(arm, &[ArmOutcome::Ratio(ratio)]);
        }
        let table = SharedOutcomeTable::new(roster().len());
        let replicas = replay_sharded(&script, s, &table);
        for (i, replica) in replicas.iter().enumerate() {
            prop_assert_eq!(replica.local().pulls(), central.pulls(), "replica {}", i);
            prop_assert_eq!(replica.local().total_pulls(), central.total_pulls());
            for arm in 0..central.arms().len() {
                let got = replica.local().estimates()[arm];
                let want = central.estimates()[arm];
                prop_assert!(
                    (got - want).abs() < 1e-6,
                    "replica {} arm {}: {} vs {}", i, arm, got, want
                );
            }
        }
        prop_assert_eq!(table.selector_locks(), 0);
    }

    /// A single shard is not merely close — it is the centralized
    /// selector, bit for bit, including failures, streaks and quarantine,
    /// because no foreign deltas ever exist to fold.
    #[test]
    fn single_shard_replay_is_bit_identical(
        script in prop::collection::vec((0usize..6, 0.0f64..1.5, any::<bool>()), 1..120),
    ) {
        let table = SharedOutcomeTable::new(roster().len());
        let mut replica = ReplicaSelector::new(roster(), SelectorConfig::default(), 0, &table, 1);
        let mut central = LosslessSelector::new(roster(), SelectorConfig::default());
        for &(arm, ratio, fail) in &script {
            let outcome = if fail {
                [ArmOutcome::Failure]
            } else {
                [ArmOutcome::Ratio(ratio)]
            };
            replica.report_batch(arm, &outcome);
            central.report_batch(arm, &outcome);
        }
        prop_assert_eq!(replica.local().estimates(), central.estimates());
        prop_assert_eq!(replica.local().pulls(), central.pulls());
        prop_assert_eq!(replica.local().failure_totals(), central.failure_totals());
        for arm in 0..central.arms().len() {
            prop_assert_eq!(
                replica.local().is_quarantined(arm),
                central.is_quarantined(arm)
            );
        }
    }
}
