//! Batched-scheduling equivalence: `batch_segments = 1` must reproduce the
//! unbatched pipeline exactly, and K > 1 (one arm held sticky per batch,
//! rewards flushed through `report_batch`) must not change what the bandit
//! learns — only how often the selector lock is taken.
//!
//! With one compression thread and a seeded selector every run here is
//! fully deterministic, so the tolerance assertions cannot flake.

use adaedge_codecs::CodecId;
use adaedge_core::engine::{run_offline_pipeline, run_pipeline, EngineConfig, OfflineEngineConfig};
use adaedge_core::query::AggKind;
use adaedge_core::targets::OptimizationTarget;
use adaedge_datasets::SineStream;

fn run_with_k(k: usize, threads: usize, segments: usize) -> adaedge_core::engine::EngineReport {
    let mut source = SineStream::new(1000, 0.1, 4, 7);
    let config = EngineConfig {
        n_compression_threads: threads,
        batch_segments: k,
        ..Default::default()
    };
    run_pipeline(&mut source, segments, &config).expect("pipeline")
}

/// Fraction of segments routed to the most-selected codec.
fn dominant(report: &adaedge_core::engine::EngineReport) -> (CodecId, f64) {
    let total: u64 = report.codec_counts.values().sum();
    let (&codec, &count) = report
        .codec_counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty counts");
    (codec, count as f64 / total as f64)
}

#[test]
fn every_batch_size_accounts_for_every_segment() {
    // Includes K that divides the run, K that leaves a short tail batch,
    // K equal to the buffer and K larger than the whole run.
    for k in [1, 3, 4, 8, 64, 1000] {
        let report = run_with_k(k, 2, 120);
        assert_eq!(report.segments, 120, "K={k}");
        assert_eq!(report.points, 120_000, "K={k}");
        assert_eq!(report.bytes_in, 960_000, "K={k}");
        let total: u64 = report.codec_counts.values().sum();
        assert_eq!(total, 120, "K={k}");
        assert_eq!(report.codec_failures, 0, "K={k}");
    }
}

#[test]
fn k1_batching_is_deterministic() {
    // Single thread + seeded selector: two K=1 runs must agree byte-for-byte,
    // which is what makes the K=1 path comparable against the unbatched seed.
    // (`spills` is excluded: it depends on producer/worker timing, not on
    // what was computed.)
    let a = run_with_k(1, 1, 80);
    let b = run_with_k(1, 1, 80);
    assert_eq!(a.bytes_out, b.bytes_out);
    assert_eq!(a.codec_counts, b.codec_counts);
}

#[test]
fn sticky_arm_batches_match_k1_selection_distribution() {
    // Equal *decision* counts: a K-batch run makes one arm decision per K
    // segments, so each run processes K × 200 segments and every selector
    // sees exactly 200 pulls. Per-segment shares then equal per-decision
    // shares and the bandit's behavior is compared like-for-like.
    const DECISIONS: usize = 200;
    let k1 = run_with_k(1, 1, DECISIONS);
    for k in [4, 16] {
        let kb = run_with_k(k, 1, DECISIONS * k);
        let (win1, share1) = dominant(&k1);
        let (wink, sharek) = dominant(&kb);
        // Same learned winner, and the winner's share of traffic moves by
        // less than the ε-greedy exploration band.
        assert_eq!(win1, wink, "K={k} learned a different arm");
        assert!(
            (share1 - sharek).abs() < 0.15,
            "K={k}: dominant share {sharek:.3} vs K=1 {share1:.3}"
        );
        let egress1 = k1.bytes_out as f64 / k1.bytes_in as f64;
        let egressk = kb.bytes_out as f64 / kb.bytes_in as f64;
        assert!(
            (egress1 - egressk).abs() < 0.1,
            "K={k}: egress ratio {egressk:.4} vs K=1 {egress1:.4}"
        );
    }
}

#[test]
fn offline_pipeline_batches_under_pressure() {
    let mut source = SineStream::new(1000, 0.3, 4, 3);
    let config = OfflineEngineConfig {
        storage_budget_bytes: 60_000,
        batch_segments: 4,
        ..OfflineEngineConfig::new(60_000, OptimizationTarget::agg(AggKind::Sum))
    };
    let report = run_offline_pipeline(&mut source, 100, &config).expect("pipeline");
    assert_eq!(report.segments + report.drops, 100);
    assert!(report.drops <= 2, "drops {}", report.drops);
    assert!(report.recodes > 0, "recoder never ran");
    assert!(report.stored_bytes <= 60_000);
}
