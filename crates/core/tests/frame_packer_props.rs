//! Property tests for the frame packer under the uplink's NACK-requeue
//! workload (ISSUE 9): when an abandoned frame's records are re-queued
//! mid-stream, the packer must still conserve every byte, respect the
//! frame cap, and keep priority-then-sequence order within each frame.

use adaedge_core::{FrameConfig, FrameItem, FramePacker, Priority, TransportFrame};
use proptest::prelude::*;
use std::collections::HashMap;

fn prio() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::Critical),
        Just(Priority::High),
        Just(Priority::Normal),
        Just(Priority::Bulk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conservation_and_order_survive_midstream_requeue(
        payload_cap in 48usize..512,
        items in prop::collection::vec((0u64..4, prio(), 1usize..600), 1..40),
        drain_every in 1usize..6,
        requeue_mask in prop::collection::vec(any::<bool>(), 40..41),
    ) {
        let overhead = 12usize;
        let cfg = FrameConfig { payload_cap, fragment_overhead: overhead };
        let mut packer = FramePacker::new(cfg);
        let mut frames: Vec<TransportFrame> = Vec::new();
        let mut len_of: HashMap<u64, usize> = HashMap::new();
        let mut stream_of: HashMap<u64, u64> = HashMap::new();
        let mut prio_of: HashMap<u64, Priority> = HashMap::new();
        let mut pushes: HashMap<u64, usize> = HashMap::new();

        // Phase 1: stream the capture in, draining full frames as we go.
        for (i, &(stream, priority, len)) in items.iter().enumerate() {
            let seq = i as u64 + 1;
            packer.push(FrameItem { stream, priority, seq, len });
            len_of.insert(seq, len);
            stream_of.insert(seq, stream);
            prio_of.insert(seq, priority);
            *pushes.entry(seq).or_insert(0) += 1;
            if (i + 1) % drain_every == 0 {
                while packer.frame_ready() {
                    match packer.next_frame() {
                        Some(f) => frames.push(f),
                        None => break,
                    }
                }
            }
        }

        // Phase 2: mid-stream NACK replay — re-queue a subset of the
        // records that already shipped completely, while other records
        // are still pending inside the packer.
        let mut lasts_so_far: HashMap<u64, usize> = HashMap::new();
        for f in &frames {
            for fr in &f.fragments {
                if fr.last {
                    *lasts_so_far.entry(fr.seq).or_insert(0) += 1;
                }
            }
        }
        for (i, &(stream, priority, len)) in items.iter().enumerate() {
            let seq = i as u64 + 1;
            if requeue_mask[i % requeue_mask.len()]
                && lasts_so_far.get(&seq).copied().unwrap_or(0) == 1
            {
                packer.push(FrameItem { stream, priority, seq, len });
                *pushes.get_mut(&seq).unwrap() += 1;
            }
        }
        frames.extend(packer.flush());
        prop_assert_eq!(packer.pending(), 0);
        prop_assert_eq!(packer.pending_bytes(), 0);

        // Frame-local invariants: cap respected, `used` accounts for
        // every fragment + overhead, and fragments never ship out of
        // (priority, seq) order within a frame.
        for f in &frames {
            prop_assert!(f.used <= payload_cap, "{} > cap {}", f.used, payload_cap);
            let sum: usize = f.fragments.iter().map(|fr| fr.len + overhead).sum();
            prop_assert_eq!(f.used, sum);
            for w in f.fragments.windows(2) {
                let a = (prio_of[&w[0].seq], w[0].seq);
                let b = (prio_of[&w[1].seq], w[1].seq);
                prop_assert!(a <= b, "order violation: {a:?} then {b:?}");
            }
        }

        // Global conservation: per record, shipped bytes equal
        // `len × times_pushed`, with exactly one `last` fragment per
        // push, every fragment inside the record's bounds, and the
        // stream id stamped through unchanged.
        let mut shipped: HashMap<u64, usize> = HashMap::new();
        let mut lasts: HashMap<u64, usize> = HashMap::new();
        for f in &frames {
            for fr in &f.fragments {
                let len = len_of[&fr.seq];
                prop_assert!(fr.offset + fr.len <= len);
                prop_assert_eq!(fr.stream, stream_of[&fr.seq]);
                *shipped.entry(fr.seq).or_insert(0) += fr.len;
                if fr.last {
                    prop_assert_eq!(fr.offset + fr.len, len, "last fragment ends the record");
                    *lasts.entry(fr.seq).or_insert(0) += 1;
                }
            }
        }
        for (&seq, &len) in &len_of {
            let n = pushes[&seq];
            prop_assert_eq!(
                shipped.get(&seq).copied().unwrap_or(0),
                len * n,
                "seq {} bytes", seq
            );
            prop_assert_eq!(lasts.get(&seq).copied().unwrap_or(0), n, "seq {} lasts", seq);
        }
    }
}
