//! Uplink chaos suite: exactly-once, capture-order delivery under every
//! fault mix the `FaultyLink` can inject (ISSUE 9).
//!
//! Each scenario drives a real `Uplink`/`Receiver` pair over a seeded
//! fault-injecting link in virtual time and then checks the strongest
//! property the transport claims: the receiver releases **every offered
//! record exactly once, byte-identical, in capture order** — no matter
//! what the link dropped, duplicated, reordered, corrupted or stalled,
//! on the frame path *or* the ACK path. The final test closes the loop
//! with a real on-disk spool: a total blackout trips the circuit
//! breaker into spool-only store-and-forward mode, capture continues,
//! and recovery re-drains the backlog through the standard
//! `run_reconnect` path into the same ingest ledger with zero loss.

use adaedge_codecs::CodecRegistry;
use adaedge_core::spooling::{run_reconnect, ReplayConfig};
use adaedge_core::uplink::{
    run_session, BackoffConfig, BreakerConfig, BreakerState, FaultSpec, FaultyLink, Phase,
    Receiver, Transport, Uplink, UplinkConfig,
};
use adaedge_core::FrameConfig;
use adaedge_storage::spool::{Spool, SpoolConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "adaedge-uplink-chaos-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Deterministic capture-order records with varied sizes; ~5% are larger
/// than the frame payload cap so retransmits exercise re-fragmentation.
fn records(n: u64, seed: u64) -> Vec<(u64, Vec<u8>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (1..=n)
        .map(|seq| {
            let len = rng.gen_range(8..=300) + if rng.gen::<f64>() < 0.05 { 1500 } else { 0 };
            let bytes = (0..len)
                .map(|i| (seq as u8).wrapping_mul(31).wrapping_add(i as u8) ^ rng.gen::<u8>())
                .collect();
            (seq, bytes)
        })
        .collect()
}

/// An uplink config hardened for fault mixes where the breaker must NOT
/// trip (the drive helper asserts it stays closed): generous retries, a
/// deadline past the worst-case jittered round trip, a breaker that only
/// trips on a genuinely dead link.
fn chaos_cfg() -> UplinkConfig {
    UplinkConfig {
        // A small radio-profile frame so every run spans many frames —
        // otherwise the packer batches the whole stream into a handful
        // and the fault probabilities barely get to fire.
        frame: FrameConfig {
            payload_cap: 256,
            fragment_overhead: 12,
        },
        window: 8,
        deadline_ticks: 32,
        max_retries: 40,
        backoff: BackoffConfig {
            base_ticks: 2,
            max_ticks: 16,
            jitter: 0.25,
        },
        breaker: BreakerConfig {
            trip_after: 10_000,
            open_ticks: 64,
            probes_to_close: 2,
        },
        ..UplinkConfig::default()
    }
}

/// Drive `recs` through a fresh uplink/receiver over `link`, collecting
/// every record the receiver releases. Mirrors `run_session`'s tick
/// protocol but keeps the released payloads so callers can assert
/// byte-identical capture-order delivery.
fn drive(
    recs: &[(u64, Vec<u8>)],
    cfg: UplinkConfig,
    link: &mut FaultyLink,
    max_ticks: u64,
) -> (Vec<(u64, Vec<u8>)>, Uplink, Receiver, bool) {
    let mut up = Uplink::new(cfg);
    let mut rx = Receiver::new();
    let mut next = 0usize;
    let mut delivered: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut completed = false;
    for now in 0..max_ticks {
        for frame in link.poll_frames(now) {
            if let Some(ack) = rx.on_frame(&frame) {
                link.send_ack(now, ack);
            }
        }
        delivered.extend(rx.take_ordered());
        up.tick(now, link);
        assert!(
            up.take_rewind().is_empty(),
            "breaker must stay closed in this scenario"
        );
        while next < recs.len() && up.can_accept(now) {
            let (seq, p) = &recs[next];
            assert!(up.offer(now, *seq, p.clone()));
            next += 1;
        }
        up.set_external_backlog(recs.len() - next);
        if next == recs.len() && up.idle() && link.is_empty() {
            completed = true;
            break;
        }
    }
    delivered.extend(rx.take_ordered());
    (delivered, up, rx, completed)
}

/// The exactly-once contract: the delivered sequence IS the capture
/// sequence — same seqs, same order, same bytes.
fn assert_exactly_once(recs: &[(u64, Vec<u8>)], delivered: &[(u64, Vec<u8>)], rx: &Receiver) {
    assert_eq!(
        delivered.len(),
        recs.len(),
        "every record exactly once ({} delivered of {})",
        delivered.len(),
        recs.len()
    );
    for ((want_seq, want), (got_seq, got)) in recs.iter().zip(delivered) {
        assert_eq!(want_seq, got_seq, "capture order");
        assert_eq!(want, got, "seq {want_seq} byte-identical");
    }
    assert_eq!(rx.counters().records_delivered, recs.len() as u64);
}

#[test]
fn clean_link_delivers_everything_exactly_once() {
    let recs = records(80, 1);
    let mut link = FaultyLink::new(FaultSpec::clean(2), 1);
    let (delivered, up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 5_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    assert_eq!(up.counters().retries, 0, "a clean link needs no retries");
    assert_eq!(up.acked_seq(), 80);
}

#[test]
fn twenty_percent_loss_delivers_exactly_once_in_order() {
    let recs = records(80, 2);
    let mut link = FaultyLink::new(FaultSpec::lossy(2, 0.20), 2);
    let (delivered, up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 20_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    let lc = link.counters();
    assert!(lc.frames_dropped > 0, "the loss must actually fire");
    assert!(
        up.counters().retries > 0,
        "loss must be repaired by retries"
    );
    // Sender-side conservation: every link transmission is accounted for.
    assert_eq!(
        lc.frames_sent,
        up.counters().frames_sent + up.counters().retries + up.counters().half_open_probes
    );
}

#[test]
fn duplicate_heavy_link_is_deduped() {
    let recs = records(60, 3);
    let spec = FaultSpec {
        duplicate: 0.5,
        ack_duplicate: 0.5,
        ..FaultSpec::clean(2)
    };
    let mut link = FaultyLink::new(spec, 3);
    let (delivered, _up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 20_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    assert!(link.counters().frames_duplicated > 0);
    assert!(
        rx.counters().duplicate_fragments > 0 || rx.counters().duplicate_records > 0,
        "duplicates must reach the dedup path, not vanish"
    );
}

#[test]
fn reorder_heavy_link_releases_in_capture_order() {
    let recs = records(60, 4);
    let spec = FaultSpec {
        reorder: 0.8,
        jitter_ticks: 12,
        ..FaultSpec::clean(2)
    };
    let mut link = FaultyLink::new(spec, 4);
    let (delivered, _up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 20_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    assert!(link.counters().frames_reordered > 0);
}

#[test]
fn corrupted_frames_are_rejected_and_retried() {
    let recs = records(60, 5);
    let spec = FaultSpec {
        corrupt: 0.3,
        ..FaultSpec::clean(2)
    };
    let mut link = FaultyLink::new(spec, 5);
    let (delivered, _up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 20_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    assert!(link.counters().frames_corrupted > 0);
    assert_eq!(
        rx.counters().frames_rejected,
        link.counters().frames_corrupted,
        "every corrupted frame is caught by the CRC, none ingested"
    );
}

#[test]
fn ack_path_faults_cause_no_duplicates_or_loss() {
    // Frames arrive fine; the ACKs get mangled. The sender retransmits
    // records the receiver already has — the ledger must absorb all of
    // it without double-release.
    let recs = records(60, 6);
    let spec = FaultSpec {
        ack_drop: 0.4,
        ack_corrupt: 0.2,
        ack_duplicate: 0.3,
        ..FaultSpec::clean(2)
    };
    let mut link = FaultyLink::new(spec, 6);
    let (delivered, up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 20_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    let lc = link.counters();
    assert!(lc.acks_dropped > 0 && lc.acks_corrupted > 0);
    // A corrupted ACK may also be duplicated, so the sender can reject
    // more copies than the link counted corruption events.
    assert!(up.counters().acks_rejected >= lc.acks_corrupted);
    assert!(
        rx.counters().duplicate_fragments > 0 || rx.counters().duplicate_records > 0,
        "lost ACKs must force spurious retransmits that the receiver dedups"
    );
}

#[test]
fn combined_fault_mix_survives() {
    let recs = records(80, 7);
    let spec = FaultSpec {
        drop: 0.10,
        duplicate: 0.10,
        corrupt: 0.05,
        reorder: 0.30,
        jitter_ticks: 8,
        ack_drop: 0.15,
        ack_corrupt: 0.05,
        ack_duplicate: 0.10,
        ..FaultSpec::clean(2)
    };
    let mut link = FaultyLink::new(spec, 7);
    let (delivered, _up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 40_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
}

#[test]
fn phase_schedule_heavy_loss_then_clean_completes() {
    // 40% loss for the first 200 ticks, then a clean link: everything
    // still in flight at the phase boundary finishes promptly.
    let recs = records(80, 8);
    let schedule = vec![
        Phase {
            until_tick: 200,
            spec: FaultSpec::lossy(2, 0.40),
        },
        Phase {
            until_tick: u64::MAX,
            spec: FaultSpec::clean(2),
        },
    ];
    let mut link = FaultyLink::with_schedule(schedule, 8);
    let (delivered, up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 20_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    assert!(link.counters().frames_dropped > 0);
    assert!(up.counters().retries > 0);
}

#[test]
fn stall_then_recovery_trips_breaker_and_redelivers_everything() {
    // A total blackout mid-stream: frames time out, the breaker trips,
    // cancelled records are handed back, and `run_session` re-offers
    // them once the link heals — nothing is lost, nothing doubles.
    let recs = records(40, 9);
    let schedule = vec![
        Phase {
            until_tick: 20,
            spec: FaultSpec::clean(2),
        },
        Phase {
            until_tick: 300,
            spec: FaultSpec::stalled(),
        },
        Phase {
            until_tick: u64::MAX,
            spec: FaultSpec::clean(2),
        },
    ];
    let mut link = FaultyLink::with_schedule(schedule, 9);
    let cfg = UplinkConfig {
        // Small frames + one frame per tick: the stream is still mid-air
        // when the blackout starts, so the stall has frames to kill.
        frame: FrameConfig {
            payload_cap: 256,
            fragment_overhead: 12,
        },
        frames_per_tick: 1,
        deadline_ticks: 12,
        max_retries: 2,
        backoff: BackoffConfig {
            base_ticks: 2,
            max_ticks: 8,
            jitter: 0.25,
        },
        breaker: BreakerConfig {
            trip_after: 2,
            open_ticks: 40,
            probes_to_close: 2,
        },
        ..UplinkConfig::default()
    };
    let mut up = Uplink::new(cfg);
    let mut rx = Receiver::new();
    let report = run_session(&recs, &mut up, &mut rx, &mut link, 20_000);
    assert!(report.completed, "recovery must finish: {report:?}");
    assert_eq!(report.delivered_records, 40);
    assert_eq!(report.final_acked_seq, 40);
    assert!(
        report.uplink.trips >= 1,
        "the blackout must trip the breaker"
    );
    assert!(
        report.uplink.half_open_probes >= 1,
        "recovery goes through half-open probing"
    );
    assert!(
        report.uplink.cancelled_on_trip > 0,
        "tripping hands in-flight records back for replay"
    );
    assert_eq!(report.receiver.records_delivered, 40);
}

#[test]
fn seeded_fault_sweep_is_exactly_once_everywhere() {
    // Twenty random fault mixes, all derived deterministically from the
    // sweep seed: the exactly-once contract holds for every one.
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let spec = FaultSpec {
            drop: rng.gen::<f64>() * 0.25,
            duplicate: rng.gen::<f64>() * 0.25,
            corrupt: rng.gen::<f64>() * 0.10,
            reorder: rng.gen::<f64>() * 0.50,
            jitter_ticks: rng.gen_range(1..=10),
            ack_drop: rng.gen::<f64>() * 0.30,
            ack_corrupt: rng.gen::<f64>() * 0.10,
            ack_duplicate: rng.gen::<f64>() * 0.25,
            ..FaultSpec::clean(rng.gen_range(1..=4))
        };
        let recs = records(50, seed);
        let mut link = FaultyLink::new(spec, seed);
        let (delivered, _up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 60_000);
        assert!(completed, "seed {seed} did not drain: {spec:?}");
        assert_exactly_once(&recs, &delivered, &rx);
    }
}

#[test]
fn long_soak_smoke_under_sustained_faults() {
    // A longer stream under a sustained moderate fault mix — the seeded
    // soak CI runs in release mode.
    let recs = records(400, 10);
    let spec = FaultSpec {
        drop: 0.10,
        duplicate: 0.10,
        reorder: 0.20,
        jitter_ticks: 6,
        ack_drop: 0.20,
        ..FaultSpec::clean(1)
    };
    let mut link = FaultyLink::new(spec, 10);
    let (delivered, up, rx, completed) = drive(&recs, chaos_cfg(), &mut link, 200_000);
    assert!(completed);
    assert_exactly_once(&recs, &delivered, &rx);
    assert_eq!(
        link.counters().frames_sent,
        up.counters().frames_sent + up.counters().retries + up.counters().half_open_probes
    );
}

#[test]
fn blackout_trips_to_spool_only_and_recovers_via_reconnect() {
    // The full store-and-forward loop with a real on-disk spool:
    //
    //   capture ──▶ spool (always, durability)
    //          └──▶ uplink ──▶ FaultyLink ──▶ receiver/ledger  (live)
    //
    // A blackout trips the breaker; live sends stop (spool-only mode)
    // while capture continues. When the link heals the breaker probes
    // half-open, closes, and the backlog re-drains through the standard
    // `run_reconnect` replay into the SAME ledger — every captured
    // record lands exactly once, with ACK-gated GC along the way.
    let dir = tmpdir("blackout");
    let mut spool_cfg = SpoolConfig::new(&dir);
    spool_cfg.sync_interval = Duration::from_secs(3600);
    spool_cfg.segment_max_bytes = 4096;
    let mut spool = Spool::open(spool_cfg).expect("spool");

    let schedule = vec![
        Phase {
            until_tick: 30,
            spec: FaultSpec::clean(2),
        },
        Phase {
            until_tick: 250,
            spec: FaultSpec::stalled(),
        },
        Phase {
            until_tick: u64::MAX,
            spec: FaultSpec::clean(2),
        },
    ];
    let mut link = FaultyLink::with_schedule(schedule, 11);
    let cfg = UplinkConfig {
        window: 4,
        deadline_ticks: 12,
        max_retries: 1,
        backoff: BackoffConfig {
            base_ticks: 2,
            max_ticks: 8,
            jitter: 0.25,
        },
        breaker: BreakerConfig {
            trip_after: 2,
            open_ticks: 40,
            probes_to_close: 2,
        },
        ..UplinkConfig::default()
    };
    let mut up = Uplink::new(cfg);
    let mut rx = Receiver::new();

    let total = 40u64;
    let payload =
        |seq: u64| -> Vec<u8> { (0..160u8).map(|i| i.wrapping_mul(seq as u8 | 1)).collect() };

    let mut captured = 0u64;
    let mut tripped = false;
    let mut rewound_seqs: Vec<u64> = Vec::new();
    let mut sender_cursor_at_trip = 0u64;
    let mut recovered = false;
    for now in 0..4_000u64 {
        for frame in link.poll_frames(now) {
            if let Some(ack) = rx.on_frame(&frame) {
                link.send_ack(now, ack);
            }
        }
        let _ = rx.take_ordered();
        up.tick(now, &mut link);
        let rewound = up.take_rewind();
        if !rewound.is_empty() {
            // Breaker tripped: the uplink hands back every cancelled
            // record. They are all already durable in the spool, so the
            // device simply switches to spool-only mode.
            if !tripped {
                sender_cursor_at_trip = up.acked_seq();
            }
            tripped = true;
            rewound_seqs.extend(rewound);
        }
        // Capture continues at one record per 3 ticks, blackout or not.
        if now % 3 == 0 && captured < total {
            captured += 1;
            let seq = spool.append(now, &payload(captured)).expect("append");
            assert_eq!(seq, captured);
            if !tripped && up.can_accept(now) {
                assert!(up.offer(now, seq, payload(captured)));
            }
        }
        // ACK-gated GC: the spool trims as the cumulative cursor moves.
        spool.ack(up.acked_seq()).expect("ack");
        if tripped
            && now > 260
            && captured == total
            && matches!(up.breaker_state(now), BreakerState::Closed)
        {
            recovered = true;
            break;
        }
    }
    assert!(tripped, "the blackout must trip the breaker");
    assert!(recovered, "the breaker must close again on a healed link");
    assert!(!rewound_seqs.is_empty());
    assert!(up.counters().trips >= 1);
    assert!(up.counters().half_open_probes >= 2);
    assert!(up.counters().cancelled_on_trip > 0);
    let live_cursor = rx.acked_seq();
    assert!(
        live_cursor < total,
        "the blackout must leave a backlog to re-drain"
    );
    // Cancellation only ever touches records the sender had not seen
    // ACKed when the breaker tripped. (The receiver's cursor can later
    // pass some of them: frames parked inside the stalled link flush
    // out when the stall ends — the ledger dedups those on replay.)
    assert!(
        rewound_seqs.iter().all(|&s| s > sender_cursor_at_trip),
        "nothing below the sender's cumulative cursor is ever cancelled"
    );

    // Recovery: re-drain the spool backlog through the standard
    // reconnect replay, into the same ledger the live path fed.
    spool.sync().expect("sync");
    let registry = CodecRegistry::new(4);
    let replay_cfg = ReplayConfig {
        records_per_tick: 8,
        ..ReplayConfig::default()
    };
    let report = run_reconnect(&mut spool, rx.ledger_mut(), &registry, &replay_cfg, |_| {})
        .expect("reconnect");
    assert_eq!(report.final_acked_seq, total);
    assert_eq!(report.lost_records, 0, "zero un-ACKed loss");
    assert_eq!(
        report.ingested_records,
        total - live_cursor - report.duplicate_records,
        "replay fills exactly the gap the blackout left"
    );
    assert_eq!(rx.ledger_mut().accepted(), total, "exactly-once overall");
    assert_eq!(rx.ledger_mut().lost(), 0);
    drop(spool);
    std::fs::remove_dir_all(&dir).ok();
}
