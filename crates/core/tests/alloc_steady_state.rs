//! Proof of the zero-allocation segment pipeline: a counting global
//! allocator wraps the system allocator, and the ingest → compress pipeline
//! is run twice with different segment counts but otherwise identical
//! configurations. All per-run costs (channels, buffer pool, selector,
//! scratch warm-up, thread spawn) are identical between the runs, so any
//! difference in allocation count is attributable to the extra segments —
//! and must be zero once the arenas are warm.

use adaedge_core::engine::{run_pipeline, EngineConfig};
use adaedge_core::selector::SelectorConfig;
use adaedge_datasets::{CycleSource, SineStream};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (alloc, alloc_zeroed, realloc) since process
/// start; frees are not counted — capacity reuse, not peak memory, is what
/// the pipeline claims.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Run the pipeline on `n_segments` and return how many allocations the
/// whole run performed (setup included).
fn allocations_for(n_segments: usize) -> u64 {
    // Deterministic input and selection: a pre-generated segment pool and a
    // greedy (ε = 0) selector with optimistic init, so both runs make the
    // same arm choices and warm the same arenas in the same order.
    let mut inner = SineStream::new(1000, 0.1, 4, 7);
    let mut source = CycleSource::pregenerate(&mut inner, 8);
    let config = EngineConfig {
        n_compression_threads: 1,
        selector: SelectorConfig {
            epsilon: 0.0,
            seed: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = run_pipeline(&mut source, n_segments, &config).expect("pipeline");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(report.segments as usize, n_segments);
    assert!(report.bytes_out > 0);
    after - before
}

#[test]
fn steady_state_ingest_allocates_nothing_per_segment() {
    // One throwaway run absorbs process-wide one-time costs (lazy statics,
    // thread-local init, futex setup).
    let _ = allocations_for(64);
    let short = allocations_for(64);
    let long = allocations_for(256);
    assert_eq!(
        long,
        short,
        "192 extra segments cost {} allocations (64 segs: {short}, 256 segs: {long})",
        long as i64 - short as i64
    );
}
