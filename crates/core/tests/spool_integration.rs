//! Store-and-forward integration: the offline engine spools compressed
//! egress through a long disconnect, then replays it through the frame
//! packer with ACK-gated GC (ISSUE 8's 48h-disconnect simulation smoke).
//!
//! Logical time is compressed: one ingested segment per "minute", 48h =
//! 2880 segments, egress drained to the spool every 10 minutes. The
//! reconnect protocol is then driven through its failure modes in order:
//! an interrupted first replay whose ACKs never reach the spool, a spool
//! node crash and recovery at full backlog depth, the real rate-limited
//! reconnect with incremental GC, and finally a replay from fully stale
//! ACK state that the ingest ledger must dedup to zero.

use adaedge_codecs::{CodecId, CodecRegistry, CompressedBlock};
use adaedge_core::spooling::{
    decode_block, run_reconnect, spool_offline_egress, IngestLedger, ReplayConfig, SpoolSink,
};
use adaedge_core::{AggKind, OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge_storage::spool::{ReplayItem, Spool, SpoolConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "adaedge-spool-int-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn spool_cfg(dir: &Path) -> SpoolConfig {
    let mut cfg = SpoolConfig::new(dir);
    // Durability is driven explicitly (each drain syncs); the timer
    // would add nondeterminism here.
    cfg.sync_interval = Duration::from_secs(3600);
    cfg.segment_max_bytes = 64 * 1024;
    cfg
}

const MINUTES: u64 = 48 * 60; // 2880 segments, one per logical minute
const DRAIN_EVERY: u64 = 10;

#[test]
fn forty_eight_hour_disconnect_spools_and_replays_exactly_once() {
    let dir = tmpdir("48h");
    let cfg = spool_cfg(&dir);

    // --- Disconnect: 48h of ingest, egress drained into the spool. ---
    let mut engine_cfg = OfflineConfig::new(4 << 20, OptimizationTarget::agg(AggKind::Sum));
    engine_cfg.precision = 4;
    let mut edge = OfflineAdaEdge::new(engine_cfg).expect("engine");
    let mut stream = CbfStream::new(CbfConfig::default(), 256);
    let mut sink = SpoolSink::new(Spool::open(cfg.clone()).expect("spool"));

    for minute in 0..MINUTES {
        edge.ingest(&stream.next_segment()).expect("ingest");
        if (minute + 1) % DRAIN_EVERY == 0 {
            let (blocks, _) =
                spool_offline_egress(&mut edge, &mut sink, usize::MAX, minute).expect("drain");
            assert_eq!(blocks as u64, DRAIN_EVERY, "drain ships the whole backlog");
        }
    }
    assert_eq!(edge.store().len(), 0, "every segment left the store");
    assert_eq!(sink.spooled_blocks(), MINUTES);

    let depth = sink.spool().stats();
    assert_eq!(depth.records, MINUTES);
    assert!(depth.closed_segments > 10, "48h must span many segments");
    assert!(
        depth.newest_ts - depth.oldest_ts >= MINUTES - DRAIN_EVERY - 1,
        "spool age gauge covers the disconnect window"
    );
    assert_eq!(depth.durable_seq, MINUTES, "drains sync at ship boundaries");

    // --- Reconnect attempt 1: link dies mid-replay, ACKs are lost. ---
    // The ingest side receives and ingests 1500 records, but the spool
    // never hears a single ACK (no GC happens).
    let mut spool = sink.into_spool();
    let mut ledger = IngestLedger::new();
    let mut delivered = 0u64;
    for item in spool.replayer(0).expect("replayer") {
        if delivered == 1500 {
            break; // link drop
        }
        match item {
            ReplayItem::Record(rec) => {
                assert_eq!(rec.seq, delivered + 1, "capture order");
                assert!(ledger.accept(rec.seq));
                delivered += 1;
            }
            ReplayItem::Gap { .. } => panic!("healthy spool has no gaps"),
        }
    }
    assert_eq!(ledger.acked_seq(), 1500);
    assert_eq!(spool.stats().records, MINUTES, "no ACKs, no GC");

    // --- Spool node power-cycles with the full backlog on disk. ---
    drop(spool);
    let mut spool = Spool::open(cfg.clone()).expect("recovery");
    assert_eq!(spool.stats().records, MINUTES, "synced backlog survives");

    // --- Reconnect attempt 2: rate-limited replay with incremental GC.
    // The ledger (ingest side) is the resume authority: replay starts at
    // its cursor, so the 1500 already-ingested records are not resent.
    let registry = CodecRegistry::new(4);
    let replay_cfg = ReplayConfig {
        records_per_tick: 64,
        verify_decode: true,
        ..ReplayConfig::default()
    };
    let mut frames = Vec::new();
    let report = run_reconnect(&mut spool, &mut ledger, &registry, &replay_cfg, |f| {
        frames.push(f)
    })
    .expect("reconnect");

    assert_eq!(report.replayed_records, MINUTES - 1500);
    assert_eq!(report.ingested_records, MINUTES - 1500);
    assert_eq!(report.duplicate_records, 0);
    assert_eq!(report.lost_records, 0);
    assert_eq!(report.decode_failures, 0, "every block decodes end-to-end");
    assert_eq!(report.final_acked_seq, MINUTES);
    assert!(
        report.ticks >= (MINUTES - 1500) / 64,
        "rate limit respected"
    );
    assert!(report.frames_emitted > 0);
    assert_eq!(report.frames_emitted as usize, frames.len());
    assert!(report.max_frame_used <= replay_cfg.frame.payload_cap);
    assert!(
        report.gc_segments > 0,
        "GC runs during the replay, not after"
    );
    assert_eq!(
        report.spool.closed_segments, 0,
        "every fully-ACKed closed segment was collected"
    );
    assert!(
        report.spool.records < MINUTES / 10,
        "spool drained down to the open-segment tail"
    );

    // Conservation: every spooled record was ingested exactly once
    // across both attempts.
    assert_eq!(ledger.accepted(), MINUTES);
    assert_eq!(ledger.duplicates(), 0);

    // --- Worst case: total ACK-state loss on the spool side. A replay
    // from seq 0 resends whatever still exists; the ledger dedups all of
    // it — at-least-once delivery, exactly-once ingest.
    let accepted_before = ledger.accepted();
    let mut resent = 0u64;
    for item in spool.replayer(0).expect("replayer") {
        match item {
            ReplayItem::Record(rec) => {
                assert!(!ledger.accept(rec.seq), "must dedup, seq {}", rec.seq);
                resent += 1;
            }
            ReplayItem::Gap { from_seq, to_seq } => {
                // GC'd ranges report as gaps; they are all below the ACK
                // cursor, so the ledger ignores them.
                ledger.mark_lost(from_seq, to_seq);
            }
        }
    }
    assert!(resent > 0, "the open-segment tail is still replayable");
    assert_eq!(ledger.accepted(), accepted_before, "nothing re-ingested");
    assert_eq!(ledger.lost(), 0, "GC'd ranges are not data loss");
    drop(spool);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_pressure_surfaces_bounded_disk_loss_in_replay_report() {
    let dir = tmpdir("retention");
    let mut cfg = spool_cfg(&dir);
    cfg.segment_max_bytes = 2048;
    cfg.max_spool_bytes = Some(16 * 1024);
    let mut sink = SpoolSink::new(Spool::open(cfg).expect("spool"));

    // A disconnect longer than the disk can hold: 1000 blocks against a
    // 16 KiB cap forces drop-oldest on closed segments.
    let n = 1000u64;
    for i in 0..n {
        let block = CompressedBlock {
            codec: CodecId::Raw,
            n_points: 12,
            payload: (0..96u8).map(|b| b.wrapping_mul(i as u8 | 1)).collect(),
        };
        sink.put_block(i, &block).expect("spool block");
    }
    sink.sync().expect("sync");
    let depth = sink.spool().stats();
    assert!(depth.bytes <= 16 * 1024, "byte cap enforced");
    assert!(depth.dropped_segments > 0);
    assert_eq!(
        depth.dropped_unacked_records, depth.dropped_records,
        "nothing was ACKed, so every drop is surfaced as un-ACKed loss"
    );

    // Reconnect: the dropped prefix comes back as `lost`, the survivors
    // as ingests, and the ledger's cursor still reaches the end.
    let mut spool = sink.into_spool();
    let mut ledger = IngestLedger::new();
    let registry = CodecRegistry::new(4);
    let replay_cfg = ReplayConfig {
        records_per_tick: 32,
        verify_decode: true,
        ..ReplayConfig::default()
    };
    let report =
        run_reconnect(&mut spool, &mut ledger, &registry, &replay_cfg, |_| {}).expect("reconnect");

    assert!(report.lost_records > 0, "retention loss must be visible");
    assert_eq!(report.lost_records, depth.dropped_records);
    assert_eq!(
        report.ingested_records + report.lost_records,
        n,
        "conservation: every record is either ingested or accounted lost"
    );
    assert_eq!(report.duplicate_records, 0);
    assert_eq!(report.decode_failures, 0);
    assert_eq!(
        report.final_acked_seq, n,
        "the cursor advances past the loss"
    );
    drop(spool);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spooled_payloads_roundtrip_through_block_codec() {
    // decode(encode(block)) is identity for a real engine-produced block.
    let mut engine_cfg = OfflineConfig::new(1 << 20, OptimizationTarget::agg(AggKind::Sum));
    engine_cfg.precision = 4;
    let mut edge = OfflineAdaEdge::new(engine_cfg).expect("engine");
    let mut stream = CbfStream::new(CbfConfig::default(), 256);
    for _ in 0..8 {
        edge.ingest(&stream.next_segment()).expect("ingest");
    }
    let shipped = edge.drain(usize::MAX).expect("drain");
    assert!(!shipped.is_empty());
    for (_, block) in &shipped {
        let bytes = adaedge_core::spooling::encode_block(block);
        assert_eq!(decode_block(&bytes).as_ref(), Some(block));
    }
}
