//! System resource constraints (§IV-A) and the derived target compression
//! ratio for online mode (§IV-C1).

use serde::{Deserialize, Serialize};

/// Bits per uncompressed double data point.
pub const BITS_PER_POINT: f64 = 64.0;

/// Hard resource constraints an AdaEdge deployment runs under.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Constraints {
    /// Signal ingestion rate in data points per second (hard: no
    /// back-pressure on sensors).
    pub ingest_points_per_sec: f64,
    /// Network egress bandwidth in bits per second (`None` = offline).
    pub bandwidth_bits_per_sec: Option<f64>,
    /// Local storage budget in bytes (`None` = unbounded).
    pub storage_budget_bytes: Option<usize>,
    /// Points per segment (fixed-size segmentation, §III-B).
    pub segment_points: usize,
}

impl Constraints {
    /// Online-mode constraints: an egress link and an ingestion rate.
    pub fn online(
        ingest_points_per_sec: f64,
        bandwidth_bits_per_sec: f64,
        segment_points: usize,
    ) -> Self {
        Self {
            ingest_points_per_sec,
            bandwidth_bits_per_sec: Some(bandwidth_bits_per_sec),
            storage_budget_bytes: None,
            segment_points,
        }
    }

    /// Offline-mode constraints: a storage budget, no egress.
    pub fn offline(
        ingest_points_per_sec: f64,
        storage_budget_bytes: usize,
        segment_points: usize,
    ) -> Self {
        Self {
            ingest_points_per_sec,
            bandwidth_bits_per_sec: None,
            storage_budget_bytes: Some(storage_budget_bytes),
            segment_points,
        }
    }

    /// The provisional target compression ratio `R = B / (64 × I)`
    /// (§IV-C1), ignoring packet-header overhead as the paper does.
    /// `None` when there is no bandwidth constraint; capped at 1.0 when
    /// the link is faster than the raw stream.
    pub fn target_ratio(&self) -> Option<f64> {
        self.bandwidth_bits_per_sec.map(|b| {
            let raw_bits = BITS_PER_POINT * self.ingest_points_per_sec;
            (b / raw_bits).min(1.0)
        })
    }

    /// Raw ingest volume in bytes per second.
    pub fn ingest_bytes_per_sec(&self) -> f64 {
        self.ingest_points_per_sec * 8.0
    }
}

/// Named network profiles used in Figure 3's capacity lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkProfile {
    /// 2G-class link (~0.1 Mbps).
    TwoG,
    /// 3G-class link (~2 Mbps).
    ThreeG,
    /// 4G-class link (~100 Mbps, LTE-A).
    FourG,
    /// 5G-class link (~500 Mbps).
    FiveG,
    /// Local WiFi (~1 Gbps).
    Wifi,
}

impl NetworkProfile {
    /// Nominal bandwidth in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        match self {
            NetworkProfile::TwoG => 0.1e6,
            NetworkProfile::ThreeG => 2.0e6,
            NetworkProfile::FourG => 100.0e6,
            NetworkProfile::FiveG => 500.0e6,
            NetworkProfile::Wifi => 1.0e9,
        }
    }

    /// Bandwidth in megabytes per second (Figure 3's unit).
    pub fn mb_per_sec(self) -> f64 {
        self.bits_per_sec() / 8.0 / 1e6
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkProfile::TwoG => "2G",
            NetworkProfile::ThreeG => "3G",
            NetworkProfile::FourG => "4G",
            NetworkProfile::FiveG => "5G",
            NetworkProfile::Wifi => "WiFi",
        }
    }

    /// All profiles, ascending bandwidth.
    pub const ALL: [NetworkProfile; 5] = [
        NetworkProfile::TwoG,
        NetworkProfile::ThreeG,
        NetworkProfile::FourG,
        NetworkProfile::FiveG,
        NetworkProfile::Wifi,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_ratio_derivation() {
        // 1 M points/s of doubles = 64 Mbit/s raw; a 6.4 Mbit/s link
        // demands a 0.1 ratio.
        let c = Constraints::online(1_000_000.0, 6.4e6, 1000);
        assert!((c.target_ratio().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn generous_link_caps_at_one() {
        let c = Constraints::online(1000.0, 1e9, 1000);
        assert_eq!(c.target_ratio(), Some(1.0));
    }

    #[test]
    fn offline_has_no_target_ratio() {
        let c = Constraints::offline(1000.0, 10 << 20, 1000);
        assert_eq!(c.target_ratio(), None);
        assert_eq!(c.storage_budget_bytes, Some(10 << 20));
    }

    #[test]
    fn network_profiles_ascend() {
        let mut prev = 0.0;
        for p in NetworkProfile::ALL {
            assert!(p.bits_per_sec() > prev);
            prev = p.bits_per_sec();
        }
        assert!((NetworkProfile::FourG.mb_per_sec() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn paper_example_4ghz_signal() {
        // Figure 3: 4 M points/s double signal = 32 MB/s raw. Under 3G
        // (0.25 MB/s) even strong lossless (~0.3) cannot fit; the required
        // ratio is ~0.0078.
        let c = Constraints::online(4_000_000.0, NetworkProfile::ThreeG.bits_per_sec(), 1000);
        let r = c.target_ratio().unwrap();
        assert!(r < 0.01, "3G ratio {r}");
        // Under 4G the required ratio is within reach of the stronger
        // lossless encodings (Sprintz/BUFF achieve ≈0.27 on CBF).
        let c4 = Constraints::online(4_000_000.0, NetworkProfile::FourG.bits_per_sec(), 1000);
        let r4 = c4.target_ratio().unwrap();
        assert!(r4 > 0.25 && r4 < 0.5, "4G ratio {r4}");
    }
}
