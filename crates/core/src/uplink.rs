//! Fault-tolerant uplink transport between the frame packer / spool
//! replayer and the (simulated) network (DESIGN.md §7).
//!
//! The repo's earlier layers assume the uplink either works or is fully
//! down (the spool covers "down"). Real edge links are *partially*
//! broken — lossy, slow, reordering — and both CStream and the semantic-
//! compression line treat the link as a first-class, varying resource
//! the compression policy must react to. This module closes that loop:
//!
//! * [`Uplink`] — the sender: a bounded in-flight ACK window over the
//!   [`FramePacker`], per-frame deadlines, bounded retries under
//!   exponential [`Backoff`] with deterministic seeded jitter, and a
//!   [`CircuitBreaker`] (closed → open → half-open with probe frames)
//!   that trips to spool-only store-and-forward mode.
//! * [`Receiver`] — the ingest side: CRC-checked frames, fragment
//!   reassembly with duplicate/overlap dedup, an [`IngestLedger`]
//!   cursor for exactly-once admission, and capture-order release.
//! * [`FaultyLink`] — a deterministic test transport: seeded drop /
//!   duplicate / reorder / delay / corrupt / stall of frames *and*
//!   ACKs, with scriptable phase schedules ("40% loss for 300 ticks,
//!   then clean").
//! * [`LinkPressure`] — the graceful-degradation hook: when the retry
//!   backlog / spool depth crosses [`PressureWatermarks`], a shared
//!   [`PressureGauge`] biases the selectors toward higher-ratio arms
//!   (and back), so compression choice visibly adapts to link health.
//!
//! Everything runs on **virtual time** (`u64` ticks) and caller-seeded
//! RNGs: no wall clock anywhere, every fault schedule and every retry
//! delay reproduces from its seed alone.

use crate::frame::{FrameConfig, FrameItem, FramePacker, Priority, StreamId};
use crate::spooling::IngestLedger;
use adaedge_codecs::crc32c::{crc32c, crc32c_append};
use adaedge_codecs::faultkit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

// --- seeded-jitter exponential backoff -------------------------------------

/// Exponential-backoff parameters, in virtual-time ticks.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base_ticks: u64,
    /// Hard ceiling on any single delay.
    pub max_ticks: u64,
    /// Jitter fraction `j`: each delay is scaled by a seeded uniform
    /// factor in `[1−j, 1+j)`. Zero disables jitter entirely.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            base_ticks: 4,
            max_ticks: 64,
            jitter: 0.25,
        }
    }
}

/// Deterministic seeded-jitter exponential backoff: attempt `k` waits
/// `min(base · 2^k, max)` ticks, scaled by a jitter factor drawn from
/// this instance's own [`SmallRng`]. Two instances with the same config
/// and seed produce the exact same delay sequence — the property the
/// unit tests pin per seed.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    rng: SmallRng,
}

impl Backoff {
    /// Create a backoff schedule from its config and RNG seed.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Self {
        assert!(cfg.base_ticks > 0, "base_ticks must be > 0");
        assert!(cfg.max_ticks >= cfg.base_ticks, "max below base");
        assert!((0.0..1.0).contains(&cfg.jitter), "jitter in [0,1)");
        Self {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based). Always ≥ 1
    /// tick and ≤ `max_ticks · (1+j)` rounded.
    pub fn delay(&mut self, attempt: u32) -> u64 {
        let raw = self
            .cfg
            .base_ticks
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.cfg.max_ticks);
        if self.cfg.jitter == 0.0 {
            return raw.max(1);
        }
        let factor = 1.0 + self.cfg.jitter * (2.0 * self.rng.gen::<f64>() - 1.0);
        ((raw as f64 * factor).round() as u64).max(1)
    }
}

// --- link pressure: watermarks + shared gauge -------------------------------

/// How hard the link is pushing back, coarsened to three levels the
/// selectors can act on. Ordered: `Nominal < Elevated < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LinkPressure {
    /// Backlog below every watermark: select normally.
    Nominal = 0,
    /// Backlog above the elevated watermark: damp exploration.
    Elevated = 1,
    /// Backlog above the critical watermark: pure exploitation of the
    /// best-compressing arm.
    Critical = 2,
}

impl LinkPressure {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => LinkPressure::Nominal,
            1 => LinkPressure::Elevated,
            _ => LinkPressure::Critical,
        }
    }
}

/// Backlog watermarks with hysteresis: each level sets at its `*_set`
/// depth and only clears back below at `*_clear` (< `*_set`), so a
/// backlog oscillating around one threshold cannot flap the gauge.
#[derive(Debug, Clone, Copy)]
pub struct PressureWatermarks {
    /// Depth at which pressure rises to [`LinkPressure::Elevated`].
    pub elevated_set: usize,
    /// Depth at or below which `Elevated` clears back to `Nominal`.
    pub elevated_clear: usize,
    /// Depth at which pressure rises to [`LinkPressure::Critical`].
    pub critical_set: usize,
    /// Depth at or below which `Critical` clears back to `Elevated`.
    pub critical_clear: usize,
}

impl Default for PressureWatermarks {
    fn default() -> Self {
        Self {
            elevated_set: 12,
            elevated_clear: 6,
            critical_set: 32,
            critical_clear: 16,
        }
    }
}

impl PressureWatermarks {
    /// The level a backlog of `depth` records maps to, given the
    /// previous level (hysteresis needs history).
    pub fn classify(&self, prev: LinkPressure, depth: usize) -> LinkPressure {
        debug_assert!(self.elevated_clear < self.elevated_set);
        debug_assert!(self.critical_clear < self.critical_set);
        let mut level = prev;
        if depth >= self.critical_set {
            level = LinkPressure::Critical;
        } else if depth >= self.elevated_set && level < LinkPressure::Elevated {
            level = LinkPressure::Elevated;
        }
        if level == LinkPressure::Critical && depth <= self.critical_clear {
            level = LinkPressure::Elevated;
        }
        if level == LinkPressure::Elevated && depth <= self.elevated_clear {
            level = LinkPressure::Nominal;
        }
        level
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    level: AtomicU8,
    transitions: AtomicU64,
}

/// A cheaply clonable shared pressure gauge: the uplink writes it once
/// per tick, fleet workers read it once per batch. Transitions are
/// counted for the report rollups.
#[derive(Debug, Clone, Default)]
pub struct PressureGauge {
    inner: Arc<GaugeInner>,
}

impl PressureGauge {
    /// A fresh gauge at [`LinkPressure::Nominal`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current pressure level.
    pub fn level(&self) -> LinkPressure {
        LinkPressure::from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Set the level; a change counts as one degradation transition.
    pub fn set(&self, level: LinkPressure) {
        let prev = self.inner.level.swap(level as u8, Ordering::Relaxed);
        if prev != level as u8 {
            self.inner.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Level changes observed since creation (both directions).
    pub fn transitions(&self) -> u64 {
        self.inner.transitions.load(Ordering::Relaxed)
    }
}

// --- wire types -------------------------------------------------------------

/// One fragment as it crosses the link: the packer's descriptor plus the
/// actual payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFragment {
    /// Capture sequence of the record this fragment belongs to.
    pub seq: u64,
    /// Byte offset within the record's payload.
    pub offset: usize,
    /// Whether this fragment completes the record.
    pub last: bool,
    /// The fragment's payload bytes.
    pub bytes: Vec<u8>,
}

/// Data frame or half-open probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Carries record fragments.
    Data,
    /// Empty liveness probe sent while the breaker is half-open.
    Probe,
}

/// A frame on the wire: id, kind, fragments, and a CRC-32C over all of
/// it so the receiver rejects corruption instead of ingesting garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UplinkFrame {
    /// Sender-assigned id; retransmissions reuse it so duplicate ACKs
    /// are harmless.
    pub frame_id: u64,
    /// Data or probe.
    pub kind: FrameKind,
    /// The fragments aboard (empty for probes).
    pub fragments: Vec<WireFragment>,
    /// CRC-32C over kind, id and every fragment's header + bytes.
    pub crc: u32,
}

impl UplinkFrame {
    fn digest(kind: FrameKind, frame_id: u64, fragments: &[WireFragment]) -> u32 {
        let mut crc = crc32c(&[kind as u8]);
        crc = crc32c_append(crc, &frame_id.to_le_bytes());
        for f in fragments {
            crc = crc32c_append(crc, &f.seq.to_le_bytes());
            crc = crc32c_append(crc, &(f.offset as u64).to_le_bytes());
            crc = crc32c_append(crc, &[f.last as u8]);
            crc = crc32c_append(crc, &f.bytes);
        }
        crc
    }

    /// Build a sealed frame (CRC computed over the final contents).
    pub fn new(frame_id: u64, kind: FrameKind, fragments: Vec<WireFragment>) -> Self {
        let crc = Self::digest(kind, frame_id, &fragments);
        Self {
            frame_id,
            kind,
            fragments,
            crc,
        }
    }

    /// Whether the frame survived the link intact.
    pub fn verify(&self) -> bool {
        Self::digest(self.kind, self.frame_id, &self.fragments) == self.crc
    }

    /// Payload bytes aboard (fragment bytes only).
    pub fn payload_len(&self) -> usize {
        self.fragments.iter().map(|f| f.bytes.len()).sum()
    }
}

/// An acknowledgement: the frame it answers plus the receiver's
/// cumulative contiguous ingest cursor, CRC-protected like frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The acknowledged frame.
    pub frame_id: u64,
    /// Highest contiguous sequence the receiver has durably ingested.
    pub cumulative_seq: u64,
    /// CRC-32C over the two fields.
    pub crc: u32,
}

impl Ack {
    fn digest(frame_id: u64, cumulative_seq: u64) -> u32 {
        crc32c_append(
            crc32c(&frame_id.to_le_bytes()),
            &cumulative_seq.to_le_bytes(),
        )
    }

    /// Build a sealed ACK.
    pub fn new(frame_id: u64, cumulative_seq: u64) -> Self {
        Self {
            frame_id,
            cumulative_seq,
            crc: Self::digest(frame_id, cumulative_seq),
        }
    }

    /// Whether the ACK survived the link intact.
    pub fn verify(&self) -> bool {
        Self::digest(self.frame_id, self.cumulative_seq) == self.crc
    }
}

// --- the transport abstraction ---------------------------------------------

/// A bidirectional frame/ACK channel driven in virtual time. Sends are
/// enqueued at tick `now`; polls surface whatever the link has decided
/// is deliverable at `now`.
pub trait Transport {
    /// Sender → receiver direction.
    fn send_frame(&mut self, now: u64, frame: UplinkFrame);
    /// Receiver → sender direction.
    fn send_ack(&mut self, now: u64, ack: Ack);
    /// Frames deliverable to the receiver at `now`, in delivery order.
    fn poll_frames(&mut self, now: u64) -> Vec<UplinkFrame>;
    /// ACKs deliverable to the sender at `now`, in delivery order.
    fn poll_acks(&mut self, now: u64) -> Vec<Ack>;
    /// Whether any message is still queued inside the link.
    fn is_empty(&self) -> bool;
}

/// A lossless fixed-latency link — the control-group transport.
#[derive(Debug, Default)]
pub struct PerfectLink {
    /// Delivery latency in ticks (both directions).
    pub latency: u64,
    frames: BTreeMap<u64, Vec<UplinkFrame>>,
    acks: BTreeMap<u64, Vec<Ack>>,
}

impl PerfectLink {
    /// A perfect link with the given one-way latency.
    pub fn new(latency: u64) -> Self {
        Self {
            latency,
            ..Self::default()
        }
    }
}

fn drain_due<T>(map: &mut BTreeMap<u64, Vec<T>>, now: u64) -> Vec<T> {
    let mut out = Vec::new();
    let due: Vec<u64> = map.range(..=now).map(|(&k, _)| k).collect();
    for k in due {
        out.extend(map.remove(&k).expect("key from range"));
    }
    out
}

impl Transport for PerfectLink {
    fn send_frame(&mut self, now: u64, frame: UplinkFrame) {
        self.frames
            .entry(now + self.latency)
            .or_default()
            .push(frame);
    }

    fn send_ack(&mut self, now: u64, ack: Ack) {
        self.acks.entry(now + self.latency).or_default().push(ack);
    }

    fn poll_frames(&mut self, now: u64) -> Vec<UplinkFrame> {
        drain_due(&mut self.frames, now)
    }

    fn poll_acks(&mut self, now: u64) -> Vec<Ack> {
        drain_due(&mut self.acks, now)
    }

    fn is_empty(&self) -> bool {
        self.frames.is_empty() && self.acks.is_empty()
    }
}

// --- the faulty link --------------------------------------------------------

/// One phase's fault mix. All probabilities are per message.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Base one-way latency in ticks.
    pub delay_ticks: u64,
    /// Probability a data frame is silently dropped.
    pub drop: f64,
    /// Probability a data frame is delivered twice (second copy at an
    /// independently jittered delay).
    pub duplicate: f64,
    /// Probability a data frame's bytes are corrupted in flight (the
    /// receiver's CRC rejects it — an effective drop that also exercises
    /// the integrity path).
    pub corrupt: f64,
    /// Probability a message takes extra `1..=jitter_ticks` delay —
    /// the reordering mechanism (a delayed frame arrives after its
    /// successors).
    pub reorder: f64,
    /// Maximum extra delay for reordered messages.
    pub jitter_ticks: u64,
    /// Probability an ACK is dropped.
    pub ack_drop: f64,
    /// Probability an ACK is corrupted (sender's CRC rejects it).
    pub ack_corrupt: f64,
    /// Probability an ACK is duplicated.
    pub ack_duplicate: f64,
    /// Total stall: nothing is delivered (in either direction) while
    /// this phase is active; queued traffic resumes when it ends.
    pub stall: bool,
}

impl FaultSpec {
    /// A clean link with the given latency.
    pub fn clean(delay_ticks: u64) -> Self {
        Self {
            delay_ticks,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            jitter_ticks: 0,
            ack_drop: 0.0,
            ack_corrupt: 0.0,
            ack_duplicate: 0.0,
            stall: false,
        }
    }

    /// Uniform loss on the frame path with mild reordering.
    pub fn lossy(delay_ticks: u64, drop: f64) -> Self {
        Self {
            drop,
            reorder: 0.2,
            jitter_ticks: 4,
            ..Self::clean(delay_ticks)
        }
    }

    /// A black hole: everything sent during this phase is frozen.
    pub fn stalled() -> Self {
        Self {
            stall: true,
            ..Self::clean(1)
        }
    }
}

/// One entry of a [`FaultyLink`] schedule: `spec` applies to messages
/// sent while `now < until_tick`. The final phase extends forever.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// First tick *after* this phase (exclusive end).
    pub until_tick: u64,
    /// The fault mix while the phase is active.
    pub spec: FaultSpec,
}

/// What the link did to traffic (the ground truth chaos tests compare
/// sender/receiver counters against).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Data/probe frames accepted for transmission.
    pub frames_sent: u64,
    /// Frames silently dropped.
    pub frames_dropped: u64,
    /// Frames delivered twice.
    pub frames_duplicated: u64,
    /// Frames corrupted in flight.
    pub frames_corrupted: u64,
    /// Frames given extra reordering delay.
    pub frames_reordered: u64,
    /// ACKs accepted for transmission.
    pub acks_sent: u64,
    /// ACKs dropped.
    pub acks_dropped: u64,
    /// ACKs corrupted.
    pub acks_corrupted: u64,
    /// ACKs duplicated.
    pub acks_duplicated: u64,
}

impl LinkCounters {
    /// Frames the link destroyed outright (dropped or corrupted — the
    /// receiver never ingests either).
    pub fn frames_dropped_by_link(&self) -> u64 {
        self.frames_dropped + self.frames_corrupted
    }
}

/// The deterministic fault-injecting transport. Every decision flows
/// through one caller-seeded RNG, so a whole chaos run reproduces from
/// `(schedule, seed)` alone.
#[derive(Debug)]
pub struct FaultyLink {
    phases: Vec<Phase>,
    rng: SmallRng,
    frames: BTreeMap<u64, Vec<UplinkFrame>>,
    acks: BTreeMap<u64, Vec<Ack>>,
    counters: LinkCounters,
}

impl FaultyLink {
    /// A single-phase link: `spec` forever.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self::with_schedule(
            vec![Phase {
                until_tick: u64::MAX,
                spec,
            }],
            seed,
        )
    }

    /// A scripted link: phases apply in order by send tick; the last
    /// phase extends forever. Phases must be non-empty and sorted.
    pub fn with_schedule(phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.windows(2).all(|w| w[0].until_tick < w[1].until_tick),
            "phases must be sorted by until_tick"
        );
        Self {
            phases,
            rng: SmallRng::seed_from_u64(seed),
            frames: BTreeMap::new(),
            acks: BTreeMap::new(),
            counters: LinkCounters::default(),
        }
    }

    /// The spec governing messages sent (or delivered) at `now`.
    pub fn spec_at(&self, now: u64) -> FaultSpec {
        for p in &self.phases {
            if now < p.until_tick {
                return p.spec;
            }
        }
        self.phases.last().expect("non-empty").spec
    }

    /// The link's fault ground truth.
    pub fn counters(&self) -> LinkCounters {
        self.counters
    }

    fn deliver_at(&mut self, now: u64, spec: &FaultSpec) -> u64 {
        let mut due = now + spec.delay_ticks;
        if spec.reorder > 0.0 && spec.jitter_ticks > 0 && self.rng.gen::<f64>() < spec.reorder {
            self.counters.frames_reordered += 1;
            due += self.rng.gen_range(1..=spec.jitter_ticks);
        }
        due
    }
}

impl Transport for FaultyLink {
    fn send_frame(&mut self, now: u64, mut frame: UplinkFrame) {
        let spec = self.spec_at(now);
        self.counters.frames_sent += 1;
        if !spec.stall && spec.drop > 0.0 && self.rng.gen::<f64>() < spec.drop {
            self.counters.frames_dropped += 1;
            return;
        }
        if spec.corrupt > 0.0 && self.rng.gen::<f64>() < spec.corrupt {
            self.counters.frames_corrupted += 1;
            // Flip bits in a fragment's payload, or in the CRC itself
            // for payload-less frames — either way verification fails.
            let victim = frame.fragments.iter_mut().find(|f| !f.bytes.is_empty());
            match victim {
                // A radio burst can smear many bits across one frame.
                Some(f) => faultkit::bit_flip_n(&mut f.bytes, 8, &mut self.rng),
                None => frame.crc ^= 1 << self.rng.gen_range(0..32u32),
            }
        }
        let dup = spec.duplicate > 0.0 && self.rng.gen::<f64>() < spec.duplicate;
        let due = self.deliver_at(now, &spec);
        if dup {
            self.counters.frames_duplicated += 1;
            let dup_due = self.deliver_at(now, &spec);
            self.frames.entry(dup_due).or_default().push(frame.clone());
        }
        self.frames.entry(due).or_default().push(frame);
    }

    fn send_ack(&mut self, now: u64, mut ack: Ack) {
        let spec = self.spec_at(now);
        self.counters.acks_sent += 1;
        if !spec.stall && spec.ack_drop > 0.0 && self.rng.gen::<f64>() < spec.ack_drop {
            self.counters.acks_dropped += 1;
            return;
        }
        if spec.ack_corrupt > 0.0 && self.rng.gen::<f64>() < spec.ack_corrupt {
            self.counters.acks_corrupted += 1;
            ack.crc ^= 1 << self.rng.gen_range(0..32u32);
        }
        let dup = spec.ack_duplicate > 0.0 && self.rng.gen::<f64>() < spec.ack_duplicate;
        let due = self.deliver_at(now, &spec);
        if dup {
            self.counters.acks_duplicated += 1;
            let dup_due = self.deliver_at(now, &spec);
            self.acks.entry(dup_due).or_default().push(ack);
        }
        self.acks.entry(due).or_default().push(ack);
    }

    fn poll_frames(&mut self, now: u64) -> Vec<UplinkFrame> {
        if self.spec_at(now).stall {
            return Vec::new();
        }
        drain_due(&mut self.frames, now)
    }

    fn poll_acks(&mut self, now: u64) -> Vec<Ack> {
        if self.spec_at(now).stall {
            return Vec::new();
        }
        drain_due(&mut self.acks, now)
    }

    fn is_empty(&self) -> bool {
        self.frames.is_empty() && self.acks.is_empty()
    }
}

// --- receiver ---------------------------------------------------------------

/// Ingest-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverCounters {
    /// Frames that arrived (any kind, any fate).
    pub frames_received: u64,
    /// Frames rejected by the CRC check (link corruption).
    pub frames_rejected: u64,
    /// Probe frames answered.
    pub probe_frames: u64,
    /// Fragments for already-ingested records, dropped idempotently.
    pub duplicate_fragments: u64,
    /// Completed records the ledger refused as duplicates.
    pub duplicate_records: u64,
    /// Records admitted exactly once.
    pub records_delivered: u64,
    /// Payload bytes of admitted records.
    pub payload_bytes_delivered: u64,
}

/// Reassembly buffer for one record: bytes plus merged coverage
/// intervals, so duplicated and re-fragmented deliveries (retries may
/// slice a record differently) never double-count.
#[derive(Debug, Default)]
struct PartialRecord {
    buf: Vec<u8>,
    /// Sorted, disjoint `[start, end)` coverage intervals.
    intervals: Vec<(usize, usize)>,
    /// Total record length, known once a `last` fragment arrives.
    total: Option<usize>,
}

impl PartialRecord {
    fn add(&mut self, offset: usize, bytes: &[u8], last: bool) {
        let end = offset + bytes.len();
        if self.buf.len() < end {
            self.buf.resize(end, 0);
        }
        self.buf[offset..end].copy_from_slice(bytes);
        if last {
            self.total = Some(end);
        }
        // Merge the new interval into the sorted disjoint set.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.intervals.len() + 1);
        let (mut s, mut e) = (offset, end);
        for &(a, b) in &self.intervals {
            if b < s || a > e {
                merged.push((a, b));
            } else {
                s = s.min(a);
                e = e.max(b);
            }
        }
        merged.push((s, e));
        merged.sort_unstable();
        self.intervals = merged;
    }

    fn complete(&self) -> bool {
        match self.total {
            Some(0) => true,
            Some(t) => self
                .intervals
                .first()
                .is_some_and(|&(s, e)| s == 0 && e >= t),
            None => false,
        }
    }

    fn into_bytes(mut self) -> Vec<u8> {
        let t = self.total.expect("complete record");
        self.buf.truncate(t);
        self.buf
    }
}

/// The ingest side of the uplink: CRC verification, fragment
/// reassembly, exactly-once admission through an [`IngestLedger`], and
/// capture-order release of completed records.
#[derive(Debug, Default)]
pub struct Receiver {
    ledger: IngestLedger,
    partial: HashMap<u64, PartialRecord>,
    /// Completed, ledger-admitted records awaiting in-order release.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Highest sequence already released to the consumer.
    released: u64,
    counters: ReceiverCounters,
}

impl Receiver {
    /// A fresh receiver with an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resume with a pre-populated ledger (the cursor survives a link
    /// outage; replays below it are deduped).
    pub fn with_ledger(ledger: IngestLedger) -> Self {
        let released = ledger.acked_seq();
        Self {
            ledger,
            released,
            ..Self::default()
        }
    }

    /// Handle one frame off the link. Returns the ACK to send back, or
    /// `None` when the frame failed its CRC (a corrupt frame is never
    /// acknowledged — the sender's deadline covers it).
    pub fn on_frame(&mut self, frame: &UplinkFrame) -> Option<Ack> {
        self.counters.frames_received += 1;
        if !frame.verify() {
            self.counters.frames_rejected += 1;
            return None;
        }
        if frame.kind == FrameKind::Probe {
            self.counters.probe_frames += 1;
            return Some(Ack::new(frame.frame_id, self.ledger.acked_seq()));
        }
        for wf in &frame.fragments {
            if self.ledger.seen(wf.seq) {
                self.counters.duplicate_fragments += 1;
                continue;
            }
            let p = self.partial.entry(wf.seq).or_default();
            p.add(wf.offset, &wf.bytes, wf.last);
            if p.complete() {
                let rec = self.partial.remove(&wf.seq).expect("entry exists");
                let bytes = rec.into_bytes();
                if self.ledger.accept(wf.seq) {
                    self.counters.records_delivered += 1;
                    self.counters.payload_bytes_delivered += bytes.len() as u64;
                    self.ready.insert(wf.seq, bytes);
                } else {
                    self.counters.duplicate_records += 1;
                }
            }
        }
        Some(Ack::new(frame.frame_id, self.ledger.acked_seq()))
    }

    /// Release completed records **in capture order**: only the
    /// contiguous prefix above the last release leaves the receiver; a
    /// record that arrived ahead of a hole waits for the hole to fill.
    pub fn take_ordered(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(bytes) = self.ready.remove(&(self.released + 1)) {
            self.released += 1;
            out.push((self.released, bytes));
        }
        out
    }

    /// Records admitted but still waiting behind a capture-order hole.
    pub fn pending_release(&self) -> usize {
        self.ready.len()
    }

    /// The ledger's contiguous cursor.
    pub fn acked_seq(&self) -> u64 {
        self.ledger.acked_seq()
    }

    /// The ledger (for handing to [`crate::spooling::run_reconnect`]
    /// after a breaker recovery).
    pub fn ledger_mut(&mut self) -> &mut IngestLedger {
        &mut self.ledger
    }

    /// Ingest-side counters.
    pub fn counters(&self) -> ReceiverCounters {
        self.counters
    }
}

// --- circuit breaker --------------------------------------------------------

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive frame timeouts that trip the breaker open.
    pub trip_after: u32,
    /// Ticks the breaker stays open before probing.
    pub open_ticks: u64,
    /// Consecutive successful probes required to close again.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 4,
            open_ticks: 64,
            probes_to_close: 2,
        }
    }
}

/// Breaker state (closed → open → half-open → closed / open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: frames flow.
    Closed,
    /// Tripped: nothing is sent until `until`.
    Open {
        /// Tick at which the breaker moves to half-open.
        until: u64,
    },
    /// Probing: only probe frames are sent.
    HalfOpen,
}

/// The uplink's circuit breaker. Pure state machine — the [`Uplink`]
/// feeds it timeouts and ACKs and asks what it may send.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_timeouts: u32,
    probe_successes: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.trip_after > 0, "trip_after must be > 0");
        assert!(cfg.probes_to_close > 0, "probes_to_close must be > 0");
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_timeouts: 0,
            probe_successes: 0,
            trips: 0,
        }
    }

    /// Current state (after lazily applying the open→half-open timer).
    pub fn state(&mut self, now: u64) -> BreakerState {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
                self.probe_successes = 0;
            }
        }
        self.state
    }

    /// Times the breaker tripped open (including half-open reopenings).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Record a frame timeout. Returns `true` when this timeout tripped
    /// the breaker (closed → open) or reopened it (half-open → open).
    pub fn on_timeout(&mut self, now: u64) -> bool {
        match self.state(now) {
            BreakerState::Closed => {
                self.consecutive_timeouts += 1;
                if self.consecutive_timeouts >= self.cfg.trip_after {
                    self.trip(now);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                // A failed probe reopens immediately.
                self.trip(now);
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open {
            until: now + self.cfg.open_ticks,
        };
        self.consecutive_timeouts = 0;
        self.probe_successes = 0;
        self.trips += 1;
    }

    /// Record a successful ACK for a data frame.
    pub fn on_ack(&mut self) {
        self.consecutive_timeouts = 0;
    }

    /// Record a successful probe ACK. Returns `true` when the breaker
    /// just closed.
    pub fn on_probe_ack(&mut self) -> bool {
        if self.state != BreakerState::HalfOpen {
            return false;
        }
        self.probe_successes += 1;
        if self.probe_successes >= self.cfg.probes_to_close {
            self.state = BreakerState::Closed;
            self.consecutive_timeouts = 0;
            true
        } else {
            false
        }
    }
}

// --- the uplink sender ------------------------------------------------------

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct UplinkConfig {
    /// Transport frame geometry (shared with the packer).
    pub frame: FrameConfig,
    /// Maximum un-ACKed frames in flight (the ACK window).
    pub window: usize,
    /// Ticks a frame may remain un-ACKed before it times out.
    pub deadline_ticks: u64,
    /// Retries per frame before it is abandoned and its records
    /// re-queued (NACK-equivalent: the replay cursor rewinds).
    pub max_retries: u32,
    /// Frames the sender may transmit per tick, retries included
    /// (`0` = unlimited). This is the link-capacity model the goodput
    /// bench leans on.
    pub frames_per_tick: usize,
    /// Records the sender will buffer un-ACKed before refusing new
    /// offers (backpressure to the driver / spool).
    pub accept_limit: usize,
    /// Retry backoff parameters.
    pub backoff: BackoffConfig,
    /// Circuit-breaker parameters.
    pub breaker: BreakerConfig,
    /// Degradation watermarks over `backlog() + external backlog`.
    pub watermarks: PressureWatermarks,
    /// Stream id stamped on outgoing fragments.
    pub stream: StreamId,
    /// Transmission class for offered records.
    pub priority: Priority,
    /// Seed for the backoff jitter RNG.
    pub seed: u64,
}

impl Default for UplinkConfig {
    fn default() -> Self {
        Self {
            frame: FrameConfig::default(),
            window: 4,
            deadline_ticks: 16,
            max_retries: 5,
            frames_per_tick: 0,
            accept_limit: 64,
            backoff: BackoffConfig::default(),
            breaker: BreakerConfig::default(),
            watermarks: PressureWatermarks::default(),
            stream: 0,
            priority: Priority::Normal,
            seed: 0,
        }
    }
}

/// Sender-side counters (plumbed into fleet rollups).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkCounters {
    /// Frames transmitted (first sends, data only).
    pub frames_sent: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Frame deadline expirations.
    pub timeouts: u64,
    /// Breaker trips (closed→open and half-open→open).
    pub trips: u64,
    /// Probe frames sent while half-open.
    pub half_open_probes: u64,
    /// Frames abandoned after exhausting retries.
    pub retry_exhausted: u64,
    /// Records re-queued after a frame was abandoned.
    pub requeues: u64,
    /// Records cancelled by a breaker trip (handed back for rewind).
    pub cancelled_on_trip: u64,
    /// Valid ACKs processed.
    pub acks_received: u64,
    /// ACKs rejected by the CRC check.
    pub acks_rejected: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    frame: UplinkFrame,
    deadline: u64,
    attempt: u32,
}

/// The windowed, retrying, breaker-guarded uplink sender. Driven in
/// virtual time: the owner calls [`Uplink::offer`] to enqueue records
/// and [`Uplink::tick`] once per tick to pump ACKs, deadlines, retries
/// and transmissions through a [`Transport`].
#[derive(Debug)]
pub struct Uplink {
    cfg: UplinkConfig,
    packer: FramePacker,
    /// Un-ACKed record payloads by sequence (freed by cumulative ACK).
    payloads: BTreeMap<u64, Vec<u8>>,
    /// Sequences currently queued (possibly partially) in the packer.
    queued: HashSet<u64>,
    in_flight: HashMap<u64, InFlight>,
    /// Frames awaiting their backoff delay, keyed by fire tick.
    retry_at: BTreeMap<u64, Vec<InFlight>>,
    /// Frame ids ACKed while waiting in the retry queue.
    late_acked: HashSet<u64>,
    backoff: Backoff,
    breaker: CircuitBreaker,
    gauge: PressureGauge,
    external_backlog: usize,
    /// Highest cumulative sequence the receiver has confirmed.
    cum_acked: u64,
    next_frame_id: u64,
    /// Probe currently awaiting its ACK (id), if any.
    probe_in_flight: Option<u64>,
    /// Sequences cancelled by a breaker trip, awaiting driver rewind.
    rewind: Vec<u64>,
    counters: UplinkCounters,
}

impl Uplink {
    /// Create a sender.
    pub fn new(cfg: UplinkConfig) -> Self {
        assert!(cfg.window > 0, "window must be > 0");
        assert!(cfg.deadline_ticks > 0, "deadline must be > 0");
        assert!(cfg.accept_limit > 0, "accept_limit must be > 0");
        let backoff = Backoff::new(cfg.backoff, cfg.seed);
        let breaker = CircuitBreaker::new(cfg.breaker);
        let packer = FramePacker::new(cfg.frame);
        Self {
            cfg,
            packer,
            payloads: BTreeMap::new(),
            queued: HashSet::new(),
            in_flight: HashMap::new(),
            retry_at: BTreeMap::new(),
            late_acked: HashSet::new(),
            backoff,
            breaker,
            gauge: PressureGauge::new(),
            external_backlog: 0,
            cum_acked: 0,
            next_frame_id: 0,
            probe_in_flight: None,
            rewind: Vec::new(),
            counters: UplinkCounters::default(),
        }
    }

    /// The shared pressure gauge (clone it into the fleet config /
    /// selectors).
    pub fn pressure(&self) -> PressureGauge {
        self.gauge.clone()
    }

    /// Report backlog the sender cannot see (spool depth during an
    /// outage) so the pressure gauge reflects total debt.
    pub fn set_external_backlog(&mut self, records: usize) {
        self.external_backlog = records;
    }

    /// Whether a new record would be accepted right now: breaker closed
    /// and the un-ACKed buffer below its limit.
    pub fn can_accept(&mut self, now: u64) -> bool {
        self.breaker.state(now) == BreakerState::Closed
            && self.payloads.len() < self.cfg.accept_limit
    }

    /// Offer one record for transmission. Returns `false` (and drops
    /// nothing — the caller keeps the payload) when backpressured.
    pub fn offer(&mut self, now: u64, seq: u64, payload: Vec<u8>) -> bool {
        if !self.can_accept(now) || seq <= self.cum_acked || self.payloads.contains_key(&seq) {
            return false;
        }
        self.packer.push(FrameItem {
            stream: self.cfg.stream,
            priority: self.cfg.priority,
            seq,
            len: payload.len(),
        });
        self.queued.insert(seq);
        self.payloads.insert(seq, payload);
        true
    }

    /// Un-ACKed records buffered in the sender (pressure input).
    pub fn backlog(&self) -> usize {
        self.payloads.len()
    }

    /// Highest cumulative sequence the receiver has confirmed.
    pub fn acked_seq(&self) -> u64 {
        self.cum_acked
    }

    /// Nothing buffered, queued, in flight, or awaiting retry.
    pub fn idle(&self) -> bool {
        self.payloads.is_empty()
            && self.in_flight.is_empty()
            && self.retry_at.is_empty()
            && self.packer.pending() == 0
    }

    /// Breaker state at `now`.
    pub fn breaker_state(&mut self, now: u64) -> BreakerState {
        self.breaker.state(now)
    }

    /// Sender counters (trips included).
    pub fn counters(&self) -> UplinkCounters {
        let mut c = self.counters;
        c.trips = self.breaker.trips();
        c
    }

    /// Sequences cancelled by a breaker trip since the last call: the
    /// driver must re-supply them (rewind the spool replay cursor to
    /// below the smallest one).
    pub fn take_rewind(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.rewind)
    }

    fn on_ack(&mut self, ack: Ack) {
        if !ack.verify() {
            self.counters.acks_rejected += 1;
            return;
        }
        self.counters.acks_received += 1;
        if self.probe_in_flight == Some(ack.frame_id) {
            self.probe_in_flight = None;
            self.breaker.on_probe_ack();
        } else if self.in_flight.remove(&ack.frame_id).is_some() {
            self.breaker.on_ack();
        } else {
            // The frame may be waiting in the retry queue (late ACK
            // after its deadline) — remember to discard it there.
            self.late_acked.insert(ack.frame_id);
        }
        if ack.cumulative_seq > self.cum_acked {
            self.cum_acked = ack.cumulative_seq;
            let keep = self.payloads.split_off(&(self.cum_acked + 1));
            self.payloads = keep;
            let cum = self.cum_acked;
            self.queued.retain(|&s| s > cum);
        }
    }

    /// Build a wire frame from the packer's next descriptor frame,
    /// slicing bytes out of the retained payloads. Descriptors for
    /// records that were cumulatively ACKed while sitting in the packer
    /// (a delayed duplicate of an abandoned frame landed) are stale —
    /// their payloads are gone and their bytes must not reship.
    fn build_frame(&mut self) -> Option<UplinkFrame> {
        loop {
            let tf = self.packer.next_frame()?;
            let mut fragments = Vec::with_capacity(tf.fragments.len());
            for f in &tf.fragments {
                if f.last {
                    self.queued.remove(&f.seq);
                }
                let Some(payload) = self.payloads.get(&f.seq) else {
                    continue; // stale descriptor: already ACKed
                };
                fragments.push(WireFragment {
                    seq: f.seq,
                    offset: f.offset,
                    last: f.last,
                    bytes: payload[f.offset..f.offset + f.len].to_vec(),
                });
            }
            if fragments.is_empty() {
                continue; // the whole frame was stale — pack the next one
            }
            let id = self.next_frame_id;
            self.next_frame_id += 1;
            return Some(UplinkFrame::new(id, FrameKind::Data, fragments));
        }
    }

    /// Re-queue the un-ACKed records of an abandoned frame so their
    /// bytes are repacked and retried from scratch — the in-memory
    /// equivalent of a NACK-driven replay-cursor rewind.
    fn requeue_frame_records(&mut self, frame: &UplinkFrame) {
        let mut seqs: Vec<u64> = frame.fragments.iter().map(|f| f.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        for seq in seqs {
            if seq <= self.cum_acked || self.queued.contains(&seq) {
                continue;
            }
            let Some(payload) = self.payloads.get(&seq) else {
                continue;
            };
            self.packer.push(FrameItem {
                stream: self.cfg.stream,
                priority: self.cfg.priority,
                seq,
                len: payload.len(),
            });
            self.queued.insert(seq);
            self.counters.requeues += 1;
        }
    }

    /// Cancel everything buffered or outstanding (breaker trip): the
    /// sender goes quiet, and every un-ACKed sequence is handed back to
    /// the driver for spool-side rewind.
    fn cancel_all(&mut self) {
        self.in_flight.clear();
        self.retry_at.clear();
        self.late_acked.clear();
        self.probe_in_flight = None;
        // Drain the packer's descriptors; payloads are dropped wholesale.
        while self.packer.next_frame().is_some() {}
        self.queued.clear();
        let cancelled: Vec<u64> = self.payloads.keys().copied().collect();
        self.counters.cancelled_on_trip += cancelled.len() as u64;
        self.rewind.extend(cancelled);
        self.payloads.clear();
    }

    /// One virtual-time step: process ACKs, expire deadlines, fire
    /// retries, transmit new frames while the window allows, probe when
    /// half-open, and refresh the pressure gauge.
    pub fn tick(&mut self, now: u64, transport: &mut dyn Transport) {
        // 1. Inbound ACKs.
        for ack in transport.poll_acks(now) {
            self.on_ack(ack);
        }

        // 2. Deadline scan (deterministic order).
        let mut expired: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        expired.sort_unstable();
        if self.probe_in_flight.is_some() && expired.contains(&self.probe_in_flight.unwrap()) {
            // Probe timed out: reopen.
            let id = self.probe_in_flight.take().unwrap();
            self.in_flight.remove(&id);
            expired.retain(|&e| e != id);
            self.counters.timeouts += 1;
            self.breaker.on_timeout(now);
        }
        for id in expired {
            let mut f = self.in_flight.remove(&id).expect("expired id in flight");
            self.counters.timeouts += 1;
            let tripped = self.breaker.on_timeout(now);
            if tripped {
                self.cancel_all();
                break;
            }
            if f.attempt >= self.cfg.max_retries {
                self.counters.retry_exhausted += 1;
                self.requeue_frame_records(&f.frame);
            } else {
                let delay = self.backoff.delay(f.attempt);
                f.attempt += 1;
                self.retry_at.entry(now + delay).or_default().push(f);
            }
        }

        let mut budget = if self.cfg.frames_per_tick == 0 {
            usize::MAX
        } else {
            self.cfg.frames_per_tick
        };

        match self.breaker.state(now) {
            BreakerState::Closed => {
                // 3. Fire due retries (they hold the cumulative ACK back,
                // so they outrank new transmissions).
                let due: Vec<u64> = self.retry_at.range(..=now).map(|(&k, _)| k).collect();
                'retry: for k in due {
                    let frames = self.retry_at.remove(&k).expect("key from range");
                    let mut pending = frames.into_iter();
                    while let Some(mut f) = pending.next() {
                        if self.late_acked.remove(&f.frame.frame_id) {
                            continue; // ACKed while backing off
                        }
                        if budget == 0 || self.in_flight.len() >= self.cfg.window {
                            // No room this tick: park this frame and every
                            // one still behind it for the next tick.
                            let parked = self.retry_at.entry(now + 1).or_default();
                            parked.push(f);
                            parked.extend(pending);
                            break 'retry;
                        }
                        budget -= 1;
                        self.counters.retries += 1;
                        f.deadline = now + self.cfg.deadline_ticks;
                        transport.send_frame(now, f.frame.clone());
                        self.in_flight.insert(f.frame.frame_id, f);
                    }
                }

                // 4. New transmissions while the window has room. Partial
                // frames ship only when nothing else is outstanding, so
                // steady-state frames stay full but the tail still drains.
                while budget > 0 && self.in_flight.len() < self.cfg.window {
                    let flush_tail = self.in_flight.is_empty() && self.retry_at.is_empty();
                    let tail_due = flush_tail && self.packer.pending() > 0;
                    if !self.packer.frame_ready() && !tail_due {
                        break;
                    }
                    let Some(frame) = self.build_frame() else {
                        break;
                    };
                    budget -= 1;
                    self.counters.frames_sent += 1;
                    let deadline = now + self.cfg.deadline_ticks;
                    transport.send_frame(now, frame.clone());
                    self.in_flight.insert(
                        frame.frame_id,
                        InFlight {
                            frame,
                            deadline,
                            attempt: 0,
                        },
                    );
                }
            }
            BreakerState::HalfOpen => {
                // 5. Probe: one at a time.
                if self.probe_in_flight.is_none() && budget > 0 {
                    let id = self.next_frame_id;
                    self.next_frame_id += 1;
                    let probe = UplinkFrame::new(id, FrameKind::Probe, Vec::new());
                    self.counters.half_open_probes += 1;
                    transport.send_frame(now, probe.clone());
                    self.probe_in_flight = Some(id);
                    self.in_flight.insert(
                        id,
                        InFlight {
                            frame: probe,
                            deadline: now + self.cfg.deadline_ticks,
                            attempt: 0,
                        },
                    );
                }
            }
            BreakerState::Open { .. } => {}
        }

        // 6. Pressure gauge.
        let depth = self.payloads.len() + self.external_backlog;
        let level = self.cfg.watermarks.classify(self.gauge.level(), depth);
        self.gauge.set(level);
    }
}

// --- session driver ---------------------------------------------------------

/// What one in-memory uplink session did (the bench/chaos rollup).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Virtual ticks consumed.
    pub ticks: u64,
    /// Records offered to the sender.
    pub offered_records: u64,
    /// Records released by the receiver in capture order.
    pub delivered_records: u64,
    /// Payload bytes of delivered records.
    pub goodput_bytes: u64,
    /// The receiver's final contiguous cursor.
    pub final_acked_seq: u64,
    /// Whether everything drained before the tick budget ran out.
    pub completed: bool,
    /// Sender counters.
    pub uplink: UplinkCounters,
    /// Receiver counters.
    pub receiver: ReceiverCounters,
    /// Pressure transitions observed on the sender's gauge.
    pub degradation_transitions: u64,
}

/// Drive `records` (capture-order `(seq, payload)` pairs, sequences
/// contiguous from `records[0].0`) through an uplink/receiver pair over
/// `link` until everything is delivered or `max_ticks` elapse. Records
/// cancelled by a breaker trip are re-offered once the breaker closes —
/// the in-memory stand-in for the spool rewind the chaos suite's
/// store-and-forward test exercises for real.
pub fn run_session(
    records: &[(u64, Vec<u8>)],
    uplink: &mut Uplink,
    receiver: &mut Receiver,
    link: &mut dyn Transport,
    max_ticks: u64,
) -> SessionReport {
    let by_seq: HashMap<u64, &Vec<u8>> = records.iter().map(|(s, p)| (*s, p)).collect();
    let mut requeue: VecDeque<u64> = VecDeque::new();
    let mut next = 0usize;
    let mut delivered = 0u64;
    let mut goodput = 0u64;
    let mut ticks = 0u64;
    let mut completed = false;

    for now in 0..max_ticks {
        ticks = now + 1;
        for frame in link.poll_frames(now) {
            if let Some(ack) = receiver.on_frame(&frame) {
                link.send_ack(now, ack);
            }
        }
        for (_, bytes) in receiver.take_ordered() {
            delivered += 1;
            goodput += bytes.len() as u64;
        }
        uplink.tick(now, link);
        for seq in uplink.take_rewind() {
            requeue.push_back(seq);
        }
        while uplink.can_accept(now) {
            if let Some(&seq) = requeue.front() {
                let payload = by_seq.get(&seq).expect("rewound seq was offered");
                if uplink.offer(now, seq, (*payload).clone()) {
                    requeue.pop_front();
                } else {
                    requeue.pop_front(); // already ACKed meanwhile
                }
            } else if next < records.len() {
                let (seq, ref payload) = records[next];
                if !uplink.offer(now, seq, payload.clone()) {
                    break;
                }
                next += 1;
            } else {
                break;
            }
        }
        uplink.set_external_backlog(records.len() - next + requeue.len());
        if next == records.len() && requeue.is_empty() && uplink.idle() && link.is_empty() {
            completed = true;
            break;
        }
    }
    // Drain any release still parked behind the loop boundary.
    for (_, bytes) in receiver.take_ordered() {
        delivered += 1;
        goodput += bytes.len() as u64;
    }

    SessionReport {
        ticks,
        offered_records: next as u64,
        delivered_records: delivered,
        goodput_bytes: goodput,
        final_acked_seq: receiver.acked_seq(),
        completed,
        uplink: uplink.counters(),
        receiver: receiver.counters(),
        degradation_transitions: uplink.pressure().transitions(),
    }
}

/// Fleet-level uplink rollup: every counter a "what did the link do to
/// us" question needs, in one place (absorbed into
/// [`crate::fleet::FleetReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkRollup {
    /// Frames transmitted (first sends).
    pub frames_sent: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Frame deadline expirations.
    pub timeouts: u64,
    /// Circuit-breaker trips.
    pub trips: u64,
    /// Half-open probe frames sent.
    pub half_open_probes: u64,
    /// Frames the link destroyed (dropped or corrupted).
    pub frames_dropped_by_link: u64,
    /// Records re-queued after retry exhaustion.
    pub requeues: u64,
    /// Records delivered exactly once.
    pub records_delivered: u64,
    /// Duplicate records/fragments the receiver discarded.
    pub duplicates_discarded: u64,
    /// Pressure-level transitions (degradation engaging/releasing).
    pub degradation_transitions: u64,
    /// Records replayed from the spool on reconnect.
    pub replayed_records: u64,
    /// Replayed records ingested exactly once.
    pub ingested_records: u64,
    /// Replayed records the ledger deduped.
    pub duplicate_replays: u64,
    /// Records lost at the source (spool gaps).
    pub lost_records: u64,
}

impl UplinkRollup {
    /// Fold one uplink session's counters in. Link-side drop counts come
    /// from the receiver's CRC rejections plus the caller's link ground
    /// truth when available; here we take the receiver-observable part.
    pub fn absorb_session(&mut self, s: &SessionReport) {
        self.frames_sent += s.uplink.frames_sent;
        self.retries += s.uplink.retries;
        self.timeouts += s.uplink.timeouts;
        self.trips += s.uplink.trips;
        self.half_open_probes += s.uplink.half_open_probes;
        self.frames_dropped_by_link += s.receiver.frames_rejected;
        self.requeues += s.uplink.requeues;
        self.records_delivered += s.delivered_records;
        self.duplicates_discarded += s.receiver.duplicate_records + s.receiver.duplicate_fragments;
        self.degradation_transitions += s.degradation_transitions;
    }

    /// Fold a reconnect replay's counters in.
    pub fn absorb_replay(&mut self, r: &crate::spooling::ReplayReport) {
        self.replayed_records += r.replayed_records;
        self.ingested_records += r.ingested_records;
        self.duplicate_replays += r.duplicate_records;
        self.lost_records += r.lost_records;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, len: usize) -> (u64, Vec<u8>) {
        (seq, (0..len).map(|i| (i as u8) ^ (seq as u8)).collect())
    }

    fn records(n: usize, len: usize) -> Vec<(u64, Vec<u8>)> {
        (1..=n as u64).map(|s| record(s, len)).collect()
    }

    fn small_cfg() -> UplinkConfig {
        UplinkConfig {
            frame: FrameConfig {
                payload_cap: 64,
                fragment_overhead: 8,
            },
            window: 4,
            deadline_ticks: 8,
            max_retries: 4,
            accept_limit: 16,
            ..UplinkConfig::default()
        }
    }

    // --- backoff -------------------------------------------------------

    #[test]
    fn backoff_sequence_is_pinned_per_seed() {
        // These literals are the contract: any change to the vendored
        // RNG, the jitter mapping, or the cap logic shows up here.
        let cfg = BackoffConfig {
            base_ticks: 4,
            max_ticks: 64,
            jitter: 0.25,
        };
        let seq =
            |seed: u64| -> Vec<u64> { (0..8).map(|a| Backoff::new(cfg, seed).delay(a)).collect() };
        let mut b7 = Backoff::new(cfg, 7);
        let got7: Vec<u64> = (0..8).map(|a| b7.delay(a)).collect();
        let mut b9 = Backoff::new(cfg, 9);
        let got9: Vec<u64> = (0..8).map(|a| b9.delay(a)).collect();
        assert_eq!(got7, [3, 7, 18, 31, 79, 63, 71, 59]);
        assert_eq!(got9, [4, 8, 14, 38, 50, 52, 61, 55]);
        // First-call determinism: a fresh instance at the same seed
        // produces the same first delay regardless of attempt index math.
        assert_eq!(seq(7)[0], got7[0]);
    }

    #[test]
    fn backoff_same_seed_same_sequence() {
        let cfg = BackoffConfig::default();
        let mut a = Backoff::new(cfg, 42);
        let mut b = Backoff::new(cfg, 42);
        for attempt in 0..20 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn backoff_without_jitter_is_pure_exponential() {
        let cfg = BackoffConfig {
            base_ticks: 2,
            max_ticks: 32,
            jitter: 0.0,
        };
        let mut b = Backoff::new(cfg, 1);
        let got: Vec<u64> = (0..7).map(|a| b.delay(a)).collect();
        assert_eq!(got, [2, 4, 8, 16, 32, 32, 32], "doubles then caps");
    }

    #[test]
    fn backoff_jittered_delays_stay_in_band() {
        let cfg = BackoffConfig {
            base_ticks: 8,
            max_ticks: 128,
            jitter: 0.25,
        };
        let mut b = Backoff::new(cfg, 3);
        for attempt in 0..10u32 {
            let raw = (8u64 << attempt.min(10)).min(128) as f64;
            let d = b.delay(attempt) as f64;
            assert!(d >= (raw * 0.75).floor() && d <= (raw * 1.25).ceil());
        }
    }

    // --- watermarks ----------------------------------------------------

    #[test]
    fn watermarks_have_hysteresis() {
        let w = PressureWatermarks {
            elevated_set: 10,
            elevated_clear: 5,
            critical_set: 20,
            critical_clear: 12,
        };
        use LinkPressure::*;
        let mut l = Nominal;
        l = w.classify(l, 9);
        assert_eq!(l, Nominal);
        l = w.classify(l, 10);
        assert_eq!(l, Elevated);
        // Oscillating between clear and set does not flap.
        l = w.classify(l, 7);
        assert_eq!(l, Elevated);
        l = w.classify(l, 5);
        assert_eq!(l, Nominal);
        l = w.classify(l, 25);
        assert_eq!(l, Critical, "jumps straight to critical");
        l = w.classify(l, 15);
        assert_eq!(l, Critical, "above critical_clear stays critical");
        l = w.classify(l, 12);
        assert_eq!(l, Elevated);
        l = w.classify(l, 4);
        assert_eq!(l, Nominal, "full release in one step when deep below");
    }

    #[test]
    fn gauge_counts_transitions() {
        let g = PressureGauge::new();
        assert_eq!(g.level(), LinkPressure::Nominal);
        g.set(LinkPressure::Elevated);
        g.set(LinkPressure::Elevated);
        g.set(LinkPressure::Critical);
        g.set(LinkPressure::Nominal);
        assert_eq!(g.transitions(), 3);
    }

    // --- wire integrity ------------------------------------------------

    #[test]
    fn frame_crc_rejects_corruption() {
        let frame = UplinkFrame::new(
            9,
            FrameKind::Data,
            vec![WireFragment {
                seq: 1,
                offset: 0,
                last: true,
                bytes: vec![1, 2, 3, 4],
            }],
        );
        assert!(frame.verify());
        let mut bad = frame.clone();
        bad.fragments[0].bytes[2] ^= 0x40;
        assert!(!bad.verify());
        let mut bad_id = frame.clone();
        bad_id.frame_id = 10;
        assert!(!bad_id.verify());
        let ack = Ack::new(9, 1);
        assert!(ack.verify());
        let mut bad_ack = ack;
        bad_ack.cumulative_seq = 2;
        assert!(!bad_ack.verify());
    }

    // --- receiver reassembly -------------------------------------------

    #[test]
    fn receiver_reassembles_across_duplicate_and_overlapping_fragments() {
        let mut rx = Receiver::new();
        let payload: Vec<u8> = (0..40u8).collect();
        let frag = |offset: usize, end: usize, last: bool| WireFragment {
            seq: 1,
            offset,
            last,
            bytes: payload[offset..end].to_vec(),
        };
        // Out of order, with a duplicate middle and an overlapping cut.
        let f1 = UplinkFrame::new(0, FrameKind::Data, vec![frag(20, 40, true)]);
        let f2 = UplinkFrame::new(1, FrameKind::Data, vec![frag(10, 25, false)]);
        let f3 = UplinkFrame::new(2, FrameKind::Data, vec![frag(10, 25, false)]);
        let f4 = UplinkFrame::new(3, FrameKind::Data, vec![frag(0, 12, false)]);
        for f in [&f1, &f2, &f3, &f4] {
            rx.on_frame(f);
        }
        let out = rx.take_ordered();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1, payload);
        assert_eq!(rx.counters().records_delivered, 1);
    }

    #[test]
    fn receiver_releases_in_capture_order_only() {
        let mut rx = Receiver::new();
        let whole = |seq: u64, bytes: Vec<u8>| {
            UplinkFrame::new(
                100 + seq,
                FrameKind::Data,
                vec![WireFragment {
                    seq,
                    offset: 0,
                    last: true,
                    bytes,
                }],
            )
        };
        rx.on_frame(&whole(2, vec![2; 4]));
        rx.on_frame(&whole(3, vec![3; 4]));
        assert!(rx.take_ordered().is_empty(), "hole at 1 blocks release");
        assert_eq!(rx.pending_release(), 2);
        rx.on_frame(&whole(1, vec![1; 4]));
        let out = rx.take_ordered();
        assert_eq!(out.iter().map(|(s, _)| *s).collect::<Vec<_>>(), [1, 2, 3]);
        assert_eq!(rx.acked_seq(), 3);
    }

    #[test]
    fn receiver_dedups_whole_record_duplicates() {
        let mut rx = Receiver::new();
        let f = UplinkFrame::new(
            0,
            FrameKind::Data,
            vec![WireFragment {
                seq: 1,
                offset: 0,
                last: true,
                bytes: vec![7; 8],
            }],
        );
        let a1 = rx.on_frame(&f).expect("acked");
        let a2 = rx.on_frame(&f).expect("acked again");
        assert_eq!(a1.cumulative_seq, 1);
        assert_eq!(a2.cumulative_seq, 1);
        assert_eq!(rx.take_ordered().len(), 1);
        assert_eq!(rx.counters().duplicate_fragments, 1);
    }

    #[test]
    fn zero_length_record_delivers() {
        let mut rx = Receiver::new();
        let f = UplinkFrame::new(
            0,
            FrameKind::Data,
            vec![WireFragment {
                seq: 1,
                offset: 0,
                last: true,
                bytes: Vec::new(),
            }],
        );
        rx.on_frame(&f);
        let out = rx.take_ordered();
        assert_eq!(out, vec![(1, Vec::new())]);
    }

    // --- breaker -------------------------------------------------------

    #[test]
    fn breaker_trips_opens_probes_and_closes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            open_ticks: 10,
            probes_to_close: 2,
        });
        assert_eq!(b.state(0), BreakerState::Closed);
        assert!(!b.on_timeout(1));
        assert!(!b.on_timeout(2));
        assert!(b.on_timeout(3), "third consecutive timeout trips");
        assert_eq!(b.state(4), BreakerState::Open { until: 13 });
        assert_eq!(b.state(13), BreakerState::HalfOpen);
        assert!(!b.on_probe_ack(), "first probe success not enough");
        assert!(b.on_probe_ack(), "second closes");
        assert_eq!(b.state(14), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn breaker_probe_timeout_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            open_ticks: 5,
            probes_to_close: 1,
        });
        assert!(b.on_timeout(0));
        assert_eq!(b.state(5), BreakerState::HalfOpen);
        assert!(b.on_timeout(6), "probe timeout reopens");
        assert_eq!(b.state(6), BreakerState::Open { until: 11 });
        assert_eq!(b.trips(), 2);
        // An ACK while closed resets the streak.
        assert_eq!(b.state(11), BreakerState::HalfOpen);
        b.on_probe_ack();
        assert_eq!(b.state(12), BreakerState::Closed);
        b.on_ack();
        assert!(b.on_timeout(13), "trip_after=1 trips immediately again");
    }

    // --- sender over a perfect link -------------------------------------

    #[test]
    fn perfect_link_delivers_everything_exactly_once_no_retries() {
        let recs = records(40, 50);
        let mut up = Uplink::new(small_cfg());
        let mut rx = Receiver::new();
        let mut link = PerfectLink::new(2);
        let report = run_session(&recs, &mut up, &mut rx, &mut link, 10_000);
        assert!(report.completed);
        assert_eq!(report.delivered_records, 40);
        assert_eq!(report.final_acked_seq, 40);
        assert_eq!(report.uplink.retries, 0);
        assert_eq!(report.uplink.timeouts, 0);
        assert_eq!(report.uplink.trips, 0);
        assert_eq!(report.receiver.duplicate_records, 0);
        assert_eq!(report.goodput_bytes, 40 * 50);
    }

    #[test]
    fn window_bounds_in_flight_frames() {
        let mut cfg = small_cfg();
        cfg.window = 2;
        cfg.deadline_ticks = 20; // must exceed the 12-tick round trip
        let recs = records(30, 60);
        let mut up = Uplink::new(cfg);
        let mut rx = Receiver::new();
        // High latency: the window must throttle, never exceed 2.
        let mut link = PerfectLink::new(6);
        let mut offered = 0usize;
        for now in 0..2_000u64 {
            for frame in link.poll_frames(now) {
                if let Some(ack) = rx.on_frame(&frame) {
                    link.send_ack(now, ack);
                }
            }
            up.tick(now, &mut link);
            assert!(up.in_flight.len() <= 2, "window violated");
            while offered < recs.len() && up.offer(now, recs[offered].0, recs[offered].1.clone()) {
                offered += 1;
            }
            if offered == recs.len() && up.idle() && link.is_empty() {
                break;
            }
        }
        rx.take_ordered();
        assert_eq!(rx.acked_seq(), 30);
    }

    #[test]
    fn lossy_link_recovers_via_retries() {
        let recs = records(60, 40);
        let mut up = Uplink::new(small_cfg());
        let mut rx = Receiver::new();
        let mut link = FaultyLink::new(FaultSpec::lossy(2, 0.3), 11);
        let report = run_session(&recs, &mut up, &mut rx, &mut link, 50_000);
        assert!(report.completed, "30% loss must still drain");
        assert_eq!(report.delivered_records, 60);
        assert_eq!(report.final_acked_seq, 60);
        assert!(report.uplink.retries > 0, "loss must force retries");
        assert_eq!(
            link.counters().frames_sent,
            report.uplink.frames_sent + report.uplink.retries + report.uplink.half_open_probes
        );
    }

    #[test]
    fn faulty_link_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let recs = records(30, 48);
            let mut up = Uplink::new(small_cfg());
            let mut rx = Receiver::new();
            let mut link = FaultyLink::new(
                FaultSpec {
                    drop: 0.2,
                    duplicate: 0.15,
                    corrupt: 0.1,
                    ack_drop: 0.1,
                    ..FaultSpec::lossy(2, 0.2)
                },
                seed,
            );
            let rep = run_session(&recs, &mut up, &mut rx, &mut link, 50_000);
            (rep.ticks, rep.uplink, rep.receiver, link.counters())
        };
        assert_eq!(run(5), run(5), "same seed, same everything");
        assert_ne!(run(5).3, run(6).3, "different seed, different faults");
    }

    #[test]
    fn trip_cancels_and_reports_rewind() {
        let mut cfg = small_cfg();
        cfg.breaker = BreakerConfig {
            trip_after: 2,
            open_ticks: 50,
            probes_to_close: 1,
        };
        cfg.max_retries = 1;
        let mut up = Uplink::new(cfg);
        let mut link = FaultyLink::new(
            FaultSpec {
                drop: 1.0,
                ..FaultSpec::clean(1)
            },
            0,
        );
        for (seq, payload) in records(6, 40) {
            assert!(up.offer(0, seq, payload));
        }
        let mut now = 0;
        while up.breaker_state(now) == BreakerState::Closed && now < 500 {
            up.tick(now, &mut link);
            now += 1;
        }
        assert!(matches!(up.breaker_state(now), BreakerState::Open { .. }));
        let rewind = up.take_rewind();
        assert!(!rewind.is_empty(), "trip hands back un-ACKed records");
        assert!(up.idle(), "everything cancelled");
        assert!(!up.can_accept(now), "open breaker refuses offers");
        assert!(up.counters().trips >= 1);
    }

    #[test]
    fn pressure_gauge_rises_with_backlog_and_releases() {
        let mut cfg = small_cfg();
        cfg.watermarks = PressureWatermarks {
            elevated_set: 4,
            elevated_clear: 2,
            critical_set: 8,
            critical_clear: 5,
        };
        cfg.accept_limit = 32;
        // Keep the breaker out of the way: this test is about the gauge.
        cfg.breaker.trip_after = 1000;
        let mut up = Uplink::new(cfg);
        let gauge = up.pressure();
        // Stall the link so backlog builds, then let it drain clean.
        let mut link = FaultyLink::with_schedule(
            vec![
                Phase {
                    until_tick: 40,
                    spec: FaultSpec::stalled(),
                },
                Phase {
                    until_tick: u64::MAX,
                    spec: FaultSpec::clean(1),
                },
            ],
            3,
        );
        let recs = records(12, 30);
        let mut rx = Receiver::new();
        let mut offered = 0usize;
        for now in 0..400u64 {
            for frame in link.poll_frames(now) {
                if let Some(ack) = rx.on_frame(&frame) {
                    link.send_ack(now, ack);
                }
            }
            while offered < recs.len() && up.offer(now, recs[offered].0, recs[offered].1.clone()) {
                offered += 1;
            }
            up.tick(now, &mut link);
            if now == 30 {
                assert_eq!(gauge.level(), LinkPressure::Critical, "stalled backlog");
            }
        }
        assert_eq!(gauge.level(), LinkPressure::Nominal, "drained backlog");
        assert!(gauge.transitions() >= 2, "engaged and released");
        rx.take_ordered();
        assert_eq!(rx.acked_seq(), 12);
    }
}
