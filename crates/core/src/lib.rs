//! # adaedge-core
//!
//! The AdaEdge framework (ICDE 2024): hardware-conscious, MAB-assisted
//! lossless + lossy compression selection for resource-constrained edge
//! devices.
//!
//! * [`constraints`] — ingestion rate / bandwidth / storage constraints and
//!   the derived target ratio `R = B/(64·I)`.
//! * [`targets`] — single and complex (weighted) optimization targets and
//!   the reward evaluator.
//! * [`selector`] — MAB-backed lossless, lossy and ratio-banded selectors.
//! * [`online`] / [`offline`] — the two operating modes.
//! * [`baselines`] — fixed pairs, CodecDB-like and TVStore-like baselines.
//! * [`query`] — aggregation queries over reconstructed segments.
//! * [`engine`] — the multithreaded ingest/compress/recode runtime.
//! * [`shard`] — per-shard selector replicas and the delta-sync outcome
//!   table behind the engine's lock-free hot path.
//! * [`fleet`] — the multi-tenant gateway: thousands of independent
//!   streams multiplexed over the shared sharded workers.
//! * [`frame`] — priority-aware packing of compressed segments into
//!   bounded transport frames.
//! * [`spooling`] — store-and-forward: durable spool sink for disconnect
//!   egress and ACK-gated reconnect replay through the frame packer.
//! * [`uplink`] — fault-tolerant transport: ACK windows, retry/backoff,
//!   circuit breaking, the `FaultyLink` chaos transport, and the
//!   `LinkPressure` degradation signal that biases the selectors.
#![warn(missing_docs)]

pub mod baselines;
pub mod constraints;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod frame;
pub mod offline;
pub mod online;
pub mod query;
pub mod selector;
pub mod shard;
pub mod spooling;
pub mod targets;
pub mod uplink;

pub use constraints::{Constraints, NetworkProfile};
pub use error::{AdaEdgeError, Result};
pub use fleet::{run_fleet, FleetConfig, FleetReport, StreamReport, StreamSpec};
pub use frame::{FrameConfig, FrameItem, FramePacker, Priority, TransportFrame};
pub use offline::{IngestReport, OfflineAdaEdge, OfflineConfig, PolicyKind};
pub use online::{OnlineAdaEdge, OnlineConfig, OnlineOutcome, OnlineStats, Path};
pub use query::AggKind;
pub use selector::{
    BandedLossySelector, BanditAlgorithm, LosslessSelector, LossySelector, Selection,
    SelectorConfig, ELEVATED_EXPLORE_SCALE,
};
pub use shard::{resolve_threads, shard_pool_size, ReplicaSelector, SharedOutcomeTable, WorkGate};
pub use spooling::{
    decode_block, encode_block, run_reconnect, spool_offline_egress, IngestLedger, RelayError,
    ReplayConfig, ReplayReport, SpoolSink,
};
pub use targets::{OptimizationTarget, RewardEvaluator, TargetComponent};
pub use uplink::{
    run_session, Ack, Backoff, BackoffConfig, BreakerConfig, BreakerState, CircuitBreaker,
    FaultSpec, FaultyLink, FrameKind, LinkPressure, PerfectLink, Phase, PressureGauge,
    PressureWatermarks, Receiver, SessionReport, Transport, Uplink, UplinkConfig, UplinkCounters,
    UplinkFrame, UplinkRollup, WireFragment,
};
