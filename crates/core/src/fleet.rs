//! The multi-tenant fleet engine: thousands of independent streams
//! multiplexed over one shared set of sharded compression workers.
//!
//! The single-stream engine ([`crate::engine`]) is the per-device story:
//! one signal, one selector, S pipeline shards. A *gateway* aggregating an
//! edge fleet inverts the cardinality — 10k low-rate streams, each needing
//! its **own** bandit posterior (codecs that win on one sensor's signal
//! lose on another's), sharing a worker pool sized to the hardware, not to
//! the tenant count. This module provides that layer:
//!
//! * **Per-stream selector state, no global lock.** Each admitted stream
//!   owns a [`crate::selector::LosslessSelector`] behind its own mutex,
//!   indexed through a [`ShardedStreamTable`] hashed by stream id. The
//!   handle (an `Arc`) travels *inside* every dispatched batch, so the
//!   hot path never touches the table at all — workers lock exactly one
//!   uncontended per-stream mutex around `select_arm` and once more
//!   around `report_batch`, microseconds apiece.
//! * **Fair, work-conserving scheduling.** The producer round-robins
//!   ready streams into the per-shard bounded queues of the PR-5
//!   machinery (recycle pools, [`WorkGate`]-parked work stealing): a hot
//!   stream gets one batch per turn and goes to the back of its queue, so
//!   it cannot starve others; a stream with nothing to send sits in no
//!   queue and costs zero cycles; an idle shard steals batches from busy
//!   ones.
//! * **Per-stream ordering.** At most one batch per stream is in flight
//!   at a time, so a stream's select→report pairs never interleave —
//!   its posterior after a multi-stream run is *identical* to a solo run
//!   over the same segments (the fleet-equivalence suite pins this, and a
//!   1-stream fleet is bit-identical to the single-stream engine).
//! * **Bounded residency with evict/restore.** The stream table holds at
//!   most [`FleetConfig::max_resident_streams`]; finished streams are
//!   evicted, their posterior archived (optionally persisted via
//!   [`adaedge_storage::posterior`], CRC-framed) and restored bit-exactly
//!   if the stream returns ([`adaedge_bandit::Policy::restore`]).
//! * **Priority-aware egress.** Workers emit compressed-segment
//!   descriptors to a dedicated egress stage that packs them into bounded
//!   transport frames in priority-then-deadline order
//!   ([`crate::frame::FramePacker`]), with per-stream byte accounting in
//!   the final report.

use crate::error::{AdaEdgeError, Result};
use crate::frame::{FrameConfig, FrameItem, FramePacker, Priority, StreamEgress};
use crate::selector::{ArmOutcome, LosslessSelector, SelectorConfig};
use crate::shard::{resolve_threads, shard_pool_size, WorkGate};
use crate::uplink::{LinkPressure, PressureGauge, UplinkRollup};
use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch};
use adaedge_datasets::SegmentSource;
use adaedge_storage::posterior::{load_posteriors, save_posteriors, StreamPosterior};
use crossbeam::channel::{self, TryRecvError};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Knuth's multiplicative hash constant, also used by the shard replicas'
/// seed derivation — stream id 0 leaves the seed unchanged, which is what
/// makes a 1-stream fleet bit-identical to the engine's shard 0.
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Workers hand frame descriptors to the egress stage in chunks of this
/// many items (plus a final partial flush), trading a bounded amount of
/// packing latency for an order of magnitude fewer egress wakeups.
const FRAME_FLUSH_ITEMS: usize = 128;

/// One tenant stream to run through the fleet.
pub struct StreamSpec {
    /// Stable stream identity (selector seed derivation, frame routing,
    /// posterior archive key). Must be unique among *resident* streams;
    /// a spec re-using an evicted stream's id resumes its posterior.
    pub id: u64,
    /// Transmission priority class for frame packing.
    pub priority: Priority,
    /// Segments this spec contributes before the stream is drained and
    /// evicted.
    pub n_segments: usize,
    /// The stream's segment source.
    pub source: Box<dyn SegmentSource>,
}

impl StreamSpec {
    /// Convenience constructor.
    pub fn new(
        id: u64,
        priority: Priority,
        n_segments: usize,
        source: Box<dyn SegmentSource>,
    ) -> Self {
        Self {
            id,
            priority,
            n_segments,
            source,
        }
    }
}

impl std::fmt::Debug for StreamSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSpec")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("n_segments", &self.n_segments)
            .finish()
    }
}

/// Fleet configuration. The engine-shaped fields mean exactly what they
/// mean in [`crate::engine::EngineConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads — one pipeline shard each; `0` = one per core.
    pub n_compression_threads: usize,
    /// Uncompressed-buffer capacity in segments, split across shards.
    pub buffer_segments: usize,
    /// Lossless candidate arms (every stream's selector gets this roster).
    pub lossless_arms: Vec<CodecId>,
    /// MAB hyper-parameters. Each stream derives its RNG seed as
    /// `seed ^ (id · φ)`; stream 0 keeps the seed unchanged.
    pub selector: SelectorConfig,
    /// Dataset decimal precision.
    pub precision: u8,
    /// Segments per scheduling batch (K); one arm decision per batch.
    pub batch_segments: usize,
    /// Stream-table residency bound; `0` = unbounded (every spec admitted
    /// immediately). With a bound, further specs wait for an eviction.
    pub max_resident_streams: usize,
    /// Transport-frame packing parameters for the egress stage.
    pub frame: FrameConfig,
    /// Optional posterior archive file: loaded (if present) before the
    /// run so returning streams resume their learned state, and rewritten
    /// with every evicted stream's posterior after it.
    pub posterior_path: Option<std::path::PathBuf>,
    /// Optional link-pressure gauge shared with the uplink transport.
    /// When set, workers read the current [`LinkPressure`] level before
    /// every arm decision and bias selection toward higher-ratio codecs
    /// under congestion
    /// ([`crate::selector::LosslessSelector::select_arm_biased`]). `None`
    /// (the default) keeps arm selection bit-identical to previous
    /// releases.
    pub pressure: Option<PressureGauge>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_compression_threads: 1,
            buffer_segments: 64,
            lossless_arms: CodecRegistry::lossless_candidates(),
            selector: SelectorConfig::default(),
            precision: 4,
            batch_segments: 1,
            max_resident_streams: 0,
            frame: FrameConfig::default(),
            posterior_path: None,
            pressure: None,
        }
    }
}

/// Mutable per-stream state, behind the stream's own mutex.
struct StreamState {
    selector: LosslessSelector,
    segments: u64,
    bytes_in: u64,
    bytes_out: u64,
    codec_failures: u64,
}

/// A resident stream's shared handle: everything a worker needs travels
/// here, inside the batch — the hot path never consults the table.
pub struct StreamEntry {
    id: u64,
    priority: Priority,
    /// Batches currently dispatched and not yet reported (0 or 1 — the
    /// per-stream ordering guarantee). Checked by the scheduler and the
    /// table's idle-eviction scan.
    in_flight: AtomicU32,
    /// Producer-side activity clock for LRU eviction.
    last_active: AtomicU64,
    state: Mutex<StreamState>,
}

impl StreamEntry {
    /// The stream's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The stream's priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Whether a batch of this stream is currently in flight.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) != 0
    }
}

impl std::fmt::Debug for StreamEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEntry")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .finish()
    }
}

/// Which map shard a stream id lives in.
fn map_shard(id: u64, n: usize) -> usize {
    ((id.wrapping_mul(HASH_MULT) >> 32) as usize) % n
}

/// The bounded resident-stream index: per-stream selector state in
/// sharded maps hashed by stream id, so concurrent admission, stats
/// rollups and eviction scans contend only per shard — there is no
/// global table lock (the worker hot path holds no table reference at
/// all; entries travel inside batches).
pub struct ShardedStreamTable {
    shards: Vec<Mutex<HashMap<u64, Arc<StreamEntry>>>>,
    capacity: usize,
    len: AtomicUsize,
}

impl std::fmt::Debug for ShardedStreamTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStreamTable")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ShardedStreamTable {
    /// Create a table with `n_shards` map shards holding at most
    /// `capacity` streams (`0` = unbounded).
    pub fn new(n_shards: usize, capacity: usize) -> Self {
        let n = n_shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity,
            len: AtomicUsize::new(0),
        }
    }

    /// Resident streams.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether no stream is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the residency bound is reached (never true when unbounded).
    pub fn is_full(&self) -> bool {
        self.capacity != 0 && self.len() >= self.capacity
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: u64) -> bool {
        self.shards[map_shard(id, self.shards.len())]
            .lock()
            .contains_key(&id)
    }

    /// Look up a resident stream's handle.
    pub fn get(&self, id: u64) -> Option<Arc<StreamEntry>> {
        self.shards[map_shard(id, self.shards.len())]
            .lock()
            .get(&id)
            .cloned()
    }

    /// Admit a stream. Fails (returns `false`, entry untouched) when the
    /// table is full or the id is already resident.
    pub fn insert(&self, entry: Arc<StreamEntry>, now: u64) -> bool {
        if self.is_full() {
            return false;
        }
        let mut shard = self.shards[map_shard(entry.id, self.shards.len())].lock();
        if shard.contains_key(&entry.id) {
            return false;
        }
        entry.last_active.store(now, Ordering::SeqCst);
        shard.insert(entry.id, entry);
        self.len.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// Record activity for LRU bookkeeping.
    pub fn touch(&self, id: u64, now: u64) {
        if let Some(e) = self.get(id) {
            e.last_active.store(now, Ordering::SeqCst);
        }
    }

    /// Evict `id`, returning its handle.
    pub fn remove(&self, id: u64) -> Option<Arc<StreamEntry>> {
        let removed = self.shards[map_shard(id, self.shards.len())]
            .lock()
            .remove(&id);
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::SeqCst);
        }
        removed
    }

    /// The least-recently-active resident stream with nothing in flight —
    /// the LRU/idle eviction candidate. Streams mid-batch are never
    /// offered (evicting one would lose its pending report).
    pub fn lru_idle(&self) -> Option<Arc<StreamEntry>> {
        let mut best: Option<(u64, Arc<StreamEntry>)> = None;
        for shard in &self.shards {
            for entry in shard.lock().values() {
                if entry.is_in_flight() {
                    continue;
                }
                let at = entry.last_active.load(Ordering::SeqCst);
                if best.as_ref().map(|(t, _)| at < *t).unwrap_or(true) {
                    best = Some((at, entry.clone()));
                }
            }
        }
        best.map(|(_, e)| e)
    }
}

/// One stream's final rollup. Posterior vectors align with
/// [`FleetReport::arms`].
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The stream id.
    pub id: u64,
    /// Its priority class.
    pub priority: Priority,
    /// Segments compressed for this stream.
    pub segments: u64,
    /// Raw bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
    /// Contained codec failures (degraded to Raw).
    pub codec_failures: u64,
    /// Final per-arm pull counts.
    pub pulls: Vec<u64>,
    /// Final per-arm reward estimates.
    pub estimates: Vec<f64>,
    /// Final per-arm cumulative failure totals.
    pub failure_totals: Vec<u64>,
    /// Final quarantine verdicts (bit `i` = arm `i`).
    pub quarantine_bits: u64,
    /// Whether this stream resumed from an archived posterior.
    pub restored: bool,
    /// Transport-frame egress accounting (payload bytes, segments,
    /// fragments shipped).
    pub egress: StreamEgress,
}

/// Egress-stage rollup.
#[derive(Debug, Clone, Copy)]
pub struct FrameSummary {
    /// Frames emitted.
    pub frames: u64,
    /// Total frame bytes (payload + per-fragment overhead).
    pub bytes: u64,
    /// Largest frame emitted — never above `payload_cap` by construction.
    pub max_frame_used: usize,
    /// The configured cap the packer enforced.
    pub payload_cap: usize,
}

/// Aggregate fleet results.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Distinct stream sessions completed (spec count).
    pub streams: u64,
    /// Segments compressed across all streams.
    pub segments: u64,
    /// Data points processed.
    pub points: u64,
    /// Raw bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
    /// Wall-clock runtime.
    pub elapsed_seconds: f64,
    /// Aggregate throughput in segments per second.
    pub segments_per_sec: f64,
    /// Aggregate throughput in points per second.
    pub points_per_sec: f64,
    /// How often each codec was selected, fleet-wide.
    pub codec_counts: HashMap<CodecId, u64>,
    /// Contained codec failures fleet-wide.
    pub codec_failures: u64,
    /// Worker shards the run used.
    pub shards: usize,
    /// Batches a worker took from a foreign shard's queue.
    pub stolen_batches: u64,
    /// Streams evicted from the table (every completed stream is).
    pub evictions: u64,
    /// Streams that resumed from an archived posterior.
    pub restores: u64,
    /// Peak resident streams observed.
    pub peak_resident: usize,
    /// Bytes of per-stream resident state (entry + selector posterior) —
    /// the bounded cost of one admitted stream.
    pub per_stream_state_bytes: usize,
    /// The arm roster every stream's posterior vectors align with.
    pub arms: Vec<CodecId>,
    /// Egress-stage rollup.
    pub frames: FrameSummary,
    /// Batches whose arm decision was taken under elevated or critical
    /// link pressure (pressure-biased selection; see
    /// [`FleetConfig::pressure`]). Zero when no gauge is attached.
    pub degraded_batches: u64,
    /// Uplink transport rollup: retries, breaker trips, replay outcomes.
    /// Populated by the caller via [`FleetReport::absorb_session`] /
    /// [`FleetReport::absorb_replay`] after driving the transport.
    pub uplink: UplinkRollup,
    /// Per-stream rollups, sorted by id.
    pub stream_reports: Vec<StreamReport>,
}

impl FleetReport {
    /// Fold an uplink session's transport counters into this report.
    pub fn absorb_session(&mut self, session: &crate::uplink::SessionReport) {
        self.uplink.absorb_session(session);
    }

    /// Fold a spool reconnect-replay report into this report.
    pub fn absorb_replay(&mut self, replay: &crate::spooling::ReplayReport) {
        self.uplink.absorb_replay(replay);
    }
}

/// A batch of segments dispatched for one stream. `home` names the shard
/// whose recycle pool owns the buffers (and whose queue carried the
/// batch); the entry handle rides along so workers never look anything up.
struct FleetBatch {
    home: usize,
    entry: Arc<StreamEntry>,
    /// Fleet-wide ingest sequence of the first segment (deadline proxy
    /// for frame packing).
    base_seq: u64,
    segs: Vec<Vec<f64>>,
}

/// Producer-side driver for one resident stream.
struct StreamDriver {
    entry: Arc<StreamEntry>,
    source: Box<dyn SegmentSource>,
    remaining: usize,
    home: usize,
    restored: bool,
}

/// Non-blocking sweep over every work queue for the worker of shard `me`
/// (own queue first, then steals), as in the engine.
fn try_take(
    me: usize,
    rxs: &[channel::Receiver<FleetBatch>],
    open: &mut [bool],
    steals: &AtomicU64,
) -> Option<FleetBatch> {
    for off in 0..rxs.len() {
        let j = (me + off) % rxs.len();
        if !open[j] {
            continue;
        }
        match rxs[j].try_recv() {
            Ok(b) => {
                if j != me {
                    steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(b);
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => open[j] = false,
        }
    }
    None
}

/// Blocking receive with gate-parked work stealing (the engine's
/// protocol: register as sleeper, confirmation sweep, park on the ticket).
fn recv_or_steal(
    me: usize,
    rxs: &[channel::Receiver<FleetBatch>],
    open: &mut [bool],
    steals: &AtomicU64,
    gate: &WorkGate,
) -> Option<FleetBatch> {
    loop {
        if let Some(b) = try_take(me, rxs, open, steals) {
            return Some(b);
        }
        if !open.iter().any(|&o| o) {
            return None;
        }
        gate.register_sleeper();
        let ticket = gate.epoch();
        if let Some(b) = try_take(me, rxs, open, steals) {
            gate.cancel_park();
            return Some(b);
        }
        if !open.iter().any(|&o| o) {
            gate.cancel_park();
            return None;
        }
        gate.park(ticket);
    }
}

/// Resident bytes one admitted stream costs: its entry, its selector
/// state, and the per-arm posterior vectors. Reported so capacity
/// planning for `max_resident_streams` has a number to multiply.
fn per_stream_state_bytes(n_arms: usize) -> usize {
    std::mem::size_of::<StreamEntry>()
        + std::mem::size_of::<StreamState>()
        + std::mem::size_of::<LosslessSelector>()
        // q + n (policy), failure totals, consecutive streaks, codec ids,
        // quarantine + mask bools.
        + n_arms * (8 + 8 + 8 + 4 + std::mem::size_of::<CodecId>() + 2)
}

/// Stream stats copied out at eviction (the selector stays behind in the
/// posterior snapshot).
struct StreamStats {
    segments: u64,
    bytes_in: u64,
    bytes_out: u64,
    codec_failures: u64,
}

/// Snapshot a stream's posterior and counters under its lock.
fn snapshot_posterior(entry: &StreamEntry, arms: &[CodecId]) -> (StreamPosterior, StreamStats) {
    let st = entry.state.lock();
    let posterior = StreamPosterior {
        stream_id: entry.id,
        arms: arms.to_vec(),
        pulls: st.selector.pulls().to_vec(),
        estimates: st.selector.estimates().to_vec(),
        failure_totals: st.selector.failure_totals().to_vec(),
        quarantine_bits: st.selector.quarantine_bits(),
    };
    let stats = StreamStats {
        segments: st.segments,
        bytes_in: st.bytes_in,
        bytes_out: st.bytes_out,
        codec_failures: st.codec_failures,
    };
    drop(st);
    (posterior, stats)
}

/// Run every spec through the fleet: admit up to the residency bound,
/// schedule ready streams fairly over the sharded worker pool, evict
/// completed streams (archiving their posterior), admit waiting specs in
/// their place, and pack all compressed output into bounded transport
/// frames. See the module docs for the scheduling and equivalence
/// guarantees.
pub fn run_fleet(specs: Vec<StreamSpec>, config: &FleetConfig) -> Result<FleetReport> {
    let n_shards = resolve_threads(config.n_compression_threads);
    let arms = config.lossless_arms.clone();
    let state_bytes = per_stream_state_bytes(arms.len());
    if specs.is_empty() {
        return Ok(FleetReport {
            streams: 0,
            segments: 0,
            points: 0,
            bytes_in: 0,
            bytes_out: 0,
            elapsed_seconds: 0.0,
            segments_per_sec: 0.0,
            points_per_sec: 0.0,
            codec_counts: HashMap::new(),
            codec_failures: 0,
            shards: n_shards,
            stolen_batches: 0,
            evictions: 0,
            restores: 0,
            peak_resident: 0,
            per_stream_state_bytes: state_bytes,
            arms,
            frames: FrameSummary {
                frames: 0,
                bytes: 0,
                max_frame_used: 0,
                payload_cap: config.frame.payload_cap,
            },
            degraded_batches: 0,
            uplink: UplinkRollup::default(),
            stream_reports: Vec::new(),
        });
    }
    let reg = CodecRegistry::new(config.precision);
    let k = config.batch_segments.max(1);
    let buffer_cap = config.buffer_segments.max(1);
    let batch_cap = buffer_cap.div_ceil(k).div_ceil(n_shards).max(2);
    let pool = shard_pool_size(batch_cap, n_shards);
    let seg_len_hint = specs[0].source.segment_len();

    // Posterior archive: evicted streams park their learned state here;
    // re-admitted ids resume from it. Optionally seeded from / persisted
    // to disk in the CRC-framed format.
    let mut archive: HashMap<u64, StreamPosterior> = HashMap::new();
    if let Some(path) = &config.posterior_path {
        if path.exists() {
            let loaded = load_posteriors(path)
                .map_err(|_| AdaEdgeError::Config("posterior archive unreadable"))?;
            for p in loaded {
                if p.arms != arms {
                    return Err(AdaEdgeError::Config(
                        "posterior archive arm roster mismatch",
                    ));
                }
                archive.insert(p.stream_id, p);
            }
        }
    }

    let gate = WorkGate::new(); // wakes parked workers on enqueue
    let done_gate = WorkGate::new(); // wakes the producer on batch completion
    let steals = AtomicU64::new(0);
    let degraded_total = AtomicU64::new(0);
    let table = ShardedStreamTable::new(n_shards, config.max_resident_streams);

    let mut txs = Vec::with_capacity(n_shards);
    let mut rxs = Vec::with_capacity(n_shards);
    let mut recycle_txs = Vec::with_capacity(n_shards);
    let mut recycle_rxs = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let (tx, rx) = channel::bounded::<FleetBatch>(batch_cap);
        let (rtx, rrx) = channel::bounded::<Vec<Vec<f64>>>(pool);
        for _ in 0..pool {
            let bufs: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(seg_len_hint)).collect();
            rtx.send(bufs).map_err(|_| AdaEdgeError::WorkerFailed {
                stage: "recycle pool seeding",
            })?;
        }
        txs.push(tx);
        rxs.push(rx);
        recycle_txs.push(rtx);
        recycle_rxs.push(rrx);
    }
    let (frame_tx, frame_rx) = channel::unbounded::<Vec<FrameItem>>();
    let frame_config = config.frame;

    let start = Instant::now();
    let mut codec_counts: HashMap<CodecId, u64> = HashMap::new();
    let mut stream_reports: Vec<StreamReport> = Vec::new();
    let mut evictions = 0u64;
    let mut restores = 0u64;
    let mut peak_resident = 0usize;
    let mut streams_completed = 0u64;
    let mut packer_out: Option<FramePacker> = None;

    std::thread::scope(|scope| -> Result<()> {
        // Egress stage: packs every compressed-segment descriptor into
        // bounded frames in priority-then-deadline order. Emits full
        // frames as soon as enough data is buffered and flushes the
        // partial tail when the workers disconnect.
        let egress = {
            let frame_rx = frame_rx;
            scope.spawn(move || {
                let mut packer = FramePacker::new(frame_config);
                while let Ok(items) = frame_rx.recv() {
                    for item in items {
                        packer.push(item);
                    }
                    while packer.frame_ready() && packer.next_frame().is_some() {}
                }
                packer.flush();
                packer
            })
        };

        let mut workers = Vec::new();
        for me in 0..n_shards {
            let all_rxs = rxs.to_vec();
            let all_recycle_txs = recycle_txs.to_vec();
            let frame_tx = frame_tx.clone();
            let reg = &reg;
            let gate = &gate;
            let done_gate = &done_gate;
            let steals = &steals;
            let degraded_total = &degraded_total;
            let gauge = config.pressure.clone();
            workers.push(scope.spawn(move || {
                let mut scratch = CodecScratch::new();
                let mut local_counts: HashMap<CodecId, u64> = HashMap::new();
                let mut local_degraded = 0u64;
                let mut outcomes: Vec<ArmOutcome> = Vec::with_capacity(k);
                let mut open = vec![true; n_shards];
                // Frame descriptors are flushed to the egress stage in
                // chunks, not per batch: a per-batch send wakes the parked
                // egress thread every few microseconds of work, and on a
                // single core that wakeup pair costs more than the batch.
                let mut items: Vec<FrameItem> = Vec::with_capacity(FRAME_FLUSH_ITEMS);
                while let Some(batch) = recv_or_steal(me, &all_rxs, &mut open, steals, gate) {
                    let FleetBatch {
                        home,
                        entry,
                        base_seq,
                        segs,
                    } = batch;
                    // One decision per batch, arm sticky. The stream lock
                    // is held only for the decision itself; per-stream
                    // ordering (one batch in flight) keeps the
                    // select→report pair atomic with respect to this
                    // stream's other batches. Under link pressure the
                    // decision is biased toward higher-ratio arms; the
                    // Nominal path is bit-identical to plain select_arm.
                    let level = gauge
                        .as_ref()
                        .map(|g| g.level())
                        .unwrap_or(LinkPressure::Nominal);
                    if level != LinkPressure::Nominal {
                        local_degraded += 1;
                    }
                    let (arm, codec) = entry.state.lock().selector.select_arm_biased(level);
                    outcomes.clear();
                    let mut points = 0u64;
                    let mut bytes_out = 0u64;
                    let mut failures = 0u64;
                    for (i, data) in segs.iter().enumerate() {
                        points += data.len() as u64;
                        let seq = base_seq + i as u64;
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            reg.compress_into(codec, data, &mut scratch)
                                .map(|b| (b.ratio(), b.compressed_bytes()))
                        }));
                        match out {
                            Ok(Ok((ratio, bytes))) => {
                                outcomes.push(ArmOutcome::Ratio(ratio));
                                *local_counts.entry(codec).or_insert(0) += 1;
                                bytes_out += bytes as u64;
                                items.push(FrameItem {
                                    stream: entry.id,
                                    priority: entry.priority,
                                    seq,
                                    len: bytes,
                                });
                            }
                            // Codec error or caught panic: contain it,
                            // penalize the arm, ship the segment Raw.
                            _ => {
                                outcomes.push(ArmOutcome::Failure);
                                failures += 1;
                                if let Ok(b) = reg.compress_into(CodecId::Raw, data, &mut scratch) {
                                    let bytes = b.compressed_bytes();
                                    *local_counts.entry(CodecId::Raw).or_insert(0) += 1;
                                    bytes_out += bytes as u64;
                                    items.push(FrameItem {
                                        stream: entry.id,
                                        priority: entry.priority,
                                        seq,
                                        len: bytes,
                                    });
                                }
                            }
                        }
                    }
                    {
                        let mut st = entry.state.lock();
                        st.selector.report_batch(arm, &outcomes);
                        st.segments += segs.len() as u64;
                        st.bytes_in += points * 8;
                        st.bytes_out += bytes_out;
                        st.codec_failures += failures;
                    }
                    // Completion order matters: the in-flight decrement
                    // must be visible before the recycle send / gate
                    // notify that unblocks the producer, so a woken
                    // producer always observes the stream as schedulable.
                    entry.in_flight.fetch_sub(1, Ordering::SeqCst);
                    drop(entry);
                    let _ = all_recycle_txs[home].send(segs);
                    done_gate.notify();
                    if items.len() >= FRAME_FLUSH_ITEMS {
                        let _ = frame_tx.send(std::mem::replace(
                            &mut items,
                            Vec::with_capacity(FRAME_FLUSH_ITEMS),
                        ));
                    }
                }
                if !items.is_empty() {
                    let _ = frame_tx.send(items);
                }
                degraded_total.fetch_add(local_degraded, Ordering::Relaxed);
                local_counts
            }));
        }
        drop(rxs);
        drop(recycle_txs);
        drop(frame_tx);

        // ---- Producer: admission, fair scheduling, eviction. ----
        let mut pending: VecDeque<StreamSpec> = specs.into_iter().collect();
        let mut drivers: Vec<Option<StreamDriver>> = Vec::new();
        let mut free_slots: Vec<usize> = Vec::new();
        // Per-shard ready queues of driver slots. A slot in a queue may
        // still be in flight (it is re-enqueued at dispatch for fairness);
        // the scheduler rotates past those.
        let mut ready: Vec<VecDeque<usize>> = (0..n_shards).map(|_| VecDeque::new()).collect();
        let mut draining: Vec<usize> = Vec::new();
        let mut clock = 0u64;
        let mut seq = 0u64;
        let mut rr_shard = 0usize;

        macro_rules! admit_pending {
            () => {
                let mut attempts = pending.len();
                while attempts > 0 && !table.is_full() && !pending.is_empty() {
                    attempts -= 1;
                    if table.contains(pending.front().expect("non-empty").id) {
                        // A live session of this id is still resident;
                        // rotate the spec behind the others until the
                        // eviction frees its identity.
                        pending.rotate_left(1);
                        continue;
                    }
                    let spec = pending.pop_front().expect("non-empty");
                    let mut sel_config = config.selector;
                    sel_config.seed ^= spec.id.wrapping_mul(HASH_MULT);
                    let mut selector = LosslessSelector::new(arms.clone(), sel_config);
                    let restored = if let Some(p) = archive.get(&spec.id) {
                        selector.restore_posterior(
                            &p.pulls,
                            &p.estimates,
                            &p.failure_totals,
                            p.quarantine_bits,
                        );
                        restores += 1;
                        true
                    } else {
                        false
                    };
                    let entry = Arc::new(StreamEntry {
                        id: spec.id,
                        priority: spec.priority,
                        in_flight: AtomicU32::new(0),
                        last_active: AtomicU64::new(clock),
                        state: Mutex::new(StreamState {
                            selector,
                            segments: 0,
                            bytes_in: 0,
                            bytes_out: 0,
                            codec_failures: 0,
                        }),
                    });
                    assert!(table.insert(entry.clone(), clock), "admission raced");
                    peak_resident = peak_resident.max(table.len());
                    let home = map_shard(spec.id, n_shards);
                    let driver = StreamDriver {
                        entry,
                        source: spec.source,
                        remaining: spec.n_segments,
                        home,
                        restored,
                    };
                    let slot = match free_slots.pop() {
                        Some(s) => {
                            drivers[s] = Some(driver);
                            s
                        }
                        None => {
                            drivers.push(Some(driver));
                            drivers.len() - 1
                        }
                    };
                    if drivers[slot].as_ref().expect("just set").remaining > 0 {
                        ready[home].push_back(slot);
                    } else {
                        draining.push(slot);
                    }
                }
            };
        }

        macro_rules! reap_completed {
            () => {
                let mut i = 0;
                while i < draining.len() {
                    let slot = draining[i];
                    let done = {
                        let d = drivers[slot].as_ref().expect("draining slot live");
                        !d.entry.is_in_flight()
                    };
                    if !done {
                        i += 1;
                        continue;
                    }
                    draining.swap_remove(i);
                    let d = drivers[slot].take().expect("draining slot live");
                    let (posterior, stats) = snapshot_posterior(&d.entry, &arms);
                    stream_reports.push(StreamReport {
                        id: d.entry.id,
                        priority: d.entry.priority,
                        segments: stats.segments,
                        bytes_in: stats.bytes_in,
                        bytes_out: stats.bytes_out,
                        codec_failures: stats.codec_failures,
                        pulls: posterior.pulls.clone(),
                        estimates: posterior.estimates.clone(),
                        failure_totals: posterior.failure_totals.clone(),
                        quarantine_bits: posterior.quarantine_bits,
                        restored: d.restored,
                        egress: StreamEgress::default(),
                    });
                    archive.insert(d.entry.id, posterior);
                    table.remove(d.entry.id);
                    evictions += 1;
                    streams_completed += 1;
                    free_slots.push(slot);
                }
                if !pending.is_empty() {
                    admit_pending!();
                }
            };
        }

        admit_pending!();

        'produce: loop {
            clock += 1;
            // Reaping scans the draining list; doing it every dispatch is
            // wasted motion unless admission is actually starved for a
            // slot. Amortize to every 64th turn — plus unconditionally
            // below when the ready queues run dry (progress/termination).
            if clock.is_multiple_of(64) || (!pending.is_empty() && table.is_full()) {
                reap_completed!();
            }
            let total_ready: usize = ready.iter().map(|q| q.len()).sum();
            if total_ready == 0 {
                reap_completed!();
                if draining.is_empty() && pending.is_empty() {
                    break;
                }
                if ready.iter().any(|q| !q.is_empty()) {
                    // Reaping freed a slot and admission refilled the
                    // ready queues — dispatch, don't park.
                    continue;
                }
                // Everything left is mid-flight (or waiting on a mid-flight
                // eviction): park until a worker completes a batch.
                done_gate.register_sleeper();
                let ticket = done_gate.epoch();
                let progress = draining.iter().any(|&s| {
                    !drivers[s]
                        .as_ref()
                        .expect("draining slot live")
                        .entry
                        .is_in_flight()
                });
                if progress {
                    done_gate.cancel_park();
                } else {
                    done_gate.park(ticket);
                }
                continue;
            }
            // Fair pick: scan shards round-robin; within a shard rotate
            // past streams whose previous batch is still in flight.
            let mut picked: Option<usize> = None;
            'scan: for off in 0..n_shards {
                let sh = (rr_shard + off) % n_shards;
                for _ in 0..ready[sh].len() {
                    let slot = ready[sh].pop_front().expect("len checked");
                    if drivers[slot]
                        .as_ref()
                        .expect("ready slot live")
                        .entry
                        .is_in_flight()
                    {
                        ready[sh].push_back(slot);
                        continue;
                    }
                    picked = Some(slot);
                    rr_shard = (sh + 1) % n_shards;
                    break 'scan;
                }
            }
            let Some(slot) = picked else {
                // Every ready stream has a batch in flight; park for one.
                done_gate.register_sleeper();
                let ticket = done_gate.epoch();
                let progress = ready
                    .iter()
                    .flatten()
                    .chain(draining.iter())
                    .any(|&s| !drivers[s].as_ref().expect("slot live").entry.is_in_flight());
                if progress {
                    done_gate.cancel_park();
                } else {
                    done_gate.park(ticket);
                }
                continue;
            };
            // Acquire buffers, preferring the stream's home pool.
            let home = drivers[slot].as_ref().expect("picked slot live").home;
            let mut acquired = None;
            for off in 0..n_shards {
                let sh = (home + off) % n_shards;
                if let Ok(bufs) = recycle_rxs[sh].try_recv() {
                    acquired = Some((sh, bufs));
                    break;
                }
            }
            let (bhome, mut segs) = match acquired {
                Some(got) => got,
                // Every pool momentarily empty: block on the home pool —
                // the pigeonhole bound guarantees a batch comes back.
                None => match recycle_rxs[home].recv() {
                    Ok(bufs) => (home, bufs),
                    Err(_) => break 'produce,
                },
            };
            let d = drivers[slot].as_mut().expect("picked slot live");
            let take = k.min(d.remaining);
            if segs.len() > take {
                segs.truncate(take);
            }
            while segs.len() < take {
                // Regrow batches shrunk by earlier partial dispatches so
                // short streams cannot permanently shed pool buffers.
                segs.push(Vec::with_capacity(seg_len_hint));
            }
            for buf in segs.iter_mut() {
                d.source.next_segment_into(buf);
            }
            d.remaining -= take;
            let base_seq = seq;
            seq += take as u64;
            d.entry.in_flight.fetch_add(1, Ordering::SeqCst);
            d.entry.last_active.store(clock, Ordering::SeqCst);
            let batch = FleetBatch {
                home: bhome,
                entry: d.entry.clone(),
                base_seq,
                segs,
            };
            // The slot was popped from its ready queue at pick time and a
            // slot is never enqueued twice, so this is the only copy:
            // back of the queue for fairness, or off to draining.
            if d.remaining > 0 {
                ready[d.home].push_back(slot);
            } else {
                draining.push(slot);
            }
            if txs[bhome].send(batch).is_err() {
                break 'produce;
            }
            gate.notify();
        }
        drop(txs);
        drop(recycle_rxs);
        // Wake any parked worker so it observes the disconnected queues.
        gate.notify();

        let mut lost_worker = false;
        for w in workers {
            match w.join() {
                Ok(local) => {
                    for (codec, count) in local {
                        *codec_counts.entry(codec).or_insert(0) += count;
                    }
                }
                Err(_) => lost_worker = true,
            }
        }
        // Workers are gone: everything still draining is complete now.
        reap_completed!();
        match egress.join() {
            Ok(packer) => packer_out = Some(packer),
            Err(_) => lost_worker = true,
        }
        if lost_worker {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "fleet worker",
            });
        }
        Ok(())
    })?;
    let elapsed = start.elapsed().as_secs_f64();

    if let Some(path) = &config.posterior_path {
        let mut all: Vec<&StreamPosterior> = archive.values().collect();
        all.sort_by_key(|p| p.stream_id);
        save_posteriors(path, all.into_iter())
            .map_err(|_| AdaEdgeError::Config("posterior archive unwritable"))?;
    }

    let packer = packer_out.expect("egress joined");
    stream_reports.sort_by_key(|r| r.id);
    for r in stream_reports.iter_mut() {
        if let Some(e) = packer.stream_egress().get(&r.id) {
            r.egress = *e;
        }
    }
    let segments: u64 = stream_reports.iter().map(|r| r.segments).sum();
    let bytes_in: u64 = stream_reports.iter().map(|r| r.bytes_in).sum();
    let bytes_out: u64 = stream_reports.iter().map(|r| r.bytes_out).sum();
    let codec_failures: u64 = stream_reports.iter().map(|r| r.codec_failures).sum();
    let points = bytes_in / 8;
    Ok(FleetReport {
        streams: streams_completed,
        segments,
        points,
        bytes_in,
        bytes_out,
        elapsed_seconds: elapsed,
        segments_per_sec: segments as f64 / elapsed.max(1e-9),
        points_per_sec: points as f64 / elapsed.max(1e-9),
        codec_counts,
        codec_failures,
        shards: n_shards,
        stolen_batches: steals.load(Ordering::Relaxed),
        evictions,
        restores,
        peak_resident,
        per_stream_state_bytes: state_bytes,
        arms,
        frames: FrameSummary {
            frames: packer.frames_emitted(),
            bytes: packer.bytes_emitted(),
            max_frame_used: packer.max_frame_used(),
            payload_cap: config.frame.payload_cap,
        },
        degraded_batches: degraded_total.load(Ordering::Relaxed),
        uplink: UplinkRollup::default(),
        stream_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_datasets::SineStream;

    fn entry(id: u64) -> Arc<StreamEntry> {
        Arc::new(StreamEntry {
            id,
            priority: Priority::Normal,
            in_flight: AtomicU32::new(0),
            last_active: AtomicU64::new(0),
            state: Mutex::new(StreamState {
                selector: LosslessSelector::new(
                    CodecRegistry::lossless_candidates(),
                    SelectorConfig::default(),
                ),
                segments: 0,
                bytes_in: 0,
                bytes_out: 0,
                codec_failures: 0,
            }),
        })
    }

    #[test]
    fn table_bounds_residency_and_rejects_duplicates() {
        let t = ShardedStreamTable::new(4, 2);
        assert!(t.insert(entry(1), 0));
        assert!(!t.insert(entry(1), 1), "duplicate id must be rejected");
        assert!(t.insert(entry(2), 1));
        assert!(t.is_full());
        assert!(!t.insert(entry(3), 2), "full table must reject");
        assert_eq!(t.len(), 2);
        assert!(t.contains(1) && t.contains(2) && !t.contains(3));
        t.remove(1).expect("resident");
        assert!(!t.is_full());
        assert!(t.insert(entry(3), 3));
    }

    #[test]
    fn lru_idle_skips_in_flight_streams() {
        let t = ShardedStreamTable::new(2, 0);
        t.insert(entry(10), 5);
        t.insert(entry(20), 1); // least recently active…
        t.insert(entry(30), 3);
        t.get(20).unwrap().in_flight.store(1, Ordering::SeqCst); // …but busy
        let victim = t.lru_idle().expect("idle stream exists");
        assert_eq!(victim.id(), 30, "oldest *idle* stream wins");
        t.get(20).unwrap().in_flight.store(0, Ordering::SeqCst);
        assert_eq!(t.lru_idle().unwrap().id(), 20);
        // touch() refreshes recency.
        t.touch(20, 9);
        assert_eq!(t.lru_idle().unwrap().id(), 30);
    }

    #[test]
    fn unbounded_table_never_full() {
        let t = ShardedStreamTable::new(3, 0);
        for id in 0..100 {
            assert!(t.insert(entry(id), id));
        }
        assert!(!t.is_full());
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn empty_fleet_returns_zeroed_report() {
        let report = run_fleet(Vec::new(), &FleetConfig::default()).unwrap();
        assert_eq!(report.streams, 0);
        assert_eq!(report.segments, 0);
        assert_eq!(report.frames.frames, 0);
    }

    #[test]
    fn small_fleet_processes_every_stream() {
        let specs: Vec<StreamSpec> = (0..5)
            .map(|id| {
                StreamSpec::new(
                    id,
                    Priority::Normal,
                    6,
                    Box::new(SineStream::new(256, 0.1, 4, id)),
                )
            })
            .collect();
        let config = FleetConfig {
            n_compression_threads: 2,
            batch_segments: 2,
            ..Default::default()
        };
        let report = run_fleet(specs, &config).unwrap();
        assert_eq!(report.streams, 5);
        assert_eq!(report.segments, 30);
        assert_eq!(report.points, 5 * 6 * 256);
        assert_eq!(report.evictions, 5);
        assert_eq!(report.stream_reports.len(), 5);
        for r in &report.stream_reports {
            assert_eq!(r.segments, 6);
            assert!(r.bytes_out > 0);
            assert_eq!(r.egress.segments, 6, "every segment must ship");
        }
        let counted: u64 = report.codec_counts.values().sum();
        assert_eq!(counted, 30);
        assert!(report.frames.frames > 0);
        assert!(report.frames.max_frame_used <= report.frames.payload_cap);
        // Per-stream state is bounded: well under a KiB per arm roster.
        assert!(
            report.per_stream_state_bytes < 4096,
            "{}",
            report.per_stream_state_bytes
        );
    }

    #[test]
    fn bounded_residency_evicts_and_admits() {
        let specs: Vec<StreamSpec> = (0..8)
            .map(|id| {
                StreamSpec::new(
                    id,
                    Priority::Normal,
                    3,
                    Box::new(SineStream::new(128, 0.1, 4, id)),
                )
            })
            .collect();
        let config = FleetConfig {
            n_compression_threads: 1,
            max_resident_streams: 2,
            ..Default::default()
        };
        let report = run_fleet(specs, &config).unwrap();
        assert_eq!(report.streams, 8);
        assert_eq!(report.segments, 24);
        assert!(report.peak_resident <= 2, "{}", report.peak_resident);
        assert_eq!(report.evictions, 8);
    }

    #[test]
    fn readmitted_stream_resumes_posterior() {
        // The same id appears twice: the second session must restore the
        // first's posterior, so its pull counts continue, not restart.
        let mk = |seed| Box::new(SineStream::new(128, 0.1, 4, seed));
        let specs = vec![
            StreamSpec::new(42, Priority::Normal, 4, mk(1)),
            StreamSpec::new(7, Priority::Normal, 4, mk(2)),
            StreamSpec::new(42, Priority::Normal, 4, mk(3)),
        ];
        let config = FleetConfig {
            max_resident_streams: 1,
            ..Default::default()
        };
        let report = run_fleet(specs, &config).unwrap();
        assert_eq!(report.streams, 3);
        assert_eq!(report.restores, 1);
        let sessions: Vec<_> = report
            .stream_reports
            .iter()
            .filter(|r| r.id == 42)
            .collect();
        assert_eq!(sessions.len(), 2);
        let total_pulls: u64 = sessions.last().unwrap().pulls.iter().sum();
        assert_eq!(
            total_pulls, 8,
            "second session must continue the first's counts"
        );
        assert!(sessions.last().unwrap().restored);
    }

    #[test]
    fn pressure_gauge_degrades_batch_selection() {
        let mk_specs = || -> Vec<StreamSpec> {
            (0..4)
                .map(|id| {
                    StreamSpec::new(
                        id,
                        Priority::Normal,
                        6,
                        Box::new(SineStream::new(128, 0.1, 4, id)),
                    )
                })
                .collect()
        };
        // No gauge: zero degraded batches, the pre-uplink behavior.
        let baseline = run_fleet(mk_specs(), &FleetConfig::default()).unwrap();
        assert_eq!(baseline.degraded_batches, 0);
        assert_eq!(baseline.uplink, UplinkRollup::default());
        // A gauge pinned at Critical: every batch decision is degraded and
        // selection collapses to the deterministic best-ratio argmax.
        let gauge = PressureGauge::new();
        gauge.set(LinkPressure::Critical);
        let config = FleetConfig {
            pressure: Some(gauge),
            ..Default::default()
        };
        let report = run_fleet(mk_specs(), &config).unwrap();
        assert_eq!(report.segments, 24);
        assert_eq!(
            report.degraded_batches, 24,
            "every batch ran under Critical pressure"
        );
        // A gauge at Nominal is bit-identical to no gauge at all.
        let idle_gauge = PressureGauge::new();
        let config = FleetConfig {
            pressure: Some(idle_gauge),
            ..Default::default()
        };
        let nominal = run_fleet(mk_specs(), &config).unwrap();
        assert_eq!(nominal.degraded_batches, 0);
        assert_eq!(nominal.codec_counts, baseline.codec_counts);
        for (a, b) in nominal
            .stream_reports
            .iter()
            .zip(baseline.stream_reports.iter())
        {
            assert_eq!(a.pulls, b.pulls, "stream {}", a.id);
        }
    }
}
