//! Priority-aware packing of compressed segments into bounded transport
//! frames (the fleet's egress stage).
//!
//! Edge uplinks are framed: LoRaWAN caps application payloads at a few
//! hundred bytes, MQTT brokers and radio modems at a few KiB. A gateway
//! multiplexing thousands of streams therefore doesn't ship segments — it
//! ships **frames**, each packed with fragments from whichever streams'
//! segments matter most right now. Following the semantic-compression
//! argument (Burago et al.: not all data is equally valuable at the
//! moment of transmission), pending segments are ordered by **priority
//! class first, ingest deadline second**: a `Critical` stream's segment
//! preempts any amount of `Bulk` backlog, and within a class the oldest
//! segment ships first, so no stream's data starves behind a same-class
//! firehose.
//!
//! The packer is an online algorithm with bounded state: segments arrive
//! as [`FrameItem`] descriptors, sit in a binary heap keyed by
//! `(priority, seq)`, and leave as [`TransportFrame`]s that are **never**
//! larger than the configured cap — segments bigger than a frame are
//! fragmented, and a fragmented segment's remainder re-enters the heap
//! with its original key, so a higher-priority arrival preempts it at the
//! next frame boundary (fragment trains are interleavable, as in LoRaWAN
//! fragmented data-block transport). Per-stream byte accounting is kept
//! at fragment granularity for egress-budget rollups.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifies one tenant stream within a fleet.
pub type StreamId = u64;

/// Transmission priority class, highest first. Order is total: a lower
/// discriminant always ships before a higher one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Alarm/anomaly channels: ship before everything else.
    Critical = 0,
    /// Operationally important telemetry.
    High = 1,
    /// Routine measurements (the default).
    Normal = 2,
    /// Backfill and archival replication: ship only when nothing else
    /// is pending.
    Bulk = 3,
}

impl Priority {
    /// All classes, highest first (for per-class rollups).
    pub const ALL: [Priority; 4] = [
        Priority::Critical,
        Priority::High,
        Priority::Normal,
        Priority::Bulk,
    ];
}

/// Frame-packing configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrameConfig {
    /// Hard cap on a frame's payload bytes, headers included. No emitted
    /// frame ever exceeds this.
    pub payload_cap: usize,
    /// Per-fragment framing overhead inside a frame (stream id, sequence,
    /// offset, length — enough for the receiver to reassemble).
    pub fragment_overhead: usize,
}

impl Default for FrameConfig {
    fn default() -> Self {
        Self {
            // An MTU-ish radio/UDP budget; LoRaWAN profiles configure
            // this down to ~200, MQTT up into the KiBs.
            payload_cap: 1200,
            fragment_overhead: 12,
        }
    }
}

/// One compressed segment awaiting egress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameItem {
    /// Originating stream.
    pub stream: StreamId,
    /// The stream's transmission class.
    pub priority: Priority,
    /// Fleet-wide ingest sequence number — the deadline proxy: within a
    /// priority class, lower `seq` ships first.
    pub seq: u64,
    /// Compressed payload size in bytes.
    pub len: usize,
}

/// Heap key: priority class, then deadline, then stream/offset for a
/// total deterministic order. Wrapped in `Reverse` so the smallest key
/// (most urgent) pops first from `BinaryHeap`'s max-heap.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    priority: Priority,
    seq: u64,
    stream: StreamId,
    /// Bytes of this segment already shipped in earlier frames.
    offset: usize,
    len: usize,
}

/// One fragment placed in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Originating stream.
    pub stream: StreamId,
    /// The segment's ingest sequence number.
    pub seq: u64,
    /// Byte offset of this fragment within the segment's payload.
    pub offset: usize,
    /// Fragment payload bytes (excluding framing overhead).
    pub len: usize,
    /// Whether this fragment completes its segment.
    pub last: bool,
}

/// A packed transport frame, guaranteed `used <= payload_cap`.
#[derive(Debug, Clone)]
pub struct TransportFrame {
    /// Total payload bytes consumed, fragment overheads included.
    pub used: usize,
    /// The fragments packed into this frame, in ship order.
    pub fragments: Vec<Fragment>,
}

/// Per-stream egress accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamEgress {
    /// Segment payload bytes shipped for this stream (overheads excluded).
    pub payload_bytes: u64,
    /// Segments fully shipped.
    pub segments: u64,
    /// Fragments shipped (≥ `segments`; the fragmentation amplification).
    pub fragments: u64,
}

/// The online priority-then-deadline frame packer.
#[derive(Debug)]
pub struct FramePacker {
    config: FrameConfig,
    heap: BinaryHeap<Reverse<Pending>>,
    /// Payload bytes pending (fragment overheads not included).
    pending_bytes: usize,
    per_stream: HashMap<StreamId, StreamEgress>,
    frames_emitted: u64,
    bytes_emitted: u64,
    max_frame_used: usize,
}

impl FramePacker {
    /// Create a packer. The cap must leave room for at least one byte of
    /// payload beyond a fragment header.
    pub fn new(config: FrameConfig) -> Self {
        assert!(
            config.payload_cap > config.fragment_overhead,
            "payload cap must exceed the per-fragment overhead"
        );
        Self {
            config,
            heap: BinaryHeap::new(),
            pending_bytes: 0,
            per_stream: HashMap::new(),
            frames_emitted: 0,
            bytes_emitted: 0,
            max_frame_used: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> FrameConfig {
        self.config
    }

    /// Enqueue a compressed segment for egress. Zero-length segments are
    /// accepted (a fully predicted segment can compress to an empty
    /// payload) and ship as a header-only fragment.
    pub fn push(&mut self, item: FrameItem) {
        self.pending_bytes += item.len;
        self.heap.push(Reverse(Pending {
            priority: item.priority,
            seq: item.seq,
            stream: item.stream,
            offset: 0,
            len: item.len,
        }));
    }

    /// Segments (or segment remainders) waiting to ship.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Payload bytes waiting to ship (fragment overheads excluded).
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Whether enough data is buffered to fill a frame to the cap, i.e.
    /// [`Self::next_frame`] would emit a *full* frame. Streaming callers
    /// pack while this holds and leave the remainder to [`Self::flush`].
    pub fn frame_ready(&self) -> bool {
        // Conservative: assume every pending segment costs one overhead
        // (fragmentation only adds more).
        self.pending_bytes + self.heap.len() * self.config.fragment_overhead
            >= self.config.payload_cap
    }

    /// Pack the most urgent pending data into one frame, or `None` if
    /// nothing is pending. The frame is filled greedily in priority-then-
    /// deadline order, fragmenting the tail segment when it doesn't fit;
    /// the remainder re-enters the queue under its original key so a
    /// later, more urgent arrival preempts it at the next frame boundary.
    pub fn next_frame(&mut self) -> Option<TransportFrame> {
        let cap = self.config.payload_cap;
        let overhead = self.config.fragment_overhead;
        let mut frame = TransportFrame {
            used: 0,
            fragments: Vec::new(),
        };
        while let Some(Reverse(head)) = self.heap.peek() {
            let room = cap - frame.used;
            if room <= overhead {
                break; // not even a header fits
            }
            let take = (head.len - head.offset).min(room - overhead);
            // A zero-length take is only allowed for the empty-payload
            // segment itself; otherwise the fragment would make no
            // progress and the packer would spin.
            if take == 0 && head.len != 0 {
                break;
            }
            let Reverse(mut head) = self.heap.pop().expect("peeked above");
            let last = head.offset + take == head.len;
            frame.fragments.push(Fragment {
                stream: head.stream,
                seq: head.seq,
                offset: head.offset,
                len: take,
                last,
            });
            frame.used += overhead + take;
            self.pending_bytes -= take;
            let acct = self.per_stream.entry(head.stream).or_default();
            acct.payload_bytes += take as u64;
            acct.fragments += 1;
            if last {
                acct.segments += 1;
            } else {
                head.offset += take;
                self.heap.push(Reverse(head));
                break; // frame is full (the fragment was truncated to fit)
            }
        }
        if frame.fragments.is_empty() {
            return None;
        }
        debug_assert!(frame.used <= cap, "frame over cap: {} > {cap}", frame.used);
        self.frames_emitted += 1;
        self.bytes_emitted += frame.used as u64;
        self.max_frame_used = self.max_frame_used.max(frame.used);
        Some(frame)
    }

    /// Drain everything pending into frames, including a final partial
    /// frame (end of run, or a transmit-deadline tick).
    pub fn flush(&mut self) -> Vec<TransportFrame> {
        let mut out = Vec::new();
        while let Some(frame) = self.next_frame() {
            out.push(frame);
        }
        out
    }

    /// Per-stream egress totals (payload bytes, whole segments, fragments).
    pub fn stream_egress(&self) -> &HashMap<StreamId, StreamEgress> {
        &self.per_stream
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }

    /// Total frame bytes emitted (payload + fragment overheads).
    pub fn bytes_emitted(&self) -> u64 {
        self.bytes_emitted
    }

    /// The largest `used` of any emitted frame — by construction never
    /// above the cap, and reported so callers can assert exactly that.
    pub fn max_frame_used(&self) -> usize {
        self.max_frame_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packer(cap: usize, overhead: usize) -> FramePacker {
        FramePacker::new(FrameConfig {
            payload_cap: cap,
            fragment_overhead: overhead,
        })
    }

    fn item(stream: StreamId, priority: Priority, seq: u64, len: usize) -> FrameItem {
        FrameItem {
            stream,
            priority,
            seq,
            len,
        }
    }

    #[test]
    fn packs_in_priority_then_deadline_order() {
        let mut p = packer(100, 4);
        p.push(item(1, Priority::Bulk, 0, 10));
        p.push(item(2, Priority::Normal, 5, 10));
        p.push(item(3, Priority::Critical, 9, 10));
        p.push(item(4, Priority::Normal, 2, 10));
        let frame = p.next_frame().unwrap();
        let order: Vec<StreamId> = frame.fragments.iter().map(|f| f.stream).collect();
        // Critical first, then Normal by seq (2 before 5), Bulk last.
        assert_eq!(order, vec![3, 4, 2, 1]);
    }

    #[test]
    fn never_exceeds_cap_and_fragments_oversize_segments() {
        let mut p = packer(64, 8);
        p.push(item(7, Priority::Normal, 0, 300)); // ~6 frames worth
        let frames = p.flush();
        assert!(frames.len() > 1);
        let mut total = 0;
        for f in &frames {
            assert!(f.used <= 64, "frame over cap: {}", f.used);
            total += f.fragments.iter().map(|fr| fr.len).sum::<usize>();
        }
        assert_eq!(total, 300);
        // Exactly one fragment carries `last`.
        let lasts: Vec<_> = frames
            .iter()
            .flat_map(|f| &f.fragments)
            .filter(|fr| fr.last)
            .collect();
        assert_eq!(lasts.len(), 1);
        assert_eq!(p.max_frame_used(), 64);
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn critical_arrival_preempts_fragment_train_at_frame_boundary() {
        let mut p = packer(64, 8);
        p.push(item(1, Priority::Bulk, 0, 500));
        let first = p.next_frame().unwrap();
        assert_eq!(first.fragments[0].stream, 1);
        // A critical segment lands mid-train.
        p.push(item(2, Priority::Critical, 99, 10));
        let second = p.next_frame().unwrap();
        assert_eq!(second.fragments[0].stream, 2, "critical must preempt");
        // The bulk remainder resumes afterwards (it may share the critical
        // frame or start the next one) and every byte still ships.
        let mut frames = vec![first, second];
        frames.extend(p.flush());
        let shipped: usize = frames
            .iter()
            .flat_map(|f| &f.fragments)
            .filter(|f| f.stream == 1)
            .map(|f| f.len)
            .sum();
        assert_eq!(shipped, 500);
    }

    #[test]
    fn per_stream_accounting_sums_to_pushed_bytes() {
        let mut p = packer(128, 6);
        p.push(item(1, Priority::Normal, 0, 333));
        p.push(item(2, Priority::High, 1, 90));
        p.push(item(1, Priority::Normal, 2, 45));
        p.flush();
        let acct = p.stream_egress();
        assert_eq!(acct[&1].payload_bytes, 378);
        assert_eq!(acct[&1].segments, 2);
        assert_eq!(acct[&2].payload_bytes, 90);
        assert_eq!(acct[&2].segments, 1);
        assert!(acct[&1].fragments >= 2);
    }

    #[test]
    fn empty_payload_segment_ships_as_header_only_fragment() {
        let mut p = packer(32, 8);
        p.push(item(5, Priority::Normal, 0, 0));
        let frames = p.flush();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].fragments.len(), 1);
        assert_eq!(frames[0].fragments[0].len, 0);
        assert!(frames[0].fragments[0].last);
        assert_eq!(frames[0].used, 8);
        assert_eq!(p.stream_egress()[&5].segments, 1);
    }

    #[test]
    fn frame_ready_gates_streaming_emission() {
        let mut p = packer(100, 4);
        p.push(item(1, Priority::Normal, 0, 40));
        assert!(!p.frame_ready());
        p.push(item(1, Priority::Normal, 1, 80));
        assert!(p.frame_ready());
        let f = p.next_frame().unwrap();
        assert!(f.used <= 100);
    }

    #[test]
    #[should_panic(expected = "payload cap")]
    fn cap_smaller_than_overhead_rejected() {
        packer(4, 8);
    }
}
